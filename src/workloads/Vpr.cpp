//===- workloads/Vpr.cpp - Grid-routing archetype --------------------------------===//
//
// Stands in for 175.vpr (route): Bellman-Ford-style wavefront relaxation
// over a 2D maze of per-cell costs. The inner loop mixes strided i32
// loads (four neighbours), branch-free min reductions (conditional moves)
// and a real data-dependent obstacle branch.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadLib.h"
#include "workloads/Workloads.h"

using namespace msem;

std::unique_ptr<Module> msem::buildVpr(InputSet Set) {
  int64_t W = 0, Passes = 0;
  switch (Set) {
  case InputSet::Test:
    W = 40;
    Passes = 4;
    break;
  case InputSet::Train:
    W = 96;
    Passes = 8;
    break;
  case InputSet::Ref:
    W = 150;
    Passes = 12;
    break;
  }
  const int64_t Cells = W * W;
  const int64_t Infinity = 1 << 28;

  auto M = std::make_unique<Module>("vpr");
  GlobalVariable *Cost =
      M->createGlobal("cost", static_cast<uint64_t>(Cells) * 4);
  GlobalVariable *Dist =
      M->createGlobal("dist", static_cast<uint64_t>(Cells) * 4);
  LcgStream Lcg(*M, "rng", 0xBADC0DEu + static_cast<uint64_t>(W));

  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  // Costs 1..10 (values > 8 act as obstacles), distances start at infinity
  // except a handful of sources on the top row.
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(Cells), 1, "costs");
    Value *C = B.add(Lcg.nextBelow(B, 10), B.constInt(1));
    B.storeElem(C, Cost, L.indVar(), MemKind::Int32);
    B.storeElem(B.constInt(Infinity), Dist, L.indVar(), MemKind::Int32);
    L.finish();
  }
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(W), 7, "sources");
    B.storeElem(B.constInt(0), Dist, L.indVar(), MemKind::Int32);
    L.finish();
  }

  // Relaxation sweeps.
  {
    LoopBuilder Lp(B, B.constInt(0), B.constInt(Passes), 1, "pass");
    {
      LoopBuilder Ly(B, B.constInt(1), B.constInt(W - 1), 1, "row");
      {
        LoopBuilder Lx(B, B.constInt(1), B.constInt(W - 1), 1, "col");
        Value *Idx = B.add(B.mul(Ly.indVar(), B.constInt(W)), Lx.indVar());
        Value *C = B.loadElem(Cost, Idx, MemKind::Int32);
        Value *IsWall = B.icmp(CmpPred::GT, C, B.constInt(8));

        BasicBlock *Work = Main->createBlock("work");
        BasicBlock *Skip = Main->createBlock("skip");
        BasicBlock *Merge = Main->createBlock("merge");
        B.br(IsWall, Skip, Work);

        B.setInsertPoint(Work);
        Value *Up =
            B.loadElem(Dist, B.sub(Idx, B.constInt(W)), MemKind::Int32);
        Value *Down =
            B.loadElem(Dist, B.add(Idx, B.constInt(W)), MemKind::Int32);
        Value *Left =
            B.loadElem(Dist, B.sub(Idx, B.constInt(1)), MemKind::Int32);
        Value *Right =
            B.loadElem(Dist, B.add(Idx, B.constInt(1)), MemKind::Int32);
        Value *Best = emitMin(B, emitMin(B, Up, Down),
                              emitMin(B, Left, Right));
        Value *Cand = B.add(Best, C);
        Value *Cur = B.loadElem(Dist, Idx, MemKind::Int32);
        Value *New = emitMin(B, Cur, Cand);
        B.storeElem(New, Dist, Idx, MemKind::Int32);
        B.jmp(Merge);

        B.setInsertPoint(Skip);
        B.jmp(Merge);

        B.setInsertPoint(Merge);
        Lx.finish();
      }
      Ly.finish();
    }
    Lp.finish();
  }

  // Checksum: clamp-summed distances.
  LoopBuilder Ls(B, B.constInt(0), B.constInt(Cells), 1, "sum");
  Value *Acc = Ls.carried(B.constInt(0));
  Value *D = B.loadElem(Dist, Ls.indVar(), MemKind::Int32);
  Value *Clamped = emitMin(B, D, B.constInt(100000));
  Ls.setNext(Acc, B.add(Acc, Clamped));
  Ls.finish();
  Value *Result = B.rem(Ls.exitValue(Acc), B.constInt(1000000007));
  B.emit(Result);
  B.ret(Result);
  return M;
}
