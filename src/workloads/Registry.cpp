//===- workloads/Registry.cpp - Benchmark registry ------------------------------===//

#include "workloads/Workloads.h"

#include "support/Error.h"

using namespace msem;

const char *msem::inputSetName(InputSet Set) {
  switch (Set) {
  case InputSet::Test:
    return "test";
  case InputSet::Train:
    return "train";
  case InputSet::Ref:
    return "ref";
  }
  return "?";
}

bool msem::inputSetFromName(const std::string &Name, InputSet &Out) {
  if (Name == "test")
    Out = InputSet::Test;
  else if (Name == "train")
    Out = InputSet::Train;
  else if (Name == "ref")
    Out = InputSet::Ref;
  else
    return false;
  return true;
}

const std::vector<WorkloadSpec> &msem::allWorkloads() {
  static const std::vector<WorkloadSpec> Specs = {
      {"gzip", "164.gzip-graphic", buildGzip},
      {"vpr", "175.vpr-route", buildVpr},
      {"mesa", "177.mesa", buildMesa},
      {"art", "179.art", buildArt},
      {"mcf", "181.mcf", buildMcf},
      {"vortex", "255.vortex-lendian1", buildVortex},
      {"bzip2", "256.bzip2-graphic", buildBzip2},
  };
  return Specs;
}

std::unique_ptr<Module> msem::buildWorkload(const std::string &Name,
                                            InputSet Set) {
  for (const WorkloadSpec &Spec : allWorkloads())
    if (Spec.Name == Name)
      return Spec.Build(Set);
  fatalError("unknown workload: " + Name);
}
