//===- workloads/WorkloadLib.cpp - Shared IR-building helpers ------------------===//

#include "workloads/WorkloadLib.h"

using namespace msem;

LcgStream::LcgStream(Module &M, const std::string &Name, uint64_t Seed) {
  State = M.createGlobal(Name, 8);
  std::vector<uint8_t> Init(8);
  for (int I = 0; I < 8; ++I)
    Init[I] = static_cast<uint8_t>(Seed >> (8 * I));
  State->setInitializer(Init);
}

Value *LcgStream::next(IRBuilder &B) {
  Value *S = B.load(State, MemKind::Int64);
  Value *Mul = B.mul(S, B.constInt(6364136223846793005LL));
  Value *Next = B.add(Mul, B.constInt(1442695040888963407LL));
  B.store(Next, State, MemKind::Int64);
  // Take the top bits and clear the sign.
  return B.andOp(B.shr(Next, B.constInt(17)),
                 B.constInt(0x7fffffffffffLL));
}

Value *LcgStream::nextBelow(IRBuilder &B, int64_t Mod) {
  assert(Mod > 0 && "modulus must be positive");
  return B.rem(next(B), B.constInt(Mod));
}

Value *msem::emitMin(IRBuilder &B, Value *A, Value *Bv) {
  return B.select(B.icmp(CmpPred::LE, A, Bv), A, Bv);
}

Value *msem::emitMax(IRBuilder &B, Value *A, Value *Bv) {
  return B.select(B.icmp(CmpPred::GE, A, Bv), A, Bv);
}

void msem::emitFillRandom(IRBuilder &B, LcgStream &Lcg, GlobalVariable *Arr,
                          int64_t N, MemKind MK, int64_t Mod,
                          const std::string &LoopName) {
  LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, LoopName);
  Value *V = Lcg.nextBelow(B, Mod);
  B.storeElem(V, Arr, L.indVar(), MK);
  L.finish();
}
