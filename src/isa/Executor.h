//===- isa/Executor.h - Functional execution of machine programs --*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural (functional) execution of linked machine programs. The run
/// loop is templated over a sink that observes every retired instruction
/// (program counter, memory address, branch outcome); the cycle-level
/// timing model and the SMARTS sampler are such sinks. Execution with the
/// null sink defines the ISA's architectural semantics and is compared
/// against the IR interpreter in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_ISA_EXECUTOR_H
#define MSEM_ISA_EXECUTOR_H

#include "ir/Interpreter.h" // EmitRecord
#include "isa/MachineProgram.h"
#include "support/Format.h"

#include <cstring>
#include <string>
#include <vector>

namespace msem {

/// Everything a timing model needs to know about one retired instruction.
struct RetiredInstr {
  uint64_t CodeIndex = 0;     ///< Index of this instruction in Code.
  const MachineInstr *MI = nullptr;
  uint64_t MemAddr = 0;       ///< Effective address (memory ops only).
  bool BranchTaken = false;   ///< For branches: did control transfer.
  uint64_t NextCodeIndex = 0; ///< Architecturally next instruction.
};

/// Outcome of a functional run.
struct ExecResult {
  bool Trapped = false;
  std::string TrapMessage;
  int64_t ReturnValue = 0;
  uint64_t InstructionsExecuted = 0;
  std::vector<EmitRecord> Output;
};

/// The architectural state and run loop.
class Executor {
public:
  /// \p MaxInstructions bounds runaway programs.
  explicit Executor(const MachineProgram &Prog,
                    uint64_t MaxInstructions = 4'000'000'000ull)
      : Prog(Prog), MaxInstructions(MaxInstructions) {
    reset();
  }

  /// Re-initializes registers and memory to the program's initial image.
  void reset() {
    Memory.assign(Prog.MemoryBytes, 0);
    for (const LinkedGlobal &G : Prog.Globals)
      if (!G.Init.empty())
        std::memcpy(Memory.data() + G.Base, G.Init.data(), G.Init.size());
    std::memset(X, 0, sizeof(X));
    std::memset(F, 0, sizeof(F));
    X[reg::SP] = static_cast<int64_t>(Prog.MemoryBytes);
    Pc = 0; // Startup stub: JAL main; HALT.
    Result = ExecResult();
    Halted = false;
  }

  bool halted() const { return Halted || Result.Trapped; }
  const ExecResult &result() const { return Result; }

  /// Runs up to \p Budget instructions (default: to completion), invoking
  /// \p Sink(const RetiredInstr&) after each retired instruction.
  /// Returns the number of instructions retired in this call.
  template <typename SinkT>
  uint64_t run(SinkT &&Sink, uint64_t Budget = UINT64_MAX) {
    uint64_t Retired = 0;
    while (!halted() && Retired < Budget) {
      if (Result.InstructionsExecuted >= MaxInstructions) {
        trap("instruction budget exhausted");
        break;
      }
      if (Pc >= Prog.Code.size()) {
        trap(formatString("pc out of range: %llu",
                          (unsigned long long)Pc));
        break;
      }
      const MachineInstr &MI = Prog.Code[Pc];
      RetiredInstr RI;
      RI.CodeIndex = Pc;
      RI.MI = &MI;
      uint64_t NextPc = Pc + 1;

      switch (MI.Op) {
      case MOp::LI:
        X[MI.Rd] = MI.Imm;
        break;
      case MOp::FLI:
        F[MI.Rd - reg::FpBase] = MI.FpImm;
        break;
      case MOp::MOV:
        X[MI.Rd] = X[MI.Rs1];
        break;
      case MOp::FMOV:
        F[MI.Rd - reg::FpBase] = F[MI.Rs1 - reg::FpBase];
        break;
      case MOp::ADD:
        X[MI.Rd] = X[MI.Rs1] + X[MI.Rs2];
        break;
      case MOp::SUB:
        X[MI.Rd] = X[MI.Rs1] - X[MI.Rs2];
        break;
      case MOp::MUL:
        X[MI.Rd] = X[MI.Rs1] * X[MI.Rs2];
        break;
      case MOp::DIV:
        if (X[MI.Rs2] == 0) {
          trap("integer division by zero");
          break;
        }
        X[MI.Rd] = X[MI.Rs1] / X[MI.Rs2];
        break;
      case MOp::REM:
        if (X[MI.Rs2] == 0) {
          trap("integer remainder by zero");
          break;
        }
        X[MI.Rd] = X[MI.Rs1] % X[MI.Rs2];
        break;
      case MOp::AND:
        X[MI.Rd] = X[MI.Rs1] & X[MI.Rs2];
        break;
      case MOp::OR:
        X[MI.Rd] = X[MI.Rs1] | X[MI.Rs2];
        break;
      case MOp::XOR:
        X[MI.Rd] = X[MI.Rs1] ^ X[MI.Rs2];
        break;
      case MOp::SHL:
        X[MI.Rd] = X[MI.Rs1] << (X[MI.Rs2] & 63);
        break;
      case MOp::SHR:
        X[MI.Rd] = X[MI.Rs1] >> (X[MI.Rs2] & 63);
        break;
      case MOp::CMP:
        X[MI.Rd] = compareInt(MI.Pred, X[MI.Rs1], X[MI.Rs2]);
        break;
      case MOp::ADDI:
        X[MI.Rd] = X[MI.Rs1] + MI.Imm;
        break;
      case MOp::CMOV:
        if (X[MI.Rs1] != 0)
          X[MI.Rd] = X[MI.Rs2];
        break;
      case MOp::FCMOV:
        if (X[MI.Rs1] != 0)
          F[MI.Rd - reg::FpBase] = F[MI.Rs2 - reg::FpBase];
        break;
      case MOp::FADD:
        F[MI.Rd - reg::FpBase] =
            F[MI.Rs1 - reg::FpBase] + F[MI.Rs2 - reg::FpBase];
        break;
      case MOp::FSUB:
        F[MI.Rd - reg::FpBase] =
            F[MI.Rs1 - reg::FpBase] - F[MI.Rs2 - reg::FpBase];
        break;
      case MOp::FMUL:
        F[MI.Rd - reg::FpBase] =
            F[MI.Rs1 - reg::FpBase] * F[MI.Rs2 - reg::FpBase];
        break;
      case MOp::FDIV:
        F[MI.Rd - reg::FpBase] =
            F[MI.Rs1 - reg::FpBase] / F[MI.Rs2 - reg::FpBase];
        break;
      case MOp::FCMP:
        X[MI.Rd] = compareFloat(MI.Pred, F[MI.Rs1 - reg::FpBase],
                                F[MI.Rs2 - reg::FpBase]);
        break;
      case MOp::CVTIF:
        F[MI.Rd - reg::FpBase] = static_cast<double>(X[MI.Rs1]);
        break;
      case MOp::CVTFI:
        X[MI.Rd] = static_cast<int64_t>(F[MI.Rs1 - reg::FpBase]);
        break;
      case MOp::LD8:
      case MOp::LD32:
      case MOp::LD64:
      case MOp::LDF:
      case MOp::ST8:
      case MOp::ST32:
      case MOp::ST64:
      case MOp::STF:
      case MOp::PREF: {
        uint64_t Ea = static_cast<uint64_t>(X[MI.Rs1] + MI.Imm);
        RI.MemAddr = Ea;
        if (MI.Op == MOp::PREF)
          break; // Non-binding; never faults.
        if (Ea < Prog.DataBase || Ea + MI.accessSize() > Memory.size()) {
          trap(formatString("memory access out of bounds at pc %llu: "
                            "addr=%llu",
                            (unsigned long long)Pc, (unsigned long long)Ea));
          break;
        }
        switch (MI.Op) {
        case MOp::LD8:
          X[MI.Rd] = Memory[Ea];
          break;
        case MOp::LD32: {
          int32_t V;
          std::memcpy(&V, Memory.data() + Ea, 4);
          X[MI.Rd] = V;
          break;
        }
        case MOp::LD64:
          std::memcpy(&X[MI.Rd], Memory.data() + Ea, 8);
          break;
        case MOp::LDF:
          std::memcpy(&F[MI.Rd - reg::FpBase], Memory.data() + Ea, 8);
          break;
        case MOp::ST8:
          Memory[Ea] = static_cast<uint8_t>(X[MI.Rs2]);
          break;
        case MOp::ST32: {
          int32_t V = static_cast<int32_t>(X[MI.Rs2]);
          std::memcpy(Memory.data() + Ea, &V, 4);
          break;
        }
        case MOp::ST64:
          std::memcpy(Memory.data() + Ea, &X[MI.Rs2], 8);
          break;
        case MOp::STF:
          std::memcpy(Memory.data() + Ea, &F[MI.Rs2 - reg::FpBase], 8);
          break;
        default:
          break;
        }
        break;
      }
      case MOp::BEQZ:
        if (X[MI.Rs1] == 0) {
          NextPc = static_cast<uint64_t>(MI.Target);
          RI.BranchTaken = true;
        }
        break;
      case MOp::BNEZ:
        if (X[MI.Rs1] != 0) {
          NextPc = static_cast<uint64_t>(MI.Target);
          RI.BranchTaken = true;
        }
        break;
      case MOp::J:
        NextPc = static_cast<uint64_t>(MI.Target);
        RI.BranchTaken = true;
        break;
      case MOp::JAL:
        X[reg::RA] = static_cast<int64_t>(Pc + 1);
        NextPc = static_cast<uint64_t>(MI.Target);
        RI.BranchTaken = true;
        break;
      case MOp::JR:
        NextPc = static_cast<uint64_t>(X[MI.Rs1]);
        RI.BranchTaken = true;
        break;
      case MOp::EMIT: {
        EmitRecord Rec;
        Rec.IntVal = X[MI.Rs1];
        Result.Output.push_back(Rec);
        break;
      }
      case MOp::EMITF: {
        EmitRecord Rec;
        Rec.IsFloat = true;
        Rec.FpVal = F[MI.Rs1 - reg::FpBase];
        Result.Output.push_back(Rec);
        break;
      }
      case MOp::HALT:
        Halted = true;
        Result.ReturnValue = X[1]; // Return value convention: x1.
        break;
      }

      if (Result.Trapped)
        break;
      ++Result.InstructionsExecuted;
      ++Retired;
      RI.NextCodeIndex = NextPc;
      Sink(static_cast<const RetiredInstr &>(RI));
      if (Halted)
        break;
      Pc = NextPc;
    }
    return Retired;
  }

  /// Runs with no observer.
  ExecResult runToCompletion() {
    run([](const RetiredInstr &) {});
    return Result;
  }

  /// Direct access for tests.
  int64_t intReg(unsigned R) const { return X[R]; }
  double fpReg(unsigned R) const { return F[R]; }
  uint64_t pc() const { return Pc; }

private:
  void trap(const std::string &Message) {
    if (Result.Trapped)
      return;
    Result.Trapped = true;
    Result.TrapMessage = Message;
  }

  static int64_t compareInt(CmpPred P, int64_t A, int64_t B) {
    switch (P) {
    case CmpPred::EQ:
      return A == B;
    case CmpPred::NE:
      return A != B;
    case CmpPred::LT:
      return A < B;
    case CmpPred::LE:
      return A <= B;
    case CmpPred::GT:
      return A > B;
    case CmpPred::GE:
      return A >= B;
    }
    return 0;
  }
  static int64_t compareFloat(CmpPred P, double A, double B) {
    switch (P) {
    case CmpPred::EQ:
      return A == B;
    case CmpPred::NE:
      return A != B;
    case CmpPred::LT:
      return A < B;
    case CmpPred::LE:
      return A <= B;
    case CmpPred::GT:
      return A > B;
    case CmpPred::GE:
      return A >= B;
    }
    return 0;
  }

  const MachineProgram &Prog;
  uint64_t MaxInstructions;
  std::vector<uint8_t> Memory;
  int64_t X[32];
  double F[32];
  uint64_t Pc = 0;
  bool Halted = false;
  ExecResult Result;
};

} // namespace msem

#endif // MSEM_ISA_EXECUTOR_H
