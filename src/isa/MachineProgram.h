//===- isa/MachineProgram.h - Linked executable image -------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fully linked program: flat code array (branch/call targets resolved to
/// code indices), global data layout and the initial memory image
/// parameters. Consumed by the functional executor and, through it, by the
/// timing models.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_ISA_MACHINEPROGRAM_H
#define MSEM_ISA_MACHINEPROGRAM_H

#include "isa/MachineInstr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace msem {

/// One linked function's extent in the code array (for profiling and
/// disassembly only; control transfers use resolved indices).
struct LinkedFunction {
  std::string Name;
  uint64_t EntryIndex = 0;
  uint64_t EndIndex = 0;
};

/// One global's placement in data memory.
struct LinkedGlobal {
  std::string Name;
  uint64_t Base = 0;
  uint64_t Size = 0;
  std::vector<uint8_t> Init;
};

/// A linked executable.
struct MachineProgram {
  std::vector<MachineInstr> Code;
  std::vector<LinkedFunction> Functions;
  std::vector<LinkedGlobal> Globals;
  uint64_t EntryIndex = 0;   ///< main's first instruction.
  uint64_t DataBase = 4096;  ///< First byte of global data.
  uint64_t DataEnd = 4096;   ///< One past the last global byte.
  uint64_t MemoryBytes = 0;  ///< Total data memory (globals + stack).

  /// Instruction-space byte address of code index \p Index (4 bytes per
  /// instruction; the instruction cache indexes this space).
  static uint64_t codeAddress(uint64_t Index) { return Index * 4; }

  /// Renders a disassembly listing.
  std::string disassemble() const;
};

} // namespace msem

#endif // MSEM_ISA_MACHINEPROGRAM_H
