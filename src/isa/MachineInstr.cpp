//===- isa/MachineInstr.cpp - Synthetic RISC instruction set -----------------===//

#include "isa/MachineInstr.h"
#include "isa/MachineProgram.h"

#include "support/Format.h"

using namespace msem;

const char *msem::machineOpName(MOp Op) {
  switch (Op) {
  case MOp::LI:
    return "li";
  case MOp::FLI:
    return "fli";
  case MOp::MOV:
    return "mov";
  case MOp::FMOV:
    return "fmov";
  case MOp::ADD:
    return "add";
  case MOp::SUB:
    return "sub";
  case MOp::MUL:
    return "mul";
  case MOp::DIV:
    return "div";
  case MOp::REM:
    return "rem";
  case MOp::AND:
    return "and";
  case MOp::OR:
    return "or";
  case MOp::XOR:
    return "xor";
  case MOp::SHL:
    return "shl";
  case MOp::SHR:
    return "shr";
  case MOp::CMP:
    return "cmp";
  case MOp::ADDI:
    return "addi";
  case MOp::CMOV:
    return "cmov";
  case MOp::FCMOV:
    return "fcmov";
  case MOp::FADD:
    return "fadd";
  case MOp::FSUB:
    return "fsub";
  case MOp::FMUL:
    return "fmul";
  case MOp::FDIV:
    return "fdiv";
  case MOp::FCMP:
    return "fcmp";
  case MOp::CVTIF:
    return "cvtif";
  case MOp::CVTFI:
    return "cvtfi";
  case MOp::LD8:
    return "ld8";
  case MOp::LD32:
    return "ld32";
  case MOp::LD64:
    return "ld64";
  case MOp::LDF:
    return "ldf";
  case MOp::ST8:
    return "st8";
  case MOp::ST32:
    return "st32";
  case MOp::ST64:
    return "st64";
  case MOp::STF:
    return "stf";
  case MOp::PREF:
    return "pref";
  case MOp::BEQZ:
    return "beqz";
  case MOp::BNEZ:
    return "bnez";
  case MOp::J:
    return "j";
  case MOp::JAL:
    return "jal";
  case MOp::JR:
    return "jr";
  case MOp::EMIT:
    return "emit";
  case MOp::EMITF:
    return "emitf";
  case MOp::HALT:
    return "halt";
  }
  return "?";
}

static std::string regName(int32_t R) {
  if (R < 0)
    return "-";
  if (R >= reg::FirstVirtual)
    return formatString("v%d", R - reg::FirstVirtual);
  if (R >= reg::FpBase)
    return formatString("f%d", R - reg::FpBase);
  return formatString("x%d", R);
}

std::string msem::printMachineInstr(const MachineInstr &MI) {
  std::string S = machineOpName(MI.Op);
  if (MI.Op == MOp::CMP || MI.Op == MOp::FCMP)
    S += std::string(".") + cmpPredName(MI.Pred);
  S += " ";
  switch (MI.Op) {
  case MOp::LI:
    S += regName(MI.Rd) + ", " +
         formatString("%lld", static_cast<long long>(MI.Imm));
    break;
  case MOp::FLI:
    S += regName(MI.Rd) + ", " + formatString("%g", MI.FpImm);
    break;
  case MOp::ADDI:
    S += regName(MI.Rd) + ", " + regName(MI.Rs1) + ", " +
         formatString("%lld", static_cast<long long>(MI.Imm));
    break;
  case MOp::LD8:
  case MOp::LD32:
  case MOp::LD64:
  case MOp::LDF:
    S += regName(MI.Rd) + ", [" + regName(MI.Rs1) +
         formatString("%+lld]", static_cast<long long>(MI.Imm));
    break;
  case MOp::ST8:
  case MOp::ST32:
  case MOp::ST64:
  case MOp::STF:
    S += regName(MI.Rs2) + ", [" + regName(MI.Rs1) +
         formatString("%+lld]", static_cast<long long>(MI.Imm));
    break;
  case MOp::PREF:
    S += "[" + regName(MI.Rs1) +
         formatString("%+lld]", static_cast<long long>(MI.Imm));
    break;
  case MOp::BEQZ:
  case MOp::BNEZ:
    S += regName(MI.Rs1) + ", " +
         formatString("@%lld", static_cast<long long>(MI.Target));
    break;
  case MOp::J:
  case MOp::JAL:
    S += formatString("@%lld", static_cast<long long>(MI.Target));
    break;
  case MOp::JR:
  case MOp::EMIT:
  case MOp::EMITF:
    S += regName(MI.Rs1);
    break;
  case MOp::HALT:
    break;
  default:
    // Three-register forms.
    S += regName(MI.Rd) + ", " + regName(MI.Rs1);
    if (MI.Rs2 >= 0)
      S += ", " + regName(MI.Rs2);
    break;
  }
  return S;
}

std::string MachineProgram::disassemble() const {
  std::string Out;
  size_t NextFn = 0;
  for (size_t Idx = 0; Idx < Code.size(); ++Idx) {
    while (NextFn < Functions.size() &&
           Functions[NextFn].EntryIndex == Idx) {
      Out += "\n" + Functions[NextFn].Name + ":\n";
      ++NextFn;
    }
    Out += formatString("%6zu:  %s\n", Idx,
                        printMachineInstr(Code[Idx]).c_str());
  }
  return Out;
}
