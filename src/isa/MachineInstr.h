//===- isa/MachineInstr.h - Synthetic RISC instruction set -------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target ISA: a load/store RISC with 32 integer and 32 floating
/// registers, in the spirit of the Alpha backend the paper compiled for.
/// Instructions are 4 "bytes" of instruction-address space each (so the
/// instruction cache sees realistic code footprints).
///
/// Register convention:
///   x0..x25  allocatable (x0..x14 caller-saved, x15..x25 callee-saved),
///   x26..x28 spill scratch
///   x29 = ra (link), x30 = fp (frame pointer; allocatable under
///   -fomit-frame-pointer), x31 = sp
///   f0..f29  allocatable (f1..f8 arguments), f30/f31 spill scratch
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_ISA_MACHINEINSTR_H
#define MSEM_ISA_MACHINEINSTR_H

#include "ir/Type.h" // For MemKind and CmpPred reuse.
#include "ir/Instruction.h"

#include <cstdint>
#include <string>

namespace msem {

/// Machine opcodes.
enum class MOp : uint8_t {
  // Immediates and moves.
  LI,   ///< rd = imm
  FLI,  ///< fd = fimm
  MOV,  ///< rd = rs1
  FMOV, ///< fd = fs1
  // Integer ALU, register-register.
  ADD,
  SUB,
  MUL,
  DIV,
  REM,
  AND,
  OR,
  XOR,
  SHL,
  SHR,
  CMP, ///< rd = (rs1 <pred> rs2) ? 1 : 0
  // Integer ALU, immediate.
  ADDI, ///< rd = rs1 + imm
  // Conditional moves (if-converted selects).
  CMOV,  ///< if (rs1 != 0) rd = rs2 (rd is also a source)
  FCMOV, ///< if (rs1 != 0) fd = fs2 (fd is also a source)
  // Floating point.
  FADD,
  FSUB,
  FMUL,
  FDIV,
  FCMP,  ///< rd = (fs1 <pred> fs2) ? 1 : 0
  CVTIF, ///< fd = (double)rs1
  CVTFI, ///< rd = (int64)fs1
  // Memory. Effective address is rs1 + imm.
  LD8,  ///< rd = zext(mem8[ea])
  LD32, ///< rd = sext(mem32[ea])
  LD64, ///< rd = mem64[ea]
  LDF,  ///< fd = memf64[ea]
  ST8,  ///< mem8[ea] = rs2
  ST32, ///< mem32[ea] = rs2
  ST64, ///< mem64[ea] = rs2
  STF,  ///< memf64[ea] = fs2
  PREF, ///< non-binding prefetch of ea
  // Control.
  BEQZ, ///< if (rs1 == 0) goto Target
  BNEZ, ///< if (rs1 != 0) goto Target
  J,    ///< goto Target
  JAL,  ///< ra = pc + 1; goto Target (function entry)
  JR,   ///< goto rs1 (returns: rs1 = ra)
  // Observability and termination.
  EMIT,  ///< append int rs1 to the output stream
  EMITF, ///< append fp fs1 to the output stream
  HALT,  ///< stop execution (end of main)
};

/// Physical register ids: integer registers are 0..31, floating registers
/// are 32..63 in the unified numbering used for dependence tracking.
namespace reg {
constexpr int16_t RA = 29;
constexpr int16_t FP = 30;
constexpr int16_t SP = 31;
constexpr int16_t IntScratch0 = 27;
constexpr int16_t IntScratch1 = 28;
constexpr int16_t IntScratch2 = 26; ///< Third scratch for CMOV spills.
constexpr int16_t FpBase = 32;
constexpr int16_t FpScratch0 = FpBase + 30;
constexpr int16_t FpScratch1 = FpBase + 31;
/// First virtual register id used during code generation.
constexpr int32_t FirstVirtual = 1024;
} // namespace reg

/// Functional unit classes (SimpleScalar's resource classes).
enum class FuClass : uint8_t {
  None,    ///< Consumes no FU (HALT).
  IntAlu,  ///< 1-cycle integer/branch operations.
  IntMult, ///< Integer multiplier (3 cycles).
  IntDiv,  ///< Integer divider (20 cycles, unpipelined).
  FpAdd,   ///< FP adder/compare/convert (2 cycles).
  FpMult,  ///< FP multiplier (4 cycles).
  FpDiv,   ///< FP divider (12 cycles, unpipelined).
  MemPort, ///< Load/store port (address generation + access).
};

/// One machine instruction. `Rd`/`Rs1`/`Rs2` use the unified register
/// numbering (or virtual ids >= reg::FirstVirtual during codegen).
struct MachineInstr {
  MOp Op = MOp::HALT;
  CmpPred Pred = CmpPred::EQ;
  int32_t Rd = -1;
  int32_t Rs1 = -1;
  int32_t Rs2 = -1;
  int64_t Imm = 0;
  double FpImm = 0.0;
  /// Branch/jump/call target: code index, patched at link time. Before
  /// linking it holds a block index (branches) or callee index (JAL).
  int64_t Target = -1;

  /// The destination register, or -1.
  int32_t destReg() const {
    switch (Op) {
    case MOp::ST8:
    case MOp::ST32:
    case MOp::ST64:
    case MOp::STF:
    case MOp::PREF:
    case MOp::BEQZ:
    case MOp::BNEZ:
    case MOp::J:
    case MOp::JR:
    case MOp::EMIT:
    case MOp::EMITF:
    case MOp::HALT:
      return -1;
    default:
      return Rd;
    }
  }

  /// Source registers into \p Out (size >= 3); returns the count.
  /// CMOV/FCMOV read their destination as well.
  unsigned srcRegs(int32_t Out[3]) const {
    unsigned N = 0;
    auto Push = [&](int32_t R) {
      if (R >= 0)
        Out[N++] = R;
    };
    switch (Op) {
    case MOp::LI:
    case MOp::FLI:
    case MOp::J:
    case MOp::HALT:
      break;
    case MOp::JAL:
      break;
    case MOp::MOV:
    case MOp::FMOV:
    case MOp::ADDI:
    case MOp::CVTIF:
    case MOp::CVTFI:
    case MOp::BEQZ:
    case MOp::BNEZ:
    case MOp::JR:
    case MOp::EMIT:
    case MOp::EMITF:
    case MOp::PREF:
    case MOp::LD8:
    case MOp::LD32:
    case MOp::LD64:
    case MOp::LDF:
      Push(Rs1);
      break;
    case MOp::CMOV:
    case MOp::FCMOV:
      Push(Rs1);
      Push(Rs2);
      Push(Rd); // Old value survives when the condition is false.
      break;
    default:
      Push(Rs1);
      Push(Rs2);
      break;
    }
    return N;
  }

  bool isLoad() const {
    return Op == MOp::LD8 || Op == MOp::LD32 || Op == MOp::LD64 ||
           Op == MOp::LDF;
  }
  bool isStore() const {
    return Op == MOp::ST8 || Op == MOp::ST32 || Op == MOp::ST64 ||
           Op == MOp::STF;
  }
  bool isPrefetch() const { return Op == MOp::PREF; }
  bool isBranch() const {
    return Op == MOp::BEQZ || Op == MOp::BNEZ || Op == MOp::J ||
           Op == MOp::JAL || Op == MOp::JR;
  }
  bool isConditionalBranch() const {
    return Op == MOp::BEQZ || Op == MOp::BNEZ;
  }

  /// Bytes moved by a memory access (0 for non-memory instructions).
  unsigned accessSize() const {
    switch (Op) {
    case MOp::LD8:
    case MOp::ST8:
      return 1;
    case MOp::LD32:
    case MOp::ST32:
      return 4;
    case MOp::LD64:
    case MOp::LDF:
    case MOp::ST64:
    case MOp::STF:
    case MOp::PREF:
      return 8;
    default:
      return 0;
    }
  }

  /// The functional unit class this instruction occupies.
  FuClass fuClass() const {
    switch (Op) {
    case MOp::MUL:
      return FuClass::IntMult;
    case MOp::DIV:
    case MOp::REM:
      return FuClass::IntDiv;
    case MOp::FADD:
    case MOp::FSUB:
    case MOp::FCMP:
    case MOp::CVTIF:
    case MOp::CVTFI:
      return FuClass::FpAdd;
    case MOp::FMUL:
      return FuClass::FpMult;
    case MOp::FDIV:
      return FuClass::FpDiv;
    case MOp::LD8:
    case MOp::LD32:
    case MOp::LD64:
    case MOp::LDF:
    case MOp::ST8:
    case MOp::ST32:
    case MOp::ST64:
    case MOp::STF:
    case MOp::PREF:
      return FuClass::MemPort;
    case MOp::HALT:
      return FuClass::None;
    default:
      return FuClass::IntAlu;
    }
  }
};

/// Printable mnemonic.
const char *machineOpName(MOp Op);

/// Renders one instruction for disassembly listings.
std::string printMachineInstr(const MachineInstr &MI);

} // namespace msem

#endif // MSEM_ISA_MACHINEINSTR_H
