//===- isa/MachineInstr.h - Synthetic RISC instruction set -------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target ISA: a load/store RISC with 32 integer and 32 floating
/// registers, in the spirit of the Alpha backend the paper compiled for.
/// Instructions are 4 "bytes" of instruction-address space each (so the
/// instruction cache sees realistic code footprints).
///
/// Register convention:
///   x0..x25  allocatable (x0..x14 caller-saved, x15..x25 callee-saved),
///   x26..x28 spill scratch
///   x29 = ra (link), x30 = fp (frame pointer; allocatable under
///   -fomit-frame-pointer), x31 = sp
///   f0..f29  allocatable (f1..f8 arguments), f30/f31 spill scratch
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_ISA_MACHINEINSTR_H
#define MSEM_ISA_MACHINEINSTR_H

#include "ir/Type.h" // For MemKind and CmpPred reuse.
#include "ir/Instruction.h"

#include <array>
#include <cstdint>
#include <string>

namespace msem {

/// Machine opcodes.
enum class MOp : uint8_t {
  // Immediates and moves.
  LI,   ///< rd = imm
  FLI,  ///< fd = fimm
  MOV,  ///< rd = rs1
  FMOV, ///< fd = fs1
  // Integer ALU, register-register.
  ADD,
  SUB,
  MUL,
  DIV,
  REM,
  AND,
  OR,
  XOR,
  SHL,
  SHR,
  CMP, ///< rd = (rs1 <pred> rs2) ? 1 : 0
  // Integer ALU, immediate.
  ADDI, ///< rd = rs1 + imm
  // Conditional moves (if-converted selects).
  CMOV,  ///< if (rs1 != 0) rd = rs2 (rd is also a source)
  FCMOV, ///< if (rs1 != 0) fd = fs2 (fd is also a source)
  // Floating point.
  FADD,
  FSUB,
  FMUL,
  FDIV,
  FCMP,  ///< rd = (fs1 <pred> fs2) ? 1 : 0
  CVTIF, ///< fd = (double)rs1
  CVTFI, ///< rd = (int64)fs1
  // Memory. Effective address is rs1 + imm.
  LD8,  ///< rd = zext(mem8[ea])
  LD32, ///< rd = sext(mem32[ea])
  LD64, ///< rd = mem64[ea]
  LDF,  ///< fd = memf64[ea]
  ST8,  ///< mem8[ea] = rs2
  ST32, ///< mem32[ea] = rs2
  ST64, ///< mem64[ea] = rs2
  STF,  ///< memf64[ea] = fs2
  PREF, ///< non-binding prefetch of ea
  // Control.
  BEQZ, ///< if (rs1 == 0) goto Target
  BNEZ, ///< if (rs1 != 0) goto Target
  J,    ///< goto Target
  JAL,  ///< ra = pc + 1; goto Target (function entry)
  JR,   ///< goto rs1 (returns: rs1 = ra)
  // Observability and termination.
  EMIT,  ///< append int rs1 to the output stream
  EMITF, ///< append fp fs1 to the output stream
  HALT,  ///< stop execution (end of main)
};

/// Physical register ids: integer registers are 0..31, floating registers
/// are 32..63 in the unified numbering used for dependence tracking.
namespace reg {
constexpr int16_t RA = 29;
constexpr int16_t FP = 30;
constexpr int16_t SP = 31;
constexpr int16_t IntScratch0 = 27;
constexpr int16_t IntScratch1 = 28;
constexpr int16_t IntScratch2 = 26; ///< Third scratch for CMOV spills.
constexpr int16_t FpBase = 32;
constexpr int16_t FpScratch0 = FpBase + 30;
constexpr int16_t FpScratch1 = FpBase + 31;
/// First virtual register id used during code generation.
constexpr int32_t FirstVirtual = 1024;
/// One past the last physical register: srcRegsPadded() fills unused
/// source slots with this id so a readiness scoreboard indexed by it can
/// keep a permanently-zero pad entry and read all three slots without
/// branching on the operand count.
constexpr int32_t ScoreboardPad = 64;
} // namespace reg

/// Functional unit classes (SimpleScalar's resource classes).
enum class FuClass : uint8_t {
  None,    ///< Consumes no FU (HALT).
  IntAlu,  ///< 1-cycle integer/branch operations.
  IntMult, ///< Integer multiplier (3 cycles).
  IntDiv,  ///< Integer divider (20 cycles, unpipelined).
  FpAdd,   ///< FP adder/compare/convert (2 cycles).
  FpMult,  ///< FP multiplier (4 cycles).
  FpDiv,   ///< FP divider (12 cycles, unpipelined).
  MemPort, ///< Load/store port (address generation + access).
};

namespace detail {

/// Packed per-opcode classification, built once at compile time so the
/// hot paths (OoOCore::consume, functional warming, trace capture) pay a
/// single table load per query instead of a switch dispatch each for
/// isLoad/isStore/fuClass/accessSize/srcRegs/destReg.
struct MOpTraits {
  uint8_t Flags = 0;
  uint8_t Fu = 0;     ///< FuClass.
  uint8_t Access = 0; ///< accessSize in bytes.
  uint8_t SrcPat = 0; ///< Source-register pattern; see srcRegs().
};

constexpr uint8_t MFlagLoad = 1;
constexpr uint8_t MFlagStore = 2;
constexpr uint8_t MFlagPref = 4;
constexpr uint8_t MFlagCondBr = 8;
constexpr uint8_t MFlagBranch = 16;
constexpr uint8_t MFlagNoDest = 32;

constexpr unsigned NumMOps = static_cast<unsigned>(MOp::HALT) + 1;

constexpr MOpTraits mopTraitsFor(MOp Op) {
  MOpTraits T;
  switch (Op) {
  case MOp::LD8:
  case MOp::LD32:
  case MOp::LD64:
  case MOp::LDF:
    T.Flags |= MFlagLoad;
    break;
  case MOp::ST8:
  case MOp::ST32:
  case MOp::ST64:
  case MOp::STF:
    T.Flags |= MFlagStore;
    break;
  case MOp::PREF:
    T.Flags |= MFlagPref;
    break;
  case MOp::BEQZ:
  case MOp::BNEZ:
    T.Flags |= MFlagCondBr;
    break;
  default:
    break;
  }
  switch (Op) {
  case MOp::BEQZ:
  case MOp::BNEZ:
  case MOp::J:
  case MOp::JAL:
  case MOp::JR:
    T.Flags |= MFlagBranch;
    break;
  default:
    break;
  }
  switch (Op) {
  case MOp::ST8:
  case MOp::ST32:
  case MOp::ST64:
  case MOp::STF:
  case MOp::PREF:
  case MOp::BEQZ:
  case MOp::BNEZ:
  case MOp::J:
  case MOp::JR:
  case MOp::EMIT:
  case MOp::EMITF:
  case MOp::HALT:
    T.Flags |= MFlagNoDest;
    break;
  default:
    break;
  }
  switch (Op) {
  case MOp::LD8:
  case MOp::ST8:
    T.Access = 1;
    break;
  case MOp::LD32:
  case MOp::ST32:
    T.Access = 4;
    break;
  case MOp::LD64:
  case MOp::LDF:
  case MOp::ST64:
  case MOp::STF:
  case MOp::PREF:
    T.Access = 8;
    break;
  default:
    break;
  }
  switch (Op) {
  case MOp::MUL:
    T.Fu = static_cast<uint8_t>(FuClass::IntMult);
    break;
  case MOp::DIV:
  case MOp::REM:
    T.Fu = static_cast<uint8_t>(FuClass::IntDiv);
    break;
  case MOp::FADD:
  case MOp::FSUB:
  case MOp::FCMP:
  case MOp::CVTIF:
  case MOp::CVTFI:
    T.Fu = static_cast<uint8_t>(FuClass::FpAdd);
    break;
  case MOp::FMUL:
    T.Fu = static_cast<uint8_t>(FuClass::FpMult);
    break;
  case MOp::FDIV:
    T.Fu = static_cast<uint8_t>(FuClass::FpDiv);
    break;
  case MOp::LD8:
  case MOp::LD32:
  case MOp::LD64:
  case MOp::LDF:
  case MOp::ST8:
  case MOp::ST32:
  case MOp::ST64:
  case MOp::STF:
  case MOp::PREF:
    T.Fu = static_cast<uint8_t>(FuClass::MemPort);
    break;
  case MOp::HALT:
    T.Fu = static_cast<uint8_t>(FuClass::None);
    break;
  default:
    T.Fu = static_cast<uint8_t>(FuClass::IntAlu);
    break;
  }
  switch (Op) {
  case MOp::LI:
  case MOp::FLI:
  case MOp::J:
  case MOp::JAL:
  case MOp::HALT:
    T.SrcPat = 0; // No sources.
    break;
  case MOp::MOV:
  case MOp::FMOV:
  case MOp::ADDI:
  case MOp::CVTIF:
  case MOp::CVTFI:
  case MOp::BEQZ:
  case MOp::BNEZ:
  case MOp::JR:
  case MOp::EMIT:
  case MOp::EMITF:
  case MOp::PREF:
  case MOp::LD8:
  case MOp::LD32:
  case MOp::LD64:
  case MOp::LDF:
    T.SrcPat = 1; // Rs1 only.
    break;
  case MOp::CMOV:
  case MOp::FCMOV:
    T.SrcPat = 2; // Rs1, Rs2 and Rd (old value survives).
    break;
  default:
    T.SrcPat = 3; // Rs1, Rs2.
    break;
  }
  return T;
}

inline constexpr std::array<MOpTraits, NumMOps> MOpTraitsTable = [] {
  std::array<MOpTraits, NumMOps> Table{};
  for (unsigned I = 0; I < NumMOps; ++I)
    Table[I] = mopTraitsFor(static_cast<MOp>(I));
  return Table;
}();

} // namespace detail

/// One machine instruction. `Rd`/`Rs1`/`Rs2` use the unified register
/// numbering (or virtual ids >= reg::FirstVirtual during codegen).
struct MachineInstr {
  MOp Op = MOp::HALT;
  CmpPred Pred = CmpPred::EQ;
  int32_t Rd = -1;
  int32_t Rs1 = -1;
  int32_t Rs2 = -1;
  int64_t Imm = 0;
  double FpImm = 0.0;
  /// Branch/jump/call target: code index, patched at link time. Before
  /// linking it holds a block index (branches) or callee index (JAL).
  int64_t Target = -1;

  /// The destination register, or -1.
  int32_t destReg() const {
    return (traits().Flags & detail::MFlagNoDest) ? -1 : Rd;
  }

  /// Source registers into \p Out (size >= 3); returns the count.
  /// CMOV/FCMOV read their destination as well.
  unsigned srcRegs(int32_t Out[3]) const {
    unsigned N = 0;
    switch (traits().SrcPat) {
    case 0: // LI/FLI/J/JAL/HALT.
      break;
    case 1: // Unary ops, loads, prefetch, branches-on-register.
      if (Rs1 >= 0)
        Out[N++] = Rs1;
      break;
    case 2: // CMOV/FCMOV: old value survives when the condition is false.
      if (Rs1 >= 0)
        Out[N++] = Rs1;
      if (Rs2 >= 0)
        Out[N++] = Rs2;
      if (Rd >= 0)
        Out[N++] = Rd;
      break;
    default: // Binary register-register ops and stores.
      if (Rs1 >= 0)
        Out[N++] = Rs1;
      if (Rs2 >= 0)
        Out[N++] = Rs2;
      break;
    }
    return N;
  }

  /// Branchless variant of srcRegs() for the timing core's operand
  /// scoreboard: always fills all three slots, padding unused ones with
  /// reg::ScoreboardPad. Equivalent to srcRegs() followed by padding --
  /// the slot order matches, only the count return is dropped.
  void srcRegsPadded(int32_t Out[3]) const {
    const uint8_t P = traits().SrcPat;
    Out[0] = (P != 0 && Rs1 >= 0) ? Rs1 : reg::ScoreboardPad;
    Out[1] = (P >= 2 && Rs2 >= 0) ? Rs2 : reg::ScoreboardPad;
    Out[2] = (P == 2 && Rd >= 0) ? Rd : reg::ScoreboardPad;
  }

  bool isLoad() const { return traits().Flags & detail::MFlagLoad; }
  bool isStore() const { return traits().Flags & detail::MFlagStore; }
  bool isPrefetch() const { return traits().Flags & detail::MFlagPref; }
  bool isBranch() const { return traits().Flags & detail::MFlagBranch; }
  bool isConditionalBranch() const {
    return traits().Flags & detail::MFlagCondBr;
  }

  /// Bytes moved by a memory access (0 for non-memory instructions).
  unsigned accessSize() const { return traits().Access; }

  /// The functional unit class this instruction occupies.
  FuClass fuClass() const { return static_cast<FuClass>(traits().Fu); }

private:
  const detail::MOpTraits &traits() const {
    return detail::MOpTraitsTable[static_cast<unsigned>(Op)];
  }
};

/// Printable mnemonic.
const char *machineOpName(MOp Op);

/// Renders one instruction for disassembly listings.
std::string printMachineInstr(const MachineInstr &MI);

} // namespace msem

#endif // MSEM_ISA_MACHINEINSTR_H
