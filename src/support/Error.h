//===- support/Error.h - Fatal error reporting ------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-handling utilities. The library is exception-free; internal
/// invariant violations use assert, unrecoverable environmental failures use
/// fatalError.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_ERROR_H
#define MSEM_SUPPORT_ERROR_H

#include <string>

namespace msem {

/// Prints "fatal error: <Message>" to stderr and aborts. Use only for
/// conditions that cannot be reported to the caller (OOM-class failures,
/// corrupt cache files, impossible configurations reached at run time).
[[noreturn]] void fatalError(const std::string &Message);

/// Prints "warning: <Message>" to stderr and continues.
void reportWarning(const std::string &Message);

/// Marks a point in code that must never be reached.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace msem

#define MSEM_UNREACHABLE(MSG)                                                  \
  ::msem::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // MSEM_SUPPORT_ERROR_H
