//===- support/Format.cpp - printf-style string formatting ----------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace msem;

std::string msem::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string msem::joinStrings(const std::vector<std::string> &Parts,
                              const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::vector<std::string> msem::splitString(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (;;) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string msem::trimString(const std::string &Text) {
  size_t Begin = Text.find_first_not_of(" \t\r\n");
  if (Begin == std::string::npos)
    return std::string();
  size_t End = Text.find_last_not_of(" \t\r\n");
  return Text.substr(Begin, End - Begin + 1);
}
