//===- support/Statistics.cpp - Descriptive statistics --------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace msem;

void OnlineStats::add(double X) {
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double OnlineStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::standardError() const {
  if (N == 0)
    return 0.0;
  return stddev() / std::sqrt(static_cast<double>(N));
}

void OnlineStats::merge(const OnlineStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  double Delta = Other.Mean - Mean;
  size_t Total = N + Other.N;
  Mean += Delta * static_cast<double>(Other.N) / static_cast<double>(Total);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(N) *
                       static_cast<double>(Other.N) /
                       static_cast<double>(Total);
  N = Total;
}

double msem::mean(const std::vector<double> &V) {
  if (V.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : V)
    Sum += X;
  return Sum / static_cast<double>(V.size());
}

double msem::stddev(const std::vector<double> &V) {
  if (V.size() < 2)
    return 0.0;
  double M = mean(V);
  double Sum = 0.0;
  for (double X : V)
    Sum += (X - M) * (X - M);
  return std::sqrt(Sum / static_cast<double>(V.size() - 1));
}

double msem::percentile(std::vector<double> V, double P) {
  assert(P >= 0.0 && P <= 100.0 && "percentile out of range");
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  if (V.size() == 1)
    return V[0];
  double Rank = (P / 100.0) * static_cast<double>(V.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, V.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return V[Lo] * (1.0 - Frac) + V[Hi] * Frac;
}

double msem::zValueForConfidence(double Confidence) {
  // Common levels first so callers get the textbook constants exactly.
  if (Confidence >= 0.9965 && Confidence <= 0.9975)
    return 2.9677; // The "3 sigma" level SMARTS quotes as 99.7%.
  if (Confidence >= 0.985 && Confidence <= 0.995)
    return 2.5758;
  if (Confidence >= 0.945 && Confidence <= 0.955)
    return 1.9600;
  if (Confidence >= 0.895 && Confidence <= 0.905)
    return 1.6449;
  // Beasley-Springer-Moro style rational approximation via Acklam's
  // inverse-normal for arbitrary levels.
  double P = 0.5 + Confidence / 2.0;
  if (P <= 0.5)
    return 0.0;
  if (P >= 1.0)
    P = 1.0 - 1e-12;
  // Acklam's approximation, upper region only (P > 0.5).
  static const double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double PLow = 0.02425;
  double Q, R;
  if (P < 1.0 - PLow) {
    Q = P - 0.5;
    R = Q * Q;
    return (((((A[0] * R + A[1]) * R + A[2]) * R + A[3]) * R + A[4]) * R +
            A[5]) *
           Q /
           (((((B[0] * R + B[1]) * R + B[2]) * R + B[3]) * R + B[4]) * R + 1.0);
  }
  Q = std::sqrt(-2.0 * std::log(1.0 - P));
  return -(((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
           C[5]) /
         ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
}

double msem::meanAbsolutePercentError(const std::vector<double> &Actual,
                                      const std::vector<double> &Predicted) {
  assert(Actual.size() == Predicted.size() && "size mismatch");
  if (Actual.empty())
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0; I < Actual.size(); ++I) {
    assert(Actual[I] != 0.0 && "MAPE undefined for zero actual");
    Sum += std::fabs((Actual[I] - Predicted[I]) / Actual[I]);
  }
  return 100.0 * Sum / static_cast<double>(Actual.size());
}

double msem::rootMeanSquaredError(const std::vector<double> &Actual,
                                  const std::vector<double> &Predicted) {
  assert(Actual.size() == Predicted.size() && "size mismatch");
  if (Actual.empty())
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0; I < Actual.size(); ++I) {
    double E = Actual[I] - Predicted[I];
    Sum += E * E;
  }
  return std::sqrt(Sum / static_cast<double>(Actual.size()));
}

double msem::rSquared(const std::vector<double> &Actual,
                      const std::vector<double> &Predicted) {
  assert(Actual.size() == Predicted.size() && "size mismatch");
  if (Actual.empty())
    return 0.0;
  double M = mean(Actual);
  double SSE = 0.0, SST = 0.0;
  for (size_t I = 0; I < Actual.size(); ++I) {
    SSE += (Actual[I] - Predicted[I]) * (Actual[I] - Predicted[I]);
    SST += (Actual[I] - M) * (Actual[I] - M);
  }
  if (SST == 0.0)
    return 0.0;
  return 1.0 - SSE / SST;
}
