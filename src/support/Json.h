//===- support/Json.h - Minimal JSON reader/writer ---------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The self-contained JSON value shared by campaign checkpoints, model
/// artifacts and the registry manifest: parse, navigate, build, serialize.
/// Deliberately small -- objects are std::map-backed so serialization order
/// (and therefore checkpoint/artifact diffs) is deterministic, and doubles
/// are written with 17 significant digits so every IEEE-754 value
/// round-trips bitwise through a document. 64-bit
/// integers that must survive exactly (seeds, RNG state) are stored as
/// hex strings, since JSON numbers are doubles. Non-finite doubles, which
/// have no JSON number form, are encoded as the strings "NaN",
/// "Infinity" and "-Infinity"; asDouble() decodes them back.
///
/// Error handling is exception-free to match the library: parse() returns
/// a Null value and an error string on malformed input, and the typed
/// accessors return fallback defaults on kind mismatches.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_JSON_H
#define MSEM_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msem {

/// One JSON value (null / bool / number / string / array / object).
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;
  static Json boolean(bool B);
  static Json number(double N);
  static Json string(std::string S);
  static Json array();
  static Json object();
  /// A uint64 encoded losslessly as a "0x..." hex string.
  static Json hexU64(uint64_t V);

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  // --- Typed reads (fallback on kind mismatch) -----------------------------
  bool asBool(bool Fallback = false) const;
  double asDouble(double Fallback = 0.0) const;
  int64_t asInt(int64_t Fallback = 0) const;
  const std::string &asString(const std::string &Fallback = emptyString()) const;
  /// Decodes a hexU64-encoded value.
  uint64_t asHexU64(uint64_t Fallback = 0) const;

  // --- Containers ----------------------------------------------------------
  /// Object member by key; a shared Null value when absent or not an
  /// object. Lookup never inserts.
  const Json &operator[](const std::string &Key) const;
  /// Array element by index; a shared Null value when out of range.
  const Json &at(size_t Index) const;
  size_t size() const;
  bool has(const std::string &Key) const;

  const std::vector<Json> &items() const { return Arr; }
  const std::map<std::string, Json> &members() const { return Obj; }

  // --- Builders ------------------------------------------------------------
  /// Sets an object member (value semantics; asserts kind Object/Null).
  Json &set(const std::string &Key, Json Value);
  /// Appends an array element (asserts kind Array/Null).
  Json &push(Json Value);

  // --- Serialization -------------------------------------------------------
  /// Compact single-line form.
  std::string dump() const;
  /// Indented multi-line form (2-space indent), for human-readable
  /// checkpoints.
  std::string dumpPretty() const;

  /// Parses \p Text. On failure returns a Null value and, when \p Error is
  /// non-null, a "line:col: message" diagnostic.
  static Json parse(const std::string &Text, std::string *Error = nullptr);

  // --- Array helpers (the shape model artifacts are made of) ---------------
  /// An array of numbers from a double vector (17-significant-digit,
  /// bitwise round-trip like every number this DOM writes).
  static Json numberArray(const std::vector<double> &Values);
  /// The reverse: this array's elements as doubles (empty when not an
  /// array; kind mismatches fall back to 0.0 per asDouble).
  std::vector<double> toDoubleVector() const;

private:
  static const std::string &emptyString();
  void dumpTo(std::string &Out, int Indent, int Depth) const;

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Json> Arr;
  std::map<std::string, Json> Obj;
};

} // namespace msem

#endif // MSEM_SUPPORT_JSON_H
