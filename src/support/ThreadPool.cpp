//===- support/ThreadPool.cpp - Deterministic parallel execution ----------------===//

#include "support/ThreadPool.h"

#include "support/Env.h"
#include "support/Format.h"
#include "support/StatsServer.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <memory>

using namespace msem;

namespace {

thread_local bool InWorkerThread = false;

} // namespace

size_t msem::defaultThreadCount() {
  int64_t FromEnv = env().Threads;
  if (FromEnv > 0)
    return static_cast<size_t>(FromEnv);
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw ? Hw : 1;
}

/// One parallel region. Lives on the caller's stack; the caller does not
/// return from parallelFor until every queued task has left the batch, so
/// worker references never dangle.
struct ThreadPool::Batch {
  size_t Begin = 0;
  size_t Count = 0;
  size_t Grain = 1;
  size_t NumChunks = 0;
  const std::function<void(size_t)> *Body = nullptr;
  /// The enqueuing span's trace context, re-established around every chunk
  /// runner (workers *and* the participating caller) so spans created
  /// inside iterations parent to the span that issued the region -- and so
  /// every iteration body sees the same adopted-context ordinal rules
  /// regardless of which thread runs it.
  telemetry::TraceContext Ctx;

  std::atomic<size_t> NextChunk{0};
  std::atomic<bool> Cancelled{false};
  std::atomic<uint64_t> BusyNs{0};

  std::mutex Mutex;
  std::condition_variable Done;
  size_t Outstanding = 0; ///< Queued worker tasks not yet finished.
  std::exception_ptr Error;
};

ThreadPool::ThreadPool(size_t Threads)
    : NumThreads(Threads ? Threads : defaultThreadCount()) {
  for (size_t I = 0; I + 1 < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  // Registered after the workers exist and destroyed (deregistered) before
  // they are joined, so the /statusz callback never observes a
  // half-constructed pool.
  StatusSection = std::make_unique<ScopedStatusProvider>(
      "pool", [this] {
        return formatString("threads: %zu\nqueued tasks: %zu", NumThreads,
                            queueDepth());
      });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

bool ThreadPool::inWorker() { return InWorkerThread; }

size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Queue.size();
}

void ThreadPool::workerLoop() {
  InWorkerThread = true;
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::runChunks(Batch &B) {
  const bool Telemetry = telemetry::enabled();
  // Adopt the region's trace context on this thread for the duration of
  // the chunk loop (restores the previous context on scope exit).
  telemetry::ContextGuard Guard(B.Ctx);
  uint64_t Start = Telemetry ? telemetry::nowNs() : 0;
  for (;;) {
    size_t Chunk = B.NextChunk.fetch_add(1, std::memory_order_relaxed);
    if (Chunk >= B.NumChunks || B.Cancelled.load(std::memory_order_relaxed))
      break;
    size_t Lo = B.Begin + Chunk * B.Grain;
    size_t Hi = std::min(B.Begin + B.Count, Lo + B.Grain);
    try {
      for (size_t I = Lo; I < Hi; ++I) {
        if (B.Cancelled.load(std::memory_order_relaxed))
          break;
        (*B.Body)(I);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> Lock(B.Mutex);
        if (!B.Error)
          B.Error = std::current_exception();
      }
      B.Cancelled.store(true, std::memory_order_relaxed);
    }
  }
  if (Telemetry)
    B.BusyNs.fetch_add(telemetry::nowNs() - Start,
                       std::memory_order_relaxed);
}

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Body,
                             const char *Tag) {
  if (End <= Begin)
    return;
  const size_t N = End - Begin;
  const bool Telemetry = telemetry::enabled();
  const std::string Stage = Tag ? Tag : "untagged";

  // Inline when there is nothing to fan out to, or when already inside a
  // worker (nested regions run sequentially -- no deadlock, outermost
  // region keeps the parallelism).
  if (Workers.empty() || N == 1 || InWorkerThread) {
    uint64_t Start = Telemetry && !InWorkerThread ? telemetry::nowNs() : 0;
    {
      // Same adopted-context rules as the fanned-out path, so span
      // identity inside iteration bodies does not depend on whether the
      // region ran inline (ids must be bitwise identical at any
      // MSEM_THREADS).
      telemetry::ContextGuard Guard(telemetry::currentContext());
      for (size_t I = Begin; I < End; ++I)
        Body(I);
    }
    if (Telemetry && !InWorkerThread) {
      telemetry::counter("pool.regions").add(1);
      telemetry::counter("pool.tasks." + Stage).add(N);
      telemetry::timer("pool.region." + Stage)
          .add(telemetry::nowNs() - Start);
      telemetry::gauge("pool.threads")
          .set(static_cast<double>(NumThreads));
      telemetry::gauge("pool.utilization").set(1.0);
      telemetry::maybeDumpMetrics();
    }
    return;
  }

  Batch B;
  B.Begin = Begin;
  B.Count = N;
  // ~8 chunks per thread balances load without shredding cache locality;
  // the heavy stages (one simulation per index) get one index per chunk
  // anyway because N is small relative to the pool.
  B.Grain = std::max<size_t>(1, N / (NumThreads * 8));
  B.NumChunks = (N + B.Grain - 1) / B.Grain;
  B.Body = &Body;
  B.Ctx = telemetry::currentContext();

  const size_t Spawn = std::min(Workers.size(), B.NumChunks);
  B.Outstanding = Spawn;
  uint64_t EnqueueNs = Telemetry ? telemetry::nowNs() : 0;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (size_t I = 0; I < Spawn; ++I)
      Queue.push_back([&B, EnqueueNs, Telemetry] {
        if (Telemetry)
          telemetry::timer("pool.queue_wait")
              .add(telemetry::nowNs() - EnqueueNs);
        runChunks(B);
        // Notify under the lock: the caller may destroy the batch the
        // instant it observes Outstanding == 0, so nothing may touch B
        // after this mutex is released.
        std::lock_guard<std::mutex> BatchLock(B.Mutex);
        --B.Outstanding;
        B.Done.notify_one();
      });
  }
  QueueCv.notify_all();

  runChunks(B); // The caller is a full participant.

  {
    std::unique_lock<std::mutex> Lock(B.Mutex);
    B.Done.wait(Lock, [&B] { return B.Outstanding == 0; });
  }

  if (Telemetry) {
    uint64_t WallNs = telemetry::nowNs() - EnqueueNs;
    telemetry::counter("pool.regions").add(1);
    telemetry::counter("pool.tasks." + Stage).add(N);
    telemetry::timer("pool.region." + Stage).add(WallNs);
    telemetry::gauge("pool.threads").set(static_cast<double>(NumThreads));
    if (WallNs > 0)
      telemetry::gauge("pool.utilization")
          .set(static_cast<double>(
                   B.BusyNs.load(std::memory_order_relaxed)) /
               (static_cast<double>(WallNs) *
                static_cast<double>(Spawn + 1)));
    telemetry::maybeDumpMetrics();
  }

  if (B.Error)
    std::rethrow_exception(B.Error);
}

namespace {

std::mutex GlobalPoolMutex;
std::unique_ptr<ThreadPool> GlobalPool;

} // namespace

ThreadPool &msem::globalThreadPool() {
  std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
  if (!GlobalPool)
    GlobalPool = std::make_unique<ThreadPool>();
  return *GlobalPool;
}

void msem::setGlobalThreadCount(size_t Threads) {
  std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
  GlobalPool.reset(); // Join the old workers before replacing the pool.
  GlobalPool = std::make_unique<ThreadPool>(Threads);
}
