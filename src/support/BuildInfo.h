//===- support/BuildInfo.h - Build identity stamp ---------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identity of the binary that produced an artifact: git describe output,
/// CMake build type and compiler. Captured at configure time into a
/// generated BuildInfo.inc, so every model artifact, campaign checkpoint,
/// bench result and telemetry event log can record which build wrote it --
/// the first question when two runs disagree.
///
/// The values are best-effort: building from a tarball (no git) yields
/// "unknown" rather than a configure failure.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_BUILDINFO_H
#define MSEM_SUPPORT_BUILDINFO_H

#include <string>

namespace msem {

/// Build identity of this binary, captured at CMake configure time.
struct BuildInfo {
  std::string GitDescribe; ///< `git describe --always --dirty` ("unknown" without git).
  std::string BuildType;   ///< CMAKE_BUILD_TYPE (e.g. "RelWithDebInfo").
  std::string Compiler;    ///< Compiler id + version (e.g. "GNU 13.2.0").
};

/// The process-wide build identity. Values never change at runtime.
const BuildInfo &buildInfo();

/// One-line form for logs, --version output and artifact stamps:
/// "<git> <build-type> <compiler>".
std::string buildStamp();

} // namespace msem

#endif // MSEM_SUPPORT_BUILDINFO_H
