//===- support/Format.h - printf-style string formatting -------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small printf-style formatting helpers returning std::string. Used instead
/// of iostreams throughout the library.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_FORMAT_H
#define MSEM_SUPPORT_FORMAT_H

#include <string>
#include <vector>

namespace msem {

/// Formats like printf into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Splits \p Text on the single character \p Sep (no empty-trailing trim).
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// Strips leading/trailing whitespace.
std::string trimString(const std::string &Text);

} // namespace msem

#endif // MSEM_SUPPORT_FORMAT_H
