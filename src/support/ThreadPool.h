//===- support/ThreadPool.h - Deterministic parallel execution ---*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool driving the measurement and fitting stack: the
/// response surface fans compile+simulate jobs across workers, the D-optimal
/// exchange scores candidate rows in parallel, MARS/RBF parallelize their
/// candidate scans, and the GA evaluates populations concurrently.
///
/// The design constraint is *determinism*: parallelFor runs independent
/// iterations that write disjoint result slots; every reduction over those
/// results happens sequentially afterwards, in index order, so outputs are
/// bitwise identical to a single-threaded run regardless of MSEM_THREADS.
///
/// Sizing: the global pool reads MSEM_THREADS (via support/Env), defaulting
/// to std::thread::hardware_concurrency(). MSEM_THREADS=1 makes every
/// region run inline on the calling thread.
///
/// Nesting: a parallelFor issued from inside a worker runs inline (no new
/// tasks are enqueued), so nested parallel regions cannot deadlock and the
/// outermost region keeps the parallelism.
///
/// Exceptions: the first exception thrown by an iteration cancels the
/// remaining chunks and is rethrown on the calling thread once the region
/// drains. (The msem library itself is exception-free; this matters for
/// harness/test code running under the pool.)
///
/// Telemetry (all no-ops when disabled): counter "pool.regions", per-stage
/// counters "pool.tasks.<tag>", per-stage region timers "pool.region.<tag>",
/// queue-wait timer "pool.queue_wait", gauges "pool.threads" and
/// "pool.utilization" (busy-time fraction of the last parallel region).
///
/// Trace propagation: parallelFor captures the calling thread's trace
/// context (telemetry::currentContext) and re-establishes it around every
/// iteration body -- on workers and on the participating caller alike --
/// so spans created inside iterations parent to the enqueuing span, with
/// identical deterministic ids at any thread count. Iteration bodies that
/// open spans should use keyed spans (ScopedTimer(Name, I)) so sibling
/// identity is order-independent.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_THREADPOOL_H
#define MSEM_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace msem {
class ScopedStatusProvider;
}

namespace msem {

/// MSEM_THREADS when set to a positive value, otherwise
/// hardware_concurrency() (at least 1).
size_t defaultThreadCount();

class ThreadPool {
public:
  /// \p Threads counts the calling thread: a pool of N runs regions on
  /// N - 1 workers plus the caller. 0 means defaultThreadCount().
  explicit ThreadPool(size_t Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads a region may use (workers + the calling thread).
  size_t threadCount() const { return NumThreads; }

  /// Runs Body(I) for every I in [Begin, End), blocking until all
  /// iterations finish. The calling thread participates. \p Tag labels the
  /// stage in telemetry ("measure", "doe", ...). Iterations must write
  /// disjoint state; any cross-iteration reduction belongs after the call.
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Body,
                   const char *Tag = nullptr);

  /// Maps F over [0, N) into a vector (slot I gets F(I)). The result type
  /// must be default-constructible and movable.
  template <typename Fn>
  auto parallelMap(size_t N, Fn &&F, const char *Tag = nullptr)
      -> std::vector<std::decay_t<decltype(F(size_t(0)))>> {
    std::vector<std::decay_t<decltype(F(size_t(0)))>> Out(N);
    parallelFor(
        0, N, [&](size_t I) { Out[I] = F(I); }, Tag);
    return Out;
  }

  /// True on a pool worker thread (used to run nested regions inline).
  static bool inWorker();

  /// Tasks currently enqueued and not yet claimed by a worker (a point-in-
  /// time read; /statusz reporting).
  size_t queueDepth() const;

private:
  struct Batch;

  void workerLoop();
  static void runChunks(Batch &B);

  size_t NumThreads;
  std::vector<std::thread> Workers;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;

  /// /statusz "pool" section (thread count + live queue depth). Declared
  /// last so it deregisters before the members its callback reads are torn
  /// down.
  std::unique_ptr<ScopedStatusProvider> StatusSection;
};

/// The process-wide pool used by the measurement/fitting stack. Created on
/// first use, sized by defaultThreadCount().
ThreadPool &globalThreadPool();

/// Replaces the global pool with one of \p Threads threads (0 restores the
/// environment-derived default). For tests and the scaling bench; must not
/// race with concurrent users of the old pool.
void setGlobalThreadCount(size_t Threads);

} // namespace msem

#endif // MSEM_SUPPORT_THREADPOOL_H
