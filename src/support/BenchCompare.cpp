//===- support/BenchCompare.cpp - Benchmark regression comparison ---------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BenchCompare.h"

#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <dirent.h>
#include <limits>
#include <map>

using namespace msem;
using namespace msem::bench;

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

bool bench::parseBenchResult(const std::string &Text, const std::string &Path,
                             BenchResult &Out, std::string *Error) {
  std::string ParseError;
  Json Doc = Json::parse(Text, &ParseError);
  if (Doc.isNull()) {
    if (Error)
      *Error = Path + ": " + ParseError;
    return false;
  }
  if (Doc["schema"].asString() != "msem.bench.v1") {
    if (Error)
      *Error = Path + ": unsupported schema \"" + Doc["schema"].asString() +
               "\" (want msem.bench.v1)";
    return false;
  }
  Out = BenchResult();
  Out.Name = Doc["name"].asString();
  Out.Build = Doc["build"].asString();
  Out.Path = Path;
  Out.WallSeconds = Doc["wall_seconds"].asDouble();
  if (Out.Name.empty()) {
    if (Error)
      *Error = Path + ": missing bench name";
    return false;
  }
  // Flatten config{} into sorted key=value strings: std::map member order
  // already sorts keys, and string/number/hex values all render through
  // their literal JSON text for exact drift detection.
  for (const auto &[Key, Value] : Doc["config"].members()) {
    std::string Rendered = Value.kind() == Json::Kind::String
                               ? Value.asString()
                               : Value.dump();
    Out.Config.push_back(Key + "=" + Rendered);
  }
  for (const auto &[Key, Value] : Doc["metrics"].members())
    if (Value.kind() == Json::Kind::Number)
      Out.Metrics.push_back({Key, Value.asDouble()});
  return true;
}

std::vector<BenchResult> bench::loadBenchDir(const std::string &Dir,
                                             std::vector<std::string> *Errors) {
  std::vector<BenchResult> Results;
  DIR *D = opendir(Dir.c_str());
  if (!D) {
    if (Errors)
      Errors->push_back(Dir + ": cannot open directory: " +
                        std::strerror(errno));
    return Results;
  }
  std::vector<std::string> Names;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 11 && Name.rfind("BENCH_", 0) == 0 &&
        Name.size() >= 5 && Name.substr(Name.size() - 5) == ".json")
      Names.push_back(Name);
  }
  closedir(D);
  std::sort(Names.begin(), Names.end());
  for (const std::string &Name : Names) {
    const std::string Path = Dir + "/" + Name;
    std::string Text, Error;
    if (!readFileText(Path, Text, &Error)) {
      if (Errors)
        Errors->push_back(Error);
      continue;
    }
    BenchResult R;
    if (!parseBenchResult(Text, Path, R, &Error)) {
      if (Errors)
        Errors->push_back(Error);
      continue;
    }
    Results.push_back(std::move(R));
  }
  std::sort(Results.begin(), Results.end(),
            [](const BenchResult &A, const BenchResult &B) {
              return A.Name < B.Name;
            });
  return Results;
}

//===----------------------------------------------------------------------===//
// Metric classification
//===----------------------------------------------------------------------===//

static bool containsAny(const std::string &Key,
                        std::initializer_list<const char *> Needles) {
  for (const char *N : Needles)
    if (Key.find(N) != std::string::npos)
      return true;
  return false;
}

MetricDirection bench::classifyMetric(const std::string &Key) {
  std::string K = Key;
  std::transform(K.begin(), K.end(), K.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  // Rate-like first: "predictions_per_s" must not fall into the
  // lower-is-better bucket via some future substring collision.
  if (containsAny(K, {"throughput", "qps", "per_s", "per_sec", "speedup",
                      "efficiency", "hit_rate", "coverage"}))
    return MetricDirection::HigherIsBetter;
  if (containsAny(K, {"mape", "rmse", "error", "seconds", "latency",
                      "cycles", "_us", "_ms", "wall", "mae", "time"}))
    return MetricDirection::LowerIsBetter;
  return MetricDirection::Unknown;
}

bool bench::isTimingMetric(const std::string &Key) {
  std::string K = Key;
  std::transform(K.begin(), K.end(), K.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  // speedup/efficiency are ratios of wall times, so they inherit the
  // machine-load wobble of their numerator and denominator.
  return containsAny(K, {"seconds", "latency", "_us", "_ms", "wall", "time",
                         "throughput", "qps", "per_s", "per_sec", "cycles",
                         "speedup", "efficiency"});
}

bool bench::isTailMetric(const std::string &Key) {
  std::string K = Key;
  std::transform(K.begin(), K.end(), K.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  // Only timing-unit quantiles count: "p99" inside a model-quality key
  // (if one ever appears) should keep the tight threshold.
  return isTimingMetric(Key) && containsAny(K, {"p95", "p99", "max_us",
                                                "max_ms"});
}

//===----------------------------------------------------------------------===//
// Comparison
//===----------------------------------------------------------------------===//

size_t CompareReport::regressions() const {
  return static_cast<size_t>(
      std::count_if(Deltas.begin(), Deltas.end(), [](const MetricDelta &D) {
        return D.Kind == DeltaKind::Regressed;
      }));
}

size_t CompareReport::improvements() const {
  return static_cast<size_t>(
      std::count_if(Deltas.begin(), Deltas.end(), [](const MetricDelta &D) {
        return D.Kind == DeltaKind::Improved;
      }));
}

static MetricDelta judgeMetric(const std::string &Bench,
                               const std::string &Key, double Baseline,
                               double Current, const CompareOptions &Opts) {
  MetricDelta D;
  D.Bench = Bench;
  D.Key = Key;
  D.Baseline = Baseline;
  D.Current = Current;
  D.Direction = classifyMetric(Key);
  D.Threshold = isTailMetric(Key)     ? Opts.TailThreshold
                : isTimingMetric(Key) ? Opts.TimeThreshold
                                      : Opts.MetricThreshold;
  if (Baseline == Current)
    D.RelChange = 0.0;
  else if (Baseline == 0.0)
    D.RelChange = Current > 0 ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity();
  else
    D.RelChange = (Current - Baseline) / std::fabs(Baseline);
  if (D.Direction == MetricDirection::Unknown ||
      std::fabs(D.RelChange) <= D.Threshold) {
    D.Kind = DeltaKind::Unchanged;
    return D;
  }
  bool GotWorse = D.Direction == MetricDirection::LowerIsBetter
                      ? D.RelChange > 0
                      : D.RelChange < 0;
  D.Kind = GotWorse ? DeltaKind::Regressed : DeltaKind::Improved;
  return D;
}

CompareReport bench::compareBenches(const std::vector<BenchResult> &Baseline,
                                    const std::vector<BenchResult> &Current,
                                    const CompareOptions &Opts) {
  CompareReport R;
  std::map<std::string, const BenchResult *> BaseByName;
  for (const BenchResult &B : Baseline)
    BaseByName[B.Name] = &B;
  std::map<std::string, const BenchResult *> CurByName;
  for (const BenchResult &C : Current)
    CurByName[C.Name] = &C;

  for (const BenchResult &B : Baseline)
    if (!CurByName.count(B.Name))
      R.MissingResults.push_back(B.Name);

  for (const BenchResult &C : Current) {
    auto It = BaseByName.find(C.Name);
    if (It == BaseByName.end()) {
      R.MissingBaselines.push_back(C.Name);
      continue;
    }
    const BenchResult &B = *It->second;
    // Config drift is a hard mismatch: comparing a train=200 run against a
    // train=40 baseline says nothing about regressions.
    if (B.Config != C.Config) {
      R.Mismatches.push_back(C.Name + ": config mismatch: baseline {" +
                             joinStrings(B.Config, ", ") + "} vs current {" +
                             joinStrings(C.Config, ", ") + "}");
      continue;
    }
    std::map<std::string, double> BaseMetrics;
    for (const BenchResult::Metric &M : B.Metrics)
      BaseMetrics[M.Key] = M.Value;
    for (const BenchResult::Metric &M : C.Metrics) {
      auto MIt = BaseMetrics.find(M.Key);
      if (MIt == BaseMetrics.end())
        continue; // New metric: no baseline to judge against.
      R.Deltas.push_back(
          judgeMetric(C.Name, M.Key, MIt->second, M.Value, Opts));
    }
    if (Opts.CompareWallTime)
      R.Deltas.push_back(judgeMetric(C.Name, "wall_seconds", B.WallSeconds,
                                     C.WallSeconds, Opts));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

static const char *kindLabel(DeltaKind K) {
  switch (K) {
  case DeltaKind::Unchanged:
    return "ok";
  case DeltaKind::Improved:
    return "IMPROVED";
  case DeltaKind::Regressed:
    return "REGRESSED";
  }
  return "?";
}

static std::string relChangeText(double Rel) {
  if (std::isinf(Rel))
    return Rel > 0 ? "+inf%" : "-inf%";
  return formatString("%+.1f%%", Rel * 100.0);
}

std::string bench::renderCompareText(const CompareReport &R) {
  std::string Out;
  size_t BenchW = 5, KeyW = 6;
  for (const MetricDelta &D : R.Deltas) {
    BenchW = std::max(BenchW, D.Bench.size());
    KeyW = std::max(KeyW, D.Key.size());
  }
  Out += formatString("%-*s  %-*s  %12s  %12s  %8s  %s\n",
                      static_cast<int>(BenchW), "bench",
                      static_cast<int>(KeyW), "metric", "baseline", "current",
                      "delta", "verdict");
  for (const MetricDelta &D : R.Deltas)
    Out += formatString("%-*s  %-*s  %12.6g  %12.6g  %8s  %s\n",
                        static_cast<int>(BenchW), D.Bench.c_str(),
                        static_cast<int>(KeyW), D.Key.c_str(), D.Baseline,
                        D.Current, relChangeText(D.RelChange).c_str(),
                        kindLabel(D.Kind));
  for (const std::string &M : R.Mismatches)
    Out += "MISMATCH: " + M + "\n";
  for (const std::string &E : R.LoadErrors)
    Out += "ERROR: " + E + "\n";
  for (const std::string &N : R.MissingBaselines)
    Out += "warning: no baseline for bench \"" + N + "\" (run "
           "tools/msem_bench_baseline.sh to record one)\n";
  for (const std::string &N : R.MissingResults)
    Out += "warning: baseline \"" + N + "\" has no fresh result\n";
  Out += formatString("summary: %zu metrics, %zu regressed, %zu improved, "
                      "%zu mismatched, %zu errors\n",
                      R.Deltas.size(), R.regressions(), R.improvements(),
                      R.Mismatches.size(), R.LoadErrors.size());
  return Out;
}

std::string bench::renderCompareMarkdown(const CompareReport &R) {
  std::string Out;
  Out += "| Bench | Metric | Baseline | Current | Delta | Verdict |\n";
  Out += "|---|---|---:|---:|---:|---|\n";
  for (const MetricDelta &D : R.Deltas) {
    const char *Mark = D.Kind == DeltaKind::Regressed   ? " :red_circle:"
                       : D.Kind == DeltaKind::Improved ? " :green_circle:"
                                                       : "";
    Out += formatString("| %s | %s | %.6g | %.6g | %s | %s%s |\n",
                        D.Bench.c_str(), D.Key.c_str(), D.Baseline, D.Current,
                        relChangeText(D.RelChange).c_str(), kindLabel(D.Kind),
                        Mark);
  }
  for (const std::string &M : R.Mismatches)
    Out += "\n**MISMATCH:** " + M + "\n";
  for (const std::string &E : R.LoadErrors)
    Out += "\n**ERROR:** " + E + "\n";
  Out += formatString("\n**Summary:** %zu metrics, %zu regressed, "
                      "%zu improved, %zu mismatched, %zu errors\n",
                      R.Deltas.size(), R.regressions(), R.improvements(),
                      R.Mismatches.size(), R.LoadErrors.size());
  return Out;
}
