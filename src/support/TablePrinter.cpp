//===- support/TablePrinter.cpp - ASCII table formatting ------------------===//

#include "support/TablePrinter.h"

#include <algorithm>

using namespace msem;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line = "|";
    for (size_t C = 0; C < Headers.size(); ++C) {
      const std::string &Cell = C < Row.size() ? Row[C] : std::string();
      Line += " " + Cell + std::string(Widths[C] - Cell.size(), ' ') + " |";
    }
    Line += "\n";
    return Line;
  };

  std::string Sep = "+";
  for (size_t C = 0; C < Headers.size(); ++C)
    Sep += std::string(Widths[C] + 2, '-') + "+";
  Sep += "\n";

  std::string Result = Sep + RenderRow(Headers) + Sep;
  for (const auto &Row : Rows)
    Result += RenderRow(Row);
  Result += Sep;
  return Result;
}

void TablePrinter::print(std::FILE *Out) const {
  std::string Text = render();
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fflush(Out);
}
