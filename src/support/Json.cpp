//===- support/Json.cpp - Minimal JSON reader/writer ----------------------===//

#include "support/Json.h"

#include "support/Format.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

using namespace msem;

//===----------------------------------------------------------------------===//
// Construction and access
//===----------------------------------------------------------------------===//

Json Json::boolean(bool B) {
  Json J;
  J.K = Kind::Bool;
  J.B = B;
  return J;
}

Json Json::number(double N) {
  Json J;
  J.K = Kind::Number;
  J.Num = N;
  return J;
}

Json Json::string(std::string S) {
  Json J;
  J.K = Kind::String;
  J.Str = std::move(S);
  return J;
}

Json Json::array() {
  Json J;
  J.K = Kind::Array;
  return J;
}

Json Json::object() {
  Json J;
  J.K = Kind::Object;
  return J;
}

Json Json::hexU64(uint64_t V) {
  return string(formatString("0x%llx", static_cast<unsigned long long>(V)));
}

const std::string &Json::emptyString() {
  static const std::string Empty;
  return Empty;
}

bool Json::asBool(bool Fallback) const {
  return K == Kind::Bool ? B : Fallback;
}

double Json::asDouble(double Fallback) const {
  if (K == Kind::Number)
    return Num;
  // Non-finite doubles have no JSON number form; the writer encodes them
  // as these strings (see appendNumber) so e.g. a degenerate fit score
  // still round-trips through a checkpoint.
  if (K == Kind::String) {
    if (Str == "NaN")
      return std::numeric_limits<double>::quiet_NaN();
    if (Str == "Infinity")
      return std::numeric_limits<double>::infinity();
    if (Str == "-Infinity")
      return -std::numeric_limits<double>::infinity();
  }
  return Fallback;
}

int64_t Json::asInt(int64_t Fallback) const {
  return K == Kind::Number ? static_cast<int64_t>(Num) : Fallback;
}

const std::string &Json::asString(const std::string &Fallback) const {
  return K == Kind::String ? Str : Fallback;
}

uint64_t Json::asHexU64(uint64_t Fallback) const {
  if (K != Kind::String || Str.rfind("0x", 0) != 0)
    return Fallback;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Str.c_str() + 2, &End, 16);
  if (End == Str.c_str() + 2 || *End)
    return Fallback;
  return V;
}

const Json &Json::operator[](const std::string &Key) const {
  static const Json Null;
  if (K != Kind::Object)
    return Null;
  auto It = Obj.find(Key);
  return It == Obj.end() ? Null : It->second;
}

const Json &Json::at(size_t Index) const {
  static const Json Null;
  if (K != Kind::Array || Index >= Arr.size())
    return Null;
  return Arr[Index];
}

size_t Json::size() const {
  if (K == Kind::Array)
    return Arr.size();
  if (K == Kind::Object)
    return Obj.size();
  return 0;
}

bool Json::has(const std::string &Key) const {
  return K == Kind::Object && Obj.count(Key) != 0;
}

Json &Json::set(const std::string &Key, Json Value) {
  assert((K == Kind::Object || K == Kind::Null) && "set() on non-object");
  K = Kind::Object;
  Obj[Key] = std::move(Value);
  return *this;
}

Json &Json::push(Json Value) {
  assert((K == Kind::Array || K == Kind::Null) && "push() on non-array");
  K = Kind::Array;
  Arr.push_back(std::move(Value));
  return *this;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

void appendNumber(std::string &Out, double N) {
  // NaN and infinities have no JSON number form (and casting them to an
  // integer below would be UB); encode them as the strings asDouble()
  // decodes, so a degenerate value yields a loadable document rather
  // than 'nan' the parser rejects.
  if (!std::isfinite(N)) {
    Out += std::isnan(N) ? "\"NaN\"" : (N > 0 ? "\"Infinity\"" : "\"-Infinity\"");
    return;
  }
  // Integers (the common case: design-point levels, sizes) print without
  // an exponent or trailing zeros; everything else uses 17 significant
  // digits, which round-trips any IEEE-754 double exactly.
  if (N == static_cast<double>(static_cast<long long>(N)) &&
      N >= -9.0e15 && N <= 9.0e15) {
    Out += formatString("%lld", static_cast<long long>(N));
    return;
  }
  Out += formatString("%.17g", N);
}

void appendNewline(std::string &Out, int Indent, int Depth) {
  if (Indent <= 0)
    return;
  Out += '\n';
  Out.append(static_cast<size_t>(Indent * Depth), ' ');
}

} // namespace

void Json::dumpTo(std::string &Out, int Indent, int Depth) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += B ? "true" : "false";
    return;
  case Kind::Number:
    appendNumber(Out, Num);
    return;
  case Kind::String:
    appendEscaped(Out, Str);
    return;
  case Kind::Array: {
    if (Arr.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    for (size_t I = 0; I < Arr.size(); ++I) {
      if (I)
        Out += ',';
      appendNewline(Out, Indent, Depth + 1);
      Arr[I].dumpTo(Out, Indent, Depth + 1);
    }
    appendNewline(Out, Indent, Depth);
    Out += ']';
    return;
  }
  case Kind::Object: {
    if (Obj.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    bool First = true;
    for (const auto &[Key, Value] : Obj) {
      if (!First)
        Out += ',';
      First = false;
      appendNewline(Out, Indent, Depth + 1);
      appendEscaped(Out, Key);
      Out += Indent > 0 ? ": " : ":";
      Value.dumpTo(Out, Indent, Depth + 1);
    }
    appendNewline(Out, Indent, Depth);
    Out += '}';
    return;
  }
  }
}

std::string Json::dump() const {
  std::string Out;
  dumpTo(Out, 0, 0);
  return Out;
}

std::string Json::dumpPretty() const {
  std::string Out;
  dumpTo(Out, 2, 0);
  Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  Json run() {
    Json V;
    skipWs();
    if (!parseValue(V))
      return Json();
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after value");
      return Json();
    }
    return V;
  }

  bool failed() const { return Failed; }

private:
  void fail(const std::string &Message) {
    if (Failed)
      return;
    Failed = true;
    if (!Error)
      return;
    size_t Line = 1, Col = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
    *Error = formatString("%zu:%zu: ", Line, Col) + Message;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool expect(char C) {
    if (consume(C))
      return true;
    fail(formatString("expected '%c'", C));
    return false;
  }

  bool parseLiteral(const char *Lit) {
    size_t Len = std::strlen(Lit);
    if (Text.compare(Pos, Len, Lit) != 0) {
      fail(formatString("invalid literal (expected '%s')", Lit));
      return false;
    }
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!expect('"'))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return false;
        }
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else {
            fail("invalid \\u escape");
            return false;
          }
        }
        // Checkpoints only ever escape control characters; encode the
        // code point as UTF-8 for completeness.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        fail("invalid escape character");
        return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parseValue(Json &Out) {
    if (Failed)
      return false;
    if (++Depth > 200) {
      fail("nesting too deep");
      return false;
    }
    bool Ok = parseValueInner(Out);
    --Depth;
    return Ok;
  }

  bool parseValueInner(Json &Out) {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out = Json::object();
      skipWs();
      if (consume('}'))
        return true;
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (!expect(':'))
          return false;
        Json Value;
        if (!parseValue(Value))
          return false;
        Out.set(Key, std::move(Value));
        skipWs();
        if (consume(','))
          continue;
        return expect('}');
      }
    }
    if (C == '[') {
      ++Pos;
      Out = Json::array();
      skipWs();
      if (consume(']'))
        return true;
      while (true) {
        Json Value;
        if (!parseValue(Value))
          return false;
        Out.push(std::move(Value));
        skipWs();
        if (consume(','))
          continue;
        return expect(']');
      }
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json::string(std::move(S));
      return true;
    }
    if (C == 't') {
      Out = Json::boolean(true);
      return parseLiteral("true");
    }
    if (C == 'f') {
      Out = Json::boolean(false);
      return parseLiteral("false");
    }
    if (C == 'n') {
      Out = Json();
      return parseLiteral("null");
    }
    // Number.
    const char *Start = Text.c_str() + Pos;
    char *End = nullptr;
    double N = std::strtod(Start, &End);
    if (End == Start) {
      fail("invalid value");
      return false;
    }
    Pos += static_cast<size_t>(End - Start);
    Out = Json::number(N);
    return true;
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
  int Depth = 0;
  bool Failed = false;
};

} // namespace

Json Json::parse(const std::string &Text, std::string *Error) {
  if (Error)
    Error->clear();
  Parser P(Text, Error);
  Json V = P.run();
  if (P.failed())
    return Json();
  return V;
}

Json Json::numberArray(const std::vector<double> &Values) {
  Json A = Json::array();
  for (double V : Values)
    A.push(Json::number(V));
  return A;
}

std::vector<double> Json::toDoubleVector() const {
  std::vector<double> Out;
  Out.reserve(Arr.size());
  for (const Json &V : Arr)
    Out.push_back(V.asDouble());
  return Out;
}
