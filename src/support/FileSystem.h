//===- support/FileSystem.h - Atomic file IO helpers --------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small set of filesystem operations the durable-state layers share:
/// atomic publish (sibling temp file + fsync + rename, so readers and
/// crashes see either the old document or the new one, never a torn one),
/// whole-file reads, and recursive directory creation. Campaign
/// checkpoints, model artifacts and the registry manifest all go through
/// writeFileAtomic, so the durability discipline lives in exactly one
/// place. Error handling is exception-free to match the library: failures
/// return false with a strerror-style diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_FILESYSTEM_H
#define MSEM_SUPPORT_FILESYSTEM_H

#include <cstdint>
#include <string>

namespace msem {

/// Writes \p Contents to \p Path atomically: the bytes go to a sibling
/// ".tmp" file which is fsync'd and then renamed over \p Path, and the
/// containing directory is fsync'd afterwards (best effort) so the rename
/// itself survives power loss. Returns false with a diagnostic in
/// \p Error on any failure; the destination is never left torn.
bool writeFileAtomic(const std::string &Path, const std::string &Contents,
                     std::string *Error = nullptr);

/// Reads the whole of \p Path into \p Out. Returns false with a
/// diagnostic on a missing or unreadable file.
bool readFileText(const std::string &Path, std::string &Out,
                  std::string *Error = nullptr);

/// Creates \p Dir and any missing parents (mkdir -p). Returns false with
/// a diagnostic when a component cannot be created; an existing directory
/// is success.
bool createDirectories(const std::string &Dir, std::string *Error = nullptr);

/// True when \p Path names an existing file or directory.
bool pathExists(const std::string &Path);

/// A change signature for \p Path: a hash of (size, mtime with nanosecond
/// precision where the filesystem offers it), 0 when the file is absent.
/// Two distinct signatures mean the file changed; how the registry's
/// manifest watch detects cross-process publishes without reparsing.
uint64_t fileSignature(const std::string &Path);

/// The directory part of \p Path ("." when there is no separator).
std::string parentPath(const std::string &Path);

} // namespace msem

#endif // MSEM_SUPPORT_FILESYSTEM_H
