//===- support/Env.cpp - Environment variable knobs -----------------------===//

#include "support/Env.h"

#include <cstdlib>

using namespace msem;

int64_t msem::getEnvInt(const char *Name, int64_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  char *End = nullptr;
  long long Parsed = std::strtoll(Value, &End, 10);
  if (End == Value)
    return Default;
  return Parsed;
}

double msem::getEnvDouble(const char *Name, double Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  char *End = nullptr;
  double Parsed = std::strtod(Value, &End);
  if (End == Value)
    return Default;
  return Parsed;
}

std::string msem::getEnvString(const char *Name, const std::string &Default) {
  const char *Value = std::getenv(Name);
  if (!Value)
    return Default;
  return std::string(Value);
}
