//===- support/Env.cpp - Environment variable knobs -----------------------===//

#include "support/Env.h"

#include <algorithm>
#include <cstdlib>

using namespace msem;

int64_t msem::getEnvInt(const char *Name, int64_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  char *End = nullptr;
  long long Parsed = std::strtoll(Value, &End, 10);
  if (End == Value)
    return Default;
  return Parsed;
}

double msem::getEnvDouble(const char *Name, double Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  char *End = nullptr;
  double Parsed = std::strtod(Value, &End);
  if (End == Value)
    return Default;
  return Parsed;
}

std::string msem::getEnvString(const char *Name, const std::string &Default) {
  const char *Value = std::getenv(Name);
  if (!Value)
    return Default;
  return std::string(Value);
}

EnvConfig msem::parseEnv() {
  EnvConfig C;
  C.Threads = std::max<int64_t>(0, getEnvInt("MSEM_THREADS", C.Threads));
  C.VerifyPasses = getEnvInt("MSEM_VERIFY_PASSES", 0) != 0;
  C.Telemetry = getEnvString("MSEM_TELEMETRY", C.Telemetry);
  C.TraceFile = getEnvString("MSEM_TRACE_FILE", C.TraceFile);
  C.MetricsFile = getEnvString("MSEM_METRICS_FILE", C.MetricsFile);
  C.EventsFile = getEnvString("MSEM_EVENTS_FILE", C.EventsFile);
  C.MetricsFormat = getEnvString("MSEM_METRICS_FORMAT", C.MetricsFormat);
  C.TraceSample =
      std::clamp(getEnvDouble("MSEM_TRACE_SAMPLE", C.TraceSample), 0.0, 1.0);
  C.DriftThreshold =
      std::max(0.0, getEnvDouble("MSEM_DRIFT_THRESHOLD", C.DriftThreshold));
  C.ResultsDir = getEnvString("MSEM_RESULTS_DIR", C.ResultsDir);
  C.StatsPort =
      std::clamp<int64_t>(getEnvInt("MSEM_STATS_PORT", C.StatsPort), -1, 65535);
  C.StatsPortFile = getEnvString("MSEM_STATS_PORT_FILE", C.StatsPortFile);
  C.AccessLog = getEnvString("MSEM_ACCESS_LOG", C.AccessLog);
  C.ProfilePath = getEnvString("MSEM_PROFILE", C.ProfilePath);
  C.ProfileHz = std::clamp<int64_t>(
      getEnvInt("MSEM_PROFILE_HZ", C.ProfileHz), 1, 10000);
  C.TraceCacheMB = std::max<int64_t>(
      0, getEnvInt("MSEM_TRACE_CACHE_MB", C.TraceCacheMB));
  C.FaultRate =
      std::clamp(getEnvDouble("MSEM_FAULT_RATE", C.FaultRate), 0.0, 1.0);
  C.Workers = std::max<int64_t>(0, getEnvInt("MSEM_WORKERS", C.Workers));
  C.ShardDir = getEnvString("MSEM_SHARD_DIR", C.ShardDir);
  C.WorkerKillAfter =
      getEnvString("MSEM_WORKER_KILL_AFTER", C.WorkerKillAfter);
  C.TrainNSet = getEnvInt("MSEM_TRAIN_N", -1) >= 0;
  C.TrainN = std::max<int64_t>(1, getEnvInt("MSEM_TRAIN_N", C.TrainN));
  C.TestN = std::max<int64_t>(1, getEnvInt("MSEM_TEST_N", C.TestN));
  C.Input = getEnvString("MSEM_INPUT", C.Input);
  C.CacheDir = getEnvString("MSEM_CACHE", C.CacheDir);
  C.Seed = static_cast<uint64_t>(
      getEnvInt("MSEM_SEED", static_cast<int64_t>(C.Seed)));
  C.RegistryDir = getEnvString("MSEM_REGISTRY_DIR", C.RegistryDir);
  C.RegistryCacheCap = std::max<int64_t>(
      0, getEnvInt("MSEM_REGISTRY_CACHE", C.RegistryCacheCap));
  C.Fig5Reps = std::max<int64_t>(1, getEnvInt("MSEM_FIG5_REPS", C.Fig5Reps));
  C.Table4Top =
      std::max<int64_t>(1, getEnvInt("MSEM_TABLE4_TOP", C.Table4Top));
  return C;
}

const EnvConfig &msem::env() {
  static const EnvConfig Cached = parseEnv();
  return Cached;
}
