//===- support/BuildInfo.cpp - Build identity stamp -----------------------===//

#include "support/BuildInfo.h"

#include "BuildInfo.inc"

using namespace msem;

const BuildInfo &msem::buildInfo() {
  static const BuildInfo Info{MSEM_GIT_DESCRIBE, MSEM_BUILD_TYPE,
                              MSEM_COMPILER};
  return Info;
}

std::string msem::buildStamp() {
  const BuildInfo &I = buildInfo();
  return I.GitDescribe + " " + I.BuildType + " " + I.Compiler;
}
