//===- support/Statistics.h - Descriptive statistics ------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics used by model diagnostics and SMARTS sampling:
/// mean/variance (Welford online form), percentiles, and normal confidence
/// intervals.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_STATISTICS_H
#define MSEM_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace msem {

/// Welford online accumulator for mean and variance.
class OnlineStats {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  /// Sample variance (divides by N-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double standardError() const;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const OnlineStats &Other);

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
};

/// Arithmetic mean of \p V; 0 for empty input.
double mean(const std::vector<double> &V);

/// Sample standard deviation of \p V; 0 for fewer than two samples.
double stddev(const std::vector<double> &V);

/// Linear-interpolated percentile, \p P in [0, 100].
double percentile(std::vector<double> V, double P);

/// Two-sided z value for the given confidence level, e.g. 0.997 -> ~2.97.
/// Supports the levels used by SMARTS-style sampling (0.90/0.95/0.99/0.997);
/// other inputs fall back to a rational approximation of the normal quantile.
double zValueForConfidence(double Confidence);

/// Mean absolute percentage error of predictions vs. actuals (in percent).
double meanAbsolutePercentError(const std::vector<double> &Actual,
                                const std::vector<double> &Predicted);

/// Root mean squared error.
double rootMeanSquaredError(const std::vector<double> &Actual,
                            const std::vector<double> &Predicted);

/// Coefficient of determination R^2 (1 - SSE/SST); 0 when SST is 0.
double rSquared(const std::vector<double> &Actual,
                const std::vector<double> &Predicted);

} // namespace msem

#endif // MSEM_SUPPORT_STATISTICS_H
