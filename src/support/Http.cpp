//===- support/Http.cpp - Shared HTTP/1.1 wire layer ----------------------===//

#include "support/Http.h"

#include "support/Format.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>

using namespace msem;

//===----------------------------------------------------------------------===//
// Value types & wire helpers
//===----------------------------------------------------------------------===//

std::string HttpRequest::header(const std::string &Name) const {
  for (const auto &[K, V] : Headers)
    if (K == Name)
      return V;
  return "";
}

const char *msem::httpStatusText(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 204:
    return "No Content";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 408:
    return "Request Timeout";
  case 413:
    return "Payload Too Large";
  case 422:
    return "Unprocessable Entity";
  case 429:
    return "Too Many Requests";
  case 431:
    return "Request Header Fields Too Large";
  case 500:
    return "Internal Server Error";
  case 501:
    return "Not Implemented";
  case 503:
    return "Service Unavailable";
  default:
    return "Unknown";
  }
}

std::string msem::serializeHttpResponse(const HttpResponse &Resp,
                                        bool KeepAlive, bool HeadRequest) {
  std::string Out = formatString(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: %s\r\n\r\n",
      Resp.Status, httpStatusText(Resp.Status), Resp.ContentType.c_str(),
      Resp.Body.size(), KeepAlive ? "keep-alive" : "close");
  if (!HeadRequest)
    Out += Resp.Body;
  return Out;
}

bool msem::httpSendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    // MSG_NOSIGNAL: a client that hung up yields EPIPE, not SIGPIPE.
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // EPIPE, ECONNRESET, send-timeout...
    }
    if (N == 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// HttpParser
//===----------------------------------------------------------------------===//

HttpParser::Status HttpParser::fail(int Status, const std::string &Text) {
  St = Status::Error;
  ErrStatus = Status;
  ErrText = Text;
  return St;
}

bool HttpParser::takeLine(std::string &Out) {
  size_t Nl = Buf.find('\n', Pos);
  if (Nl == std::string::npos)
    return false;
  size_t End = Nl;
  if (End > Pos && Buf[End - 1] == '\r')
    --End;
  Out.assign(Buf, Pos, End - Pos);
  Pos = Nl + 1;
  return true;
}

HttpParser::Status HttpParser::feed(const char *Data, size_t N) {
  if (St != Status::NeedMore)
    return St; // Complete/Error latch until reset().
  Buf.append(Data, N);
  return parseBuffered();
}

HttpParser::Status HttpParser::parseBuffered() {
  while (true) {
    switch (Ph) {
    case Phase::RequestLine: {
      // Tolerate (and skip) the CRLF some clients send between pipelined
      // requests before giving up on an oversized line.
      std::string Line;
      if (!takeLine(Line)) {
        if (Buf.size() - Pos > Lim.MaxRequestLine)
          return fail(431, "request line too long");
        return St;
      }
      if (Line.empty())
        continue;
      if (Line.size() > Lim.MaxRequestLine)
        return fail(431, "request line too long");
      size_t Sp1 = Line.find(' ');
      size_t Sp2 = Line.find(' ', Sp1 == std::string::npos ? 0 : Sp1 + 1);
      if (Sp1 == std::string::npos || Sp2 == std::string::npos)
        return fail(400, "malformed request line");
      Req.Method = Line.substr(0, Sp1);
      std::string Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
      std::string Version = Line.substr(Sp2 + 1);
      if (Version.rfind("HTTP/1.", 0) != 0)
        return fail(400, "unsupported protocol version");
      // HTTP/1.0 defaults to close, HTTP/1.1 to keep-alive; a Connection
      // header below overrides either way.
      KeepAlive = Version != "HTTP/1.0";
      size_t Q = Target.find('?');
      Req.Path = Target.substr(0, Q);
      Req.Query = Q == std::string::npos ? "" : Target.substr(Q + 1);
      if (Req.Path.empty() || Req.Path[0] != '/')
        return fail(400, "malformed request target");
      Ph = Phase::Headers;
      continue;
    }
    case Phase::Headers: {
      std::string Line;
      if (!takeLine(Line)) {
        if (Buf.size() - Pos > Lim.MaxHeaderBytes)
          return fail(431, "headers too large");
        return St;
      }
      HeaderBytes += Line.size() + 2;
      if (HeaderBytes > Lim.MaxHeaderBytes)
        return fail(431, "headers too large");
      if (!Line.empty()) {
        size_t Colon = Line.find(':');
        if (Colon == std::string::npos)
          return fail(400, "malformed header line");
        std::string Name = Line.substr(0, Colon);
        std::transform(Name.begin(), Name.end(), Name.begin(),
                       [](unsigned char C) { return std::tolower(C); });
        std::string Value = trimString(Line.substr(Colon + 1));
        Req.Headers.emplace_back(std::move(Name), std::move(Value));
        continue;
      }
      // Blank line: headers done; decide the body framing.
      std::string Te = Req.header("transfer-encoding");
      if (!Te.empty())
        return fail(501, "transfer-encoding not supported");
      std::string Cl = Req.header("content-length");
      if (!Cl.empty()) {
        char *End = nullptr;
        unsigned long long V = std::strtoull(Cl.c_str(), &End, 10);
        if (End == Cl.c_str() || *End != '\0')
          return fail(400, "malformed content-length");
        if (V > Lim.MaxBodyBytes)
          return fail(413, "request body too large");
        ContentLength = static_cast<size_t>(V);
      }
      std::string Conn = Req.header("connection");
      std::transform(Conn.begin(), Conn.end(), Conn.begin(),
                     [](unsigned char C) { return std::tolower(C); });
      if (Conn == "close")
        KeepAlive = false;
      else if (Conn == "keep-alive")
        KeepAlive = true;
      Ph = Phase::Body;
      continue;
    }
    case Phase::Body: {
      if (Buf.size() - Pos < ContentLength)
        return St;
      Req.Body.assign(Buf, Pos, ContentLength);
      Pos += ContentLength;
      Ph = Phase::Done;
      St = Status::Complete;
      return St;
    }
    case Phase::Done:
      return St;
    }
  }
}

void HttpParser::reset() {
  // Keep pipelined leftovers: everything past the last consumed byte is
  // the start of the next request.
  std::string Rest = Buf.substr(Pos);
  Buf = std::move(Rest);
  Pos = 0;
  HeaderBytes = 0;
  ContentLength = 0;
  KeepAlive = true;
  ErrStatus = 400;
  ErrText.clear();
  Req = HttpRequest();
  Ph = Phase::RequestLine;
  St = Status::NeedMore;
  if (!Buf.empty())
    parseBuffered();
}

//===----------------------------------------------------------------------===//
// HttpRouter
//===----------------------------------------------------------------------===//

static std::string routeKey(std::string Method, const std::string &Path) {
  std::transform(Method.begin(), Method.end(), Method.begin(),
                 [](unsigned char C) { return std::toupper(C); });
  return Method + " " + Path;
}

uint64_t HttpRouter::add(const std::string &Method, const std::string &Path,
                         Handler Fn) {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Token = NextToken++;
  Routes[routeKey(Method, Path)] = {Token, std::move(Fn)};
  return Token;
}

void HttpRouter::remove(uint64_t Token) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto It = Routes.begin(); It != Routes.end(); ++It)
    if (It->second.Token == Token) {
      Routes.erase(It);
      return;
    }
}

HttpResponse HttpRouter::dispatch(const HttpRequest &Req) const {
  Handler Fn;
  bool PathKnown = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Routes.find(routeKey(Req.Method, Req.Path));
    // HEAD routes like GET; the transport suppresses the body bytes.
    if (It == Routes.end() && Req.Method == "HEAD")
      It = Routes.find(routeKey("GET", Req.Path));
    if (It != Routes.end()) {
      Fn = It->second.Fn;
    } else {
      const std::string Suffix = " " + Req.Path;
      for (const auto &[Key, R] : Routes)
        if (Key.size() >= Suffix.size() &&
            Key.compare(Key.size() - Suffix.size(), Suffix.size(), Suffix) ==
                0) {
          PathKnown = true;
          break;
        }
    }
  }
  if (Fn)
    return Fn(Req);
  HttpResponse Resp;
  if (PathKnown) {
    Resp.Status = 405;
    Resp.Body = "method not allowed\n";
  } else {
    Resp.Status = 404;
    Resp.Body = "not found: " + Req.Path + "\n";
  }
  return Resp;
}

std::vector<std::string> HttpRouter::paths() const {
  std::vector<std::string> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Key, R] : Routes) {
      size_t Sp = Key.find(' ');
      Out.push_back(Key.substr(Sp + 1));
    }
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}
