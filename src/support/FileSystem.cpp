//===- support/FileSystem.cpp - Atomic file IO helpers ---------------------===//

#include "support/FileSystem.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace msem;

namespace {

bool failWith(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

std::string msem::parentPath(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

bool msem::pathExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

uint64_t msem::fileSignature(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return 0;
  // FNV-1a over the fields that change on every atomic rewrite. The inode
  // matters: writeFileAtomic renames a fresh temp file into place, so even
  // an identical-timestamp rewrite lands on a new inode.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(static_cast<uint64_t>(St.st_size));
  Mix(static_cast<uint64_t>(St.st_mtim.tv_sec));
  Mix(static_cast<uint64_t>(St.st_mtim.tv_nsec));
  Mix(static_cast<uint64_t>(St.st_ino));
  // 0 is the "absent" sentinel; dodge a (vanishingly unlikely) collision.
  return H == 0 ? 1 : H;
}

bool msem::createDirectories(const std::string &Dir, std::string *Error) {
  if (Dir.empty() || Dir == "." || Dir == "/")
    return true;
  std::string Partial;
  size_t Pos = 0;
  while (Pos <= Dir.size()) {
    size_t Slash = Dir.find('/', Pos);
    if (Slash == std::string::npos)
      Slash = Dir.size();
    Partial = Dir.substr(0, Slash);
    Pos = Slash + 1;
    if (Partial.empty())
      continue; // Leading '/'.
    if (::mkdir(Partial.c_str(), 0777) != 0 && errno != EEXIST)
      return failWith(Error, "cannot create directory '" + Partial +
                                 "': " + std::strerror(errno));
  }
  return true;
}

bool msem::writeFileAtomic(const std::string &Path,
                           const std::string &Contents, std::string *Error) {
  // Atomic publish: write a sibling temp file, then rename over the
  // destination. A kill at any instant leaves either the previous file or
  // the new one. The data is fsync'd before the rename because fflush only
  // reaches the kernel: on power loss (unlike SIGKILL) the rename could
  // otherwise become durable while the bytes are not, publishing a
  // truncated file.
  std::string TmpFile = Path + ".tmp";
  std::FILE *F = std::fopen(TmpFile.c_str(), "wb");
  if (!F)
    return failWith(Error, "cannot write '" + TmpFile +
                               "': " + std::strerror(errno));
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  bool Flushed = std::fflush(F) == 0;
  bool Synced = Flushed && ::fsync(fileno(F)) == 0;
  std::fclose(F);
  if (Written != Contents.size() || !Synced) {
    std::remove(TmpFile.c_str());
    return failWith(Error, "short write to '" + TmpFile + "'");
  }
  if (std::rename(TmpFile.c_str(), Path.c_str()) != 0) {
    std::remove(TmpFile.c_str());
    return failWith(Error, "cannot rename '" + TmpFile + "' to '" + Path +
                               "': " + std::strerror(errno));
  }
  // Best effort: make the rename itself durable too.
  int DirFd = ::open(parentPath(Path).c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return true;
}

bool msem::readFileText(const std::string &Path, std::string &Out,
                        std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return failWith(Error, "cannot open '" + Path +
                               "': " + std::strerror(errno));
  Out.clear();
  char Buffer[1 << 16];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.append(Buffer, N);
  std::fclose(F);
  return true;
}
