//===- support/BenchCompare.h - Benchmark regression comparison --*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison engine behind the `msem_bench_diff` regression sentinel:
/// load "msem.bench.v1" result files (bench/BenchCommon.h BenchReport
/// output), pair fresh results against committed baselines by bench name,
/// and classify every shared metric as improved / unchanged / regressed
/// under noise-tolerant thresholds.
///
/// Direction is inferred from the metric key, matching the vocabulary the
/// harnesses actually emit: error-like and time-like keys (mape, rmse,
/// error, seconds, latency, cycles, _us, wall) regress when they go up;
/// rate-like keys (throughput, qps, per_s, speedup) regress when they go
/// down. Unrecognized keys are compared both ways but only reported, never
/// failed -- the sentinel refuses to guess which way is good.
///
/// Two threshold classes keep the gate honest about noise: model-quality
/// metrics are near-deterministic at fixed seed (default 10% tolerance
/// catches real movement), while timing/throughput metrics wobble with
/// machine load (default 50%, catching order-of-magnitude cliffs without
/// flaking CI). Config drift (train_n/test_n/input/seed differ from the
/// baseline) is a hard mismatch: the numbers are not comparable, and
/// silently passing them would hollow out the gate.
///
/// Pure library (no process exit, no printing) so the synthetic-regression
/// contract is unit-testable; tools/msem_bench_diff.cpp owns argv and exit
/// codes.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_BENCHCOMPARE_H
#define MSEM_SUPPORT_BENCHCOMPARE_H

#include <string>
#include <vector>

namespace msem {
namespace bench {

/// One parsed results/BENCH_<name>.json document.
struct BenchResult {
  std::string Name;           ///< "micro_simulator", "predict_throughput"...
  std::string Build;          ///< buildStamp() of the producing binary.
  std::string Path;           ///< Source file (diagnostics).
  double WallSeconds = 0.0;
  /// config{} flattened to deterministic "key=value" strings for drift
  /// detection (seed kept in hex exactly as written).
  std::vector<std::string> Config;
  struct Metric {
    std::string Key;
    double Value;
  };
  std::vector<Metric> Metrics; ///< Numeric metrics only, file order.
};

/// Parses one BENCH json document. Returns false with a diagnostic on
/// malformed input or a schema other than "msem.bench.v1".
bool parseBenchResult(const std::string &Text, const std::string &Path,
                      BenchResult &Out, std::string *Error = nullptr);

/// Loads every BENCH_*.json under \p Dir (non-recursive), sorted by bench
/// name. Unparseable files are reported in \p Errors and skipped; a
/// missing/unreadable directory yields an empty vector plus a diagnostic.
std::vector<BenchResult> loadBenchDir(const std::string &Dir,
                                      std::vector<std::string> *Errors);

/// Which way a metric is allowed to drift before it counts as a
/// regression.
enum class MetricDirection {
  LowerIsBetter,  ///< mape, rmse, error, seconds, latency, cycles...
  HigherIsBetter, ///< throughput, qps, per_s, speedup...
  Unknown,        ///< Reported informationally, never gates.
};

/// Classifies \p Key by substring vocabulary (see file comment).
MetricDirection classifyMetric(const std::string &Key);

/// True for metrics measured in time/rate units, which get the looser
/// noise threshold.
bool isTimingMetric(const std::string &Key);

/// True for tail-latency quantiles (p95/p99/max of a timing metric).
/// A single-run tail quantile is dominated by scheduler jitter on a
/// shared machine and routinely moves 2x run-to-run, so it gets its own
/// even looser threshold.
bool isTailMetric(const std::string &Key);

/// Verdict for one metric shared by baseline and fresh result.
enum class DeltaKind {
  Unchanged,  ///< Within threshold (or direction Unknown).
  Improved,   ///< Beyond threshold in the good direction.
  Regressed,  ///< Beyond threshold in the bad direction.
};

struct MetricDelta {
  std::string Bench;
  std::string Key;
  double Baseline = 0.0;
  double Current = 0.0;
  /// Signed relative change (Current-Baseline)/|Baseline|; +/-inf when the
  /// baseline is 0 and the value moved.
  double RelChange = 0.0;
  double Threshold = 0.0; ///< The tolerance this metric was judged under.
  MetricDirection Direction = MetricDirection::Unknown;
  DeltaKind Kind = DeltaKind::Unchanged;
};

struct CompareOptions {
  /// Relative tolerance for model-quality metrics (default 10%).
  double MetricThreshold = 0.10;
  /// Relative tolerance for timing/throughput metrics (default 50%).
  double TimeThreshold = 0.50;
  /// Relative tolerance for tail-latency quantiles (default 150%): still
  /// catches an order-of-magnitude tail blowup without tripping on
  /// single-run jitter.
  double TailThreshold = 1.50;
  /// Also judge wall_seconds (off by default -- whole-harness wall time
  /// includes one-time cache warmup and flakes hardest).
  bool CompareWallTime = false;
};

/// Outcome of comparing one results directory against one baseline
/// directory.
struct CompareReport {
  std::vector<MetricDelta> Deltas;      ///< Every shared metric, bench order.
  /// Hard failures: config drift between paired files, e.g.
  /// "micro_simulator: config mismatch: seed=0x... vs seed=0x...".
  std::vector<std::string> Mismatches;
  std::vector<std::string> MissingBaselines; ///< Fresh bench, no baseline.
  std::vector<std::string> MissingResults;   ///< Baseline bench, no result.
  std::vector<std::string> LoadErrors;       ///< Unparseable files.

  size_t regressions() const;
  size_t improvements() const;
  /// True when the gate should fail: any regression, config mismatch or
  /// load error. Missing benches on either side warn but do not fail --
  /// the sentinel gates the benches you ran, not the ones you didn't.
  bool hasFailures() const { return regressions() + Mismatches.size() +
                                    LoadErrors.size() > 0; }
};

/// Pairs \p Current against \p Baseline by bench name and judges every
/// shared numeric metric under \p Opts.
CompareReport compareBenches(const std::vector<BenchResult> &Baseline,
                             const std::vector<BenchResult> &Current,
                             const CompareOptions &Opts);

/// Human-readable summary (aligned text table plus warnings), the tool's
/// stdout.
std::string renderCompareText(const CompareReport &R);

/// GitHub-flavoured markdown delta table for PR comments / CI summaries.
std::string renderCompareMarkdown(const CompareReport &R);

} // namespace bench
} // namespace msem

#endif // MSEM_SUPPORT_BENCHCOMPARE_H
