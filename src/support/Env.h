//===- support/Env.h - Environment variable knobs ---------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every environment variable the project reads, parsed once into one typed
/// configuration struct. No other translation unit calls getenv: the
/// telemetry sinks, the thread pool, the pass verifier, the fault-injection
/// hook and the bench harness scales all pull from env(), so the full knob
/// inventory is greppable in one place (and documented in README.md).
///
/// The paper's full campaign (400 train + 100 test simulations per program)
/// takes hours; the bench harnesses default to a reduced scale and honour
/// the MSEM_TRAIN_N / MSEM_TEST_N / MSEM_INPUT overrides below.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_ENV_H
#define MSEM_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace msem {

/// Typed snapshot of every MSEM_* environment variable.
struct EnvConfig {
  // --- Execution -----------------------------------------------------------
  /// MSEM_THREADS: threads per parallel region (0 = hardware_concurrency,
  /// 1 = fully sequential).
  int64_t Threads = 0;
  /// MSEM_VERIFY_PASSES: run the IR verifier after every optimization pass.
  bool VerifyPasses = false;

  // --- Observability -------------------------------------------------------
  /// MSEM_TELEMETRY: comma-separated sink list (summary, jsonl, trace, all).
  std::string Telemetry;
  /// MSEM_TRACE_FILE: Chrome trace-event JSON output path.
  std::string TraceFile;
  /// MSEM_METRICS_FILE: metrics snapshot output path.
  std::string MetricsFile;
  /// MSEM_EVENTS_FILE: structured JSONL event-log output path.
  std::string EventsFile;
  /// MSEM_METRICS_FORMAT: metrics snapshot format ("jsonl" or
  /// "openmetrics").
  std::string MetricsFormat = "jsonl";
  /// MSEM_TRACE_SAMPLE: fraction of traces kept in the span buffers, in
  /// [0, 1]. Sampling is decided per trace id (a deterministic hash), so a
  /// trace is either fully present or fully absent.
  double TraceSample = 1.0;
  /// MSEM_DRIFT_THRESHOLD: serving drift multiplier -- a model is flagged
  /// when its rolling MAPE exceeds this multiple of the held-out MAPE
  /// recorded in its artifact.
  double DriftThreshold = 2.0;
  /// MSEM_RESULTS_DIR: directory where bench harnesses write their
  /// machine-readable BENCH_<name>.json results.
  std::string ResultsDir = "results";
  /// MSEM_STATS_PORT: loopback port for the live introspection plane
  /// (/metrics, /healthz, /statusz, /tracez). 0 picks an ephemeral port;
  /// unset (-1) means no server -- no socket, no thread.
  int64_t StatsPort = -1;
  /// MSEM_STATS_PORT_FILE: when the stats server starts, the bound port is
  /// written here (atomic write). How scripts discover an ephemeral port.
  std::string StatsPortFile;
  /// MSEM_ACCESS_LOG: structured JSONL access-log path for the serving
  /// layer ("" = off). One "msem.access.v1" object per request, written by
  /// the SLO tracker (serving/SloTracker.h).
  std::string AccessLog;
  /// MSEM_PROFILE: collapsed-flamegraph-stack output path for the sampling
  /// profiler ("" = profiler off). Written at profiler stop / process exit.
  std::string ProfilePath;
  /// MSEM_PROFILE_HZ: sampling-profiler frequency against process CPU time
  /// (ITIMER_PROF), in samples per CPU-second.
  int64_t ProfileHz = 500;

  /// MSEM_TRACE_CACHE_MB: byte budget (in MB) of the retired-trace replay
  /// cache (uarch/TraceCache.h). 0 disables trace capture & replay
  /// entirely, reproducing the uncached simulation pipeline bit-for-bit.
  int64_t TraceCacheMB = 256;

  // --- Fault injection (test hook) -----------------------------------------
  /// MSEM_FAULT_RATE: probability in [0, 1] that any single measurement
  /// attempt fails with an injected fault (0 = off). Deterministic per
  /// (design point, attempt), so campaigns remain reproducible under
  /// injection. See FaultPolicy in core/ResponseSurface.h.
  double FaultRate = 0.0;

  // --- Distributed campaigns (campaign/Coordinator.h) ----------------------
  /// MSEM_WORKERS: worker processes a campaign fans measurement out to
  /// (0 = single-process, the default).
  int64_t Workers = 0;
  /// MSEM_SHARD_DIR: shard directory coordinator and workers exchange
  /// plan/shard files through ("" = derive <checkpoint>.shards next to the
  /// campaign checkpoint).
  std::string ShardDir;
  /// MSEM_WORKER_KILL_AFTER ("w:n", test hook): worker w SIGKILLs itself
  /// after freshly measuring n points, once per shard directory --
  /// deterministic process-death injection for the fault-policy tests and
  /// the lint distributed smoke.
  std::string WorkerKillAfter;

  // --- Campaign / bench scale ----------------------------------------------
  /// MSEM_TRAIN_N: training design size (paper: 400).
  int64_t TrainN = 200;
  /// Whether MSEM_TRAIN_N was explicitly set (harnesses that substitute
  /// their own default scale check this rather than re-reading getenv).
  bool TrainNSet = false;
  /// MSEM_TEST_N: test design size (paper: 100).
  int64_t TestN = 50;
  /// MSEM_INPUT: workload input set ("test", "train" or "ref").
  std::string Input = "train";
  /// MSEM_CACHE: response cache directory shared by the harnesses.
  std::string CacheDir = "msem_cache";
  /// MSEM_SEED: campaign master seed.
  uint64_t Seed = 20070311;
  /// MSEM_REGISTRY_DIR: model-artifact registry root ("" = campaigns do
  /// not publish; serving tools require an explicit directory).
  std::string RegistryDir;
  /// MSEM_REGISTRY_CACHE: deserialized artifacts the registry keeps in
  /// its in-memory LRU cache (0 = uncached, every fetch reads disk).
  int64_t RegistryCacheCap = 32;
  /// MSEM_FIG5_REPS: repetitions per design size in the Figure 5 harness.
  int64_t Fig5Reps = 2;
  /// MSEM_TABLE4_TOP: number of MARS terms shown by the Table 4 harness.
  int64_t Table4Top = 12;
};

/// The process-wide configuration, parsed from the environment once on
/// first use. Prefer this accessor everywhere outside tests.
const EnvConfig &env();

/// Parses a fresh EnvConfig from the current environment (no caching).
/// For tests that setenv() mid-process; production code uses env().
EnvConfig parseEnv();

// --- Raw accessors (implementation detail of parseEnv, kept public for
// --- tests and one-off harness knobs) --------------------------------------

/// Returns the integer value of environment variable \p Name, or \p Default
/// if unset or unparsable.
int64_t getEnvInt(const char *Name, int64_t Default);

/// Returns the floating-point value of environment variable \p Name, or
/// \p Default if unset or unparsable.
double getEnvDouble(const char *Name, double Default);

/// Returns the string value of environment variable \p Name, or \p Default.
std::string getEnvString(const char *Name, const std::string &Default);

} // namespace msem

#endif // MSEM_SUPPORT_ENV_H
