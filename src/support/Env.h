//===- support/Env.h - Environment variable knobs ---------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment-scale knobs read from the environment. The paper's full
/// campaign (400 train + 100 test simulations per program) takes hours; the
/// bench harnesses default to a reduced scale and honour these overrides.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_ENV_H
#define MSEM_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace msem {

/// Returns the integer value of environment variable \p Name, or \p Default
/// if unset or unparsable.
int64_t getEnvInt(const char *Name, int64_t Default);

/// Returns the floating-point value of environment variable \p Name, or
/// \p Default if unset or unparsable.
double getEnvDouble(const char *Name, double Default);

/// Returns the string value of environment variable \p Name, or \p Default.
std::string getEnvString(const char *Name, const std::string &Default);

} // namespace msem

#endif // MSEM_SUPPORT_ENV_H
