//===- support/Error.cpp - Fatal error reporting --------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace msem;

void msem::fatalError(const std::string &Message) {
  std::fprintf(stderr, "fatal error: %s\n", Message.c_str());
  std::fflush(stderr);
  std::abort();
}

void msem::reportWarning(const std::string &Message) {
  std::fprintf(stderr, "warning: %s\n", Message.c_str());
}

void msem::unreachableInternal(const char *Message, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line,
               Message);
  std::fflush(stderr);
  std::abort();
}
