//===- support/StatsServer.h - Live introspection HTTP plane ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free HTTP/1.1 stats server giving long-running binaries
/// (campaigns, msem_predict, benches) a live introspection plane. Strictly
/// opt-in: the global server starts only when MSEM_STATS_PORT is set
/// (support/Env), binds the loopback interface only, and serves one
/// connection at a time from a single background thread. With the knob
/// unset no socket and no thread exist, so instrumented binaries behave
/// bitwise identically to uninstrumented ones.
///
/// The server itself is transport-only; routing lives in the process-wide
/// HttpRouter (support/Http.h) exposed as StatsServer::router(), which any
/// layer may populate without linking anything beyond msem_support:
///
///   - router().add / ScopedRoute / registerRoute(): full ownership of one
///     (method, path). The telemetry layer registers GET /metrics, /tracez
///     and /profilez this way (telemetry/Introspection.h) -- support cannot
///     depend on telemetry, so the arrow points this way -- and msem_serve
///     registers its POST /v1/predict API into the same table, so the
///     introspection plane and the serving plane share one route registry.
///   - registerHandler(path, fn): the legacy GET-only registration,
///     kept as a thin wrapper over the router.
///   - ScopedStatusProvider / ScopedHealthProvider: named sections
///     composed into the built-in /statusz (human-readable text) and
///     /healthz (JSON liveness + progress) endpoints. The campaign engine,
///     the thread pool and the serving monitor register these; RAII
///     deregistration keeps dangling callbacks impossible.
///
/// Built-in routes: "/" (index of registered paths), "/healthz"
/// ({"status":"ok",...} liveness plus provider fragments), "/statusz"
/// (build identity, uptime, provider sections).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_STATSSERVER_H
#define MSEM_SUPPORT_STATSSERVER_H

#include "support/Http.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace msem {

/// Historical names for the shared HTTP value types; handlers written
/// against the original stats plane compile unchanged.
using StatsRequest = HttpRequest;
using StatsResponse = HttpResponse;

/// The introspection HTTP server. One instance per process is the
/// expected shape (global()); tests may run private instances -- every
/// instance serves the same process-wide route/provider registries.
class StatsServer {
public:
  using Handler = std::function<StatsResponse(const StatsRequest &)>;

  StatsServer() = default;
  ~StatsServer();

  StatsServer(const StatsServer &) = delete;
  StatsServer &operator=(const StatsServer &) = delete;

  /// Binds 127.0.0.1:\p Port (0 = kernel-assigned ephemeral port), starts
  /// the accept thread and, when MSEM_STATS_PORT_FILE is set, publishes
  /// the bound port there. Returns false with a diagnostic in \p Error on
  /// bind failure or when already running.
  bool start(int Port, std::string *Error = nullptr);

  /// Shuts the listening socket and joins the accept thread. Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// The bound port (0 when not running).
  int port() const { return BoundPort.load(std::memory_order_acquire); }

  /// The process-wide server instance (not auto-started).
  static StatsServer &global();

  /// Starts global() on MSEM_STATS_PORT when the knob is set and the
  /// server is not yet running. With the knob unset this is a pure read
  /// of the env snapshot: no socket, no thread. Returns whether the
  /// global server is running afterwards. Every long-running entry point
  /// (Campaign::run, msem_predict, the bench harnesses) calls this.
  static bool maybeStartFromEnv();

  /// The process-wide route table every transport dispatches through
  /// (this server and serving/HttpServer alike). Built-in endpoints are
  /// installed on first access.
  static HttpRouter &router();

  /// RAII route registration in the process-wide router.
  static ScopedRoute registerRoute(const std::string &Method,
                                   const std::string &Path,
                                   HttpRouter::Handler Fn);

  /// Legacy GET-only registration: registers (or replaces) the handler
  /// owning GET \p Path in router(). Process-wide and permanent (no RAII;
  /// prefer registerRoute for scoped owners).
  static void registerHandler(const std::string &Path, Handler Fn);

  /// Dispatches \p Req against the process-wide router exactly as a live
  /// request would be (tests use this to probe routing without a socket).
  static StatsResponse dispatch(const StatsRequest &Req);

private:
  void acceptLoop();
  void serveConnection(int Fd);

  std::atomic<bool> Running{false};
  std::atomic<int> BoundPort{0};
  int ListenFd = -1;
  std::thread AcceptThread;
};

/// RAII registration of one named /statusz section. The callback renders
/// the section body (plain text, trailing newline optional); it runs on
/// the server thread and must be internally synchronized.
class ScopedStatusProvider {
public:
  ScopedStatusProvider(std::string Name, std::function<std::string()> Fn);
  ~ScopedStatusProvider();

  ScopedStatusProvider(const ScopedStatusProvider &) = delete;
  ScopedStatusProvider &operator=(const ScopedStatusProvider &) = delete;

private:
  std::string Name;
  uint64_t Token;
};

/// RAII registration of one named /healthz fragment. The callback returns
/// a JSON value (object, number, string...) emitted as
/// {"status":"ok","<name>":<fragment>,...}; same threading contract as
/// ScopedStatusProvider.
class ScopedHealthProvider {
public:
  ScopedHealthProvider(std::string Name, std::function<std::string()> Fn);
  ~ScopedHealthProvider();

  ScopedHealthProvider(const ScopedHealthProvider &) = delete;
  ScopedHealthProvider &operator=(const ScopedHealthProvider &) = delete;

private:
  std::string Name;
  uint64_t Token;
};

} // namespace msem

#endif // MSEM_SUPPORT_STATSSERVER_H
