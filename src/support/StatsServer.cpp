//===- support/StatsServer.cpp - Live introspection HTTP plane ------------===//

#include "support/StatsServer.h"

#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/FileSystem.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace msem;

namespace {

//===----------------------------------------------------------------------===//
// Process-wide registries
//===----------------------------------------------------------------------===//

struct Provider {
  uint64_t Token;
  std::function<std::string()> Fn;
};

struct Registries {
  std::mutex Mutex;
  std::map<std::string, Provider> Status;
  std::map<std::string, Provider> Health;
  uint64_t NextToken = 1;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
};

Registries &registries() {
  static Registries *R = new Registries; // Leaked: outlives static dtors.
  return *R;
}

std::string escapeJsonString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += formatString("\\%c", C);
    else if (static_cast<unsigned char>(C) < 0x20)
      Out += formatString("\\u%04x", C);
    else
      Out += C;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Built-in endpoints
//===----------------------------------------------------------------------===//

StatsResponse renderIndex(const StatsRequest &) {
  StatsResponse Resp;
  Resp.Body = "msem introspection plane\n\n"
              "  /healthz   liveness + campaign progress (JSON)\n"
              "  /statusz   build identity, uptime, component sections\n";
  for (const std::string &Path : StatsServer::router().paths())
    if (Path != "/" && Path != "/index" && Path != "/healthz" &&
        Path != "/statusz")
      Resp.Body += "  " + Path + "\n";
  return Resp;
}

StatsResponse renderHealthz(const StatsRequest &) {
  // Compose fragments outside the registry lock: provider callbacks may
  // take their own locks and must not nest under ours.
  std::vector<std::pair<std::string, std::function<std::string()>>> Fns;
  {
    std::lock_guard<std::mutex> Lock(registries().Mutex);
    for (const auto &[Name, P] : registries().Health)
      Fns.emplace_back(Name, P.Fn);
  }
  StatsResponse Resp;
  Resp.ContentType = "application/json; charset=utf-8";
  Resp.Body = "{\"status\":\"ok\"";
  for (const auto &[Name, Fn] : Fns)
    Resp.Body += ",\"" + escapeJsonString(Name) + "\":" + Fn();
  Resp.Body += "}\n";
  return Resp;
}

StatsResponse renderStatusz(const StatsRequest &) {
  std::vector<std::pair<std::string, std::function<std::string()>>> Fns;
  std::chrono::steady_clock::time_point Epoch;
  {
    std::lock_guard<std::mutex> Lock(registries().Mutex);
    for (const auto &[Name, P] : registries().Status)
      Fns.emplace_back(Name, P.Fn);
    Epoch = registries().Epoch;
  }
  double Uptime = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Epoch)
                      .count();
  StatsResponse Resp;
  Resp.Body = formatString("msem statusz\nbuild: %s\npid: %d\n"
                           "uptime_seconds: %.1f\n",
                           buildStamp().c_str(), static_cast<int>(getpid()),
                           Uptime);
  for (const auto &[Name, Fn] : Fns) {
    Resp.Body += "\n== " + Name + " ==\n";
    std::string Section = Fn();
    Resp.Body += Section;
    if (!Section.empty() && Section.back() != '\n')
      Resp.Body += '\n';
  }
  return Resp;
}

} // namespace

//===----------------------------------------------------------------------===//
// StatsServer
//===----------------------------------------------------------------------===//

StatsServer::~StatsServer() { stop(); }

StatsServer &StatsServer::global() {
  static StatsServer *S = new StatsServer; // Leaked: atexit handlers may
  return *S;                               // still serve /metrics.
}

HttpRouter &StatsServer::router() {
  // Leaked: route handlers registered by static-lifetime owners may
  // dispatch during atexit teardown. Built-ins are installed once here.
  static HttpRouter *R = [] {
    auto *Router = new HttpRouter;
    Router->add("GET", "/", renderIndex);
    Router->add("GET", "/index", renderIndex);
    Router->add("GET", "/healthz", renderHealthz);
    Router->add("GET", "/statusz", renderStatusz);
    return Router;
  }();
  return *R;
}

ScopedRoute StatsServer::registerRoute(const std::string &Method,
                                       const std::string &Path,
                                       HttpRouter::Handler Fn) {
  return ScopedRoute(router(), Method, Path, std::move(Fn));
}

bool StatsServer::maybeStartFromEnv() {
  StatsServer &S = global();
  if (S.running())
    return true;
  int64_t Port = env().StatsPort;
  if (Port < 0)
    return false;
  std::string Error;
  if (!S.start(static_cast<int>(Port), &Error)) {
    std::fprintf(stderr, "msem stats server: %s\n", Error.c_str());
    return false;
  }
  return true;
}

void StatsServer::registerHandler(const std::string &Path, Handler Fn) {
  router().add("GET", Path, std::move(Fn));
}

StatsResponse StatsServer::dispatch(const StatsRequest &Req) {
  return router().dispatch(Req);
}

bool StatsServer::start(int Port, std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg + " (" + std::strerror(errno) + ")";
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };
  if (running()) {
    if (Error)
      *Error = "already running";
    return false;
  }

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // Introspection only:
  Addr.sin_port = htons(static_cast<uint16_t>(Port)); // never routable.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return Fail(formatString("bind 127.0.0.1:%d", Port));
  if (::listen(ListenFd, 16) != 0)
    return Fail("listen");

  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return Fail("getsockname");
  BoundPort.store(ntohs(Addr.sin_port), std::memory_order_release);

  Running.store(true, std::memory_order_release);
  AcceptThread = std::thread([this] { acceptLoop(); });

  const std::string &PortFile = env().StatsPortFile;
  if (!PortFile.empty()) {
    std::string WriteError;
    if (!writeFileAtomic(PortFile, formatString("%d\n", port()), &WriteError))
      std::fprintf(stderr, "msem stats server: cannot write port file: %s\n",
                   WriteError.c_str());
  }
  return true;
}

void StatsServer::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel)) {
    if (AcceptThread.joinable())
      AcceptThread.join();
    return;
  }
  // shutdown() wakes the blocking accept; close() alone may not.
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  if (AcceptThread.joinable())
    AcceptThread.join();
  ListenFd = -1;
  BoundPort.store(0, std::memory_order_release);
}

void StatsServer::acceptLoop() {
  while (Running.load(std::memory_order_acquire)) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // Listening socket shut down (stop()) or fatal.
    }
    serveConnection(Fd);
    ::close(Fd);
  }
}

void StatsServer::serveConnection(int Fd) {
  // A slow or stuck client must not wedge the introspection plane: the
  // single serving thread imposes hard receive/send timeouts and closes
  // after one response (no keep-alive on this transport; the serving
  // plane's event loop is where concurrency lives).
  timeval Timeout{2, 0};
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));

  HttpParser::Limits Limits;
  Limits.MaxBodyBytes = 1 << 20; // Introspection requests are small.
  HttpParser Parser(Limits);
  char Chunk[4096];
  while (Parser.status() == HttpParser::Status::NeedMore) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return; // Timeout or hangup before a full request: nothing to say.
    Parser.feed(Chunk, static_cast<size_t>(N));
  }

  HttpResponse Resp;
  bool Head = false;
  if (Parser.status() == HttpParser::Status::Error) {
    Resp.Status = Parser.errorStatus();
    Resp.Body = Parser.errorText() + "\n";
  } else {
    Head = Parser.request().Method == "HEAD";
    Resp = dispatch(Parser.request());
  }
  httpSendAll(Fd, serializeHttpResponse(Resp, /*KeepAlive=*/false, Head));
}

//===----------------------------------------------------------------------===//
// Scoped providers
//===----------------------------------------------------------------------===//

ScopedStatusProvider::ScopedStatusProvider(std::string NameIn,
                                           std::function<std::string()> Fn)
    : Name(std::move(NameIn)) {
  std::lock_guard<std::mutex> Lock(registries().Mutex);
  Token = registries().NextToken++;
  registries().Status[Name] = {Token, std::move(Fn)};
}

ScopedStatusProvider::~ScopedStatusProvider() {
  std::lock_guard<std::mutex> Lock(registries().Mutex);
  auto It = registries().Status.find(Name);
  // Remove only our own registration: a newer provider under the same
  // name (e.g. a replacement global pool) must survive our teardown.
  if (It != registries().Status.end() && It->second.Token == Token)
    registries().Status.erase(It);
}

ScopedHealthProvider::ScopedHealthProvider(std::string NameIn,
                                           std::function<std::string()> Fn)
    : Name(std::move(NameIn)) {
  std::lock_guard<std::mutex> Lock(registries().Mutex);
  Token = registries().NextToken++;
  registries().Health[Name] = {Token, std::move(Fn)};
}

ScopedHealthProvider::~ScopedHealthProvider() {
  std::lock_guard<std::mutex> Lock(registries().Mutex);
  auto It = registries().Health.find(Name);
  if (It != registries().Health.end() && It->second.Token == Token)
    registries().Health.erase(It);
}
