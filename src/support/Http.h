//===- support/Http.h - Shared HTTP/1.1 wire layer ---------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependency-free HTTP/1.1 substrate shared by every server in the
/// tree: the loopback introspection plane (support/StatsServer) and the
/// networked prediction server (serving/HttpServer, tools/msem_serve).
/// Three pieces:
///
///   * HttpRequest / HttpResponse -- the value types handlers consume and
///     produce. Field order of HttpRequest keeps the historical
///     {Method, Path, Query} aggregate-initialization shape working.
///
///   * HttpParser -- an incremental request parser built for event loops:
///     feed() accepts however many bytes the socket produced (one byte at
///     a time is fine) and reports NeedMore / Complete / Error. Enforces
///     request-line, header and body limits so a hostile or broken client
///     cannot balloon memory, maps violations to precise status codes
///     (400/413/431/501), understands Content-Length bodies and
///     Connection/keep-alive semantics, and retains pipelined leftover
///     bytes across reset() so back-to-back requests on one connection
///     never lose data.
///
///   * HttpRouter -- the route-registration API: (method, path) -> handler
///     with token-checked removal and a movable ScopedRoute RAII wrapper.
///     Dispatch semantics: exact (method, path) match; HEAD falls back to
///     GET (the transport suppresses the body); a known path under a
///     different method earns 405; anything else 404. Handlers run on
///     server threads and must be internally synchronized.
///
/// Wire helpers (serializeResponse, sendAll) live here too so the two
/// transports emit identical bytes for identical responses.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_HTTP_H
#define MSEM_SUPPORT_HTTP_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace msem {

/// One parsed HTTP request. The leading three fields preserve the
/// historical StatsRequest aggregate shape ({"GET", "/path", "query"}).
struct HttpRequest {
  std::string Method; ///< Uppercase verb as sent ("GET", "POST", ...).
  std::string Path;   ///< Request path, query string stripped.
  std::string Query;  ///< Raw query string ("" when absent).
  std::string Body;   ///< Entity body (Content-Length framed).
  /// Header fields in arrival order, names lowercased.
  std::vector<std::pair<std::string, std::string>> Headers;

  /// First value of header \p Name (lowercase), or "" when absent.
  std::string header(const std::string &Name) const;
};

/// One HTTP response. Handlers fill Body (and optionally the rest); the
/// transport adds Content-Length and connection framing.
struct HttpResponse {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
};

/// Reason phrase for \p Status ("OK", "Not Found", ...).
const char *httpStatusText(int Status);

/// Renders status line + headers + body. \p KeepAlive selects the
/// Connection header; \p HeadRequest suppresses the body bytes while
/// keeping the true Content-Length (RFC 7231 HEAD semantics).
std::string serializeHttpResponse(const HttpResponse &Resp, bool KeepAlive,
                                  bool HeadRequest);

/// Blocking send of all of \p Data, retrying short writes and EINTR.
/// Returns false once the peer is gone (EPIPE/ECONNRESET/timeout).
bool httpSendAll(int Fd, const std::string &Data);

//===----------------------------------------------------------------------===//
// HttpParser
//===----------------------------------------------------------------------===//

/// Incremental request parser; one instance per connection. See file
/// comment for the contract.
class HttpParser {
public:
  struct Limits {
    size_t MaxRequestLine = 8 * 1024;
    size_t MaxHeaderBytes = 64 * 1024; ///< All header lines together.
    size_t MaxBodyBytes = 8 * 1024 * 1024;
  };

  enum class Status {
    NeedMore, ///< Feed more bytes when the socket has them.
    Complete, ///< request() holds a full request.
    Error     ///< Protocol violation; errorStatus()/errorText() say what.
  };

  HttpParser() : Lim(Limits()) {}
  explicit HttpParser(Limits L) : Lim(L) {}

  /// Consumes \p N bytes. Once Complete or Error is returned, further
  /// feeds are ignored until reset().
  Status feed(const char *Data, size_t N);

  /// Parser state without new bytes (how pipelined leftovers resume).
  Status status() const { return St; }

  /// The parsed request; valid only when status() == Complete.
  const HttpRequest &request() const { return Req; }

  /// True when the request (or HTTP/1.1 default) asks to keep the
  /// connection open; valid when Complete.
  bool keepAlive() const { return KeepAlive; }

  /// Suggested response status for an Error (400/413/431/501).
  int errorStatus() const { return ErrStatus; }
  const std::string &errorText() const { return ErrText; }

  /// Prepares for the next request on the same connection, re-parsing any
  /// pipelined bytes already received (so status() may be Complete
  /// immediately after reset()).
  void reset();

private:
  enum class Phase { RequestLine, Headers, Body, Done };

  Status fail(int Status, const std::string &Text);
  Status parseBuffered();
  bool takeLine(std::string &Out); ///< Up to CRLF/LF, from Buf[Pos].

  Limits Lim;
  Phase Ph = Phase::RequestLine;
  Status St = Status::NeedMore;
  std::string Buf;   ///< Unconsumed bytes (grows by feed, trimmed by reset).
  size_t Pos = 0;    ///< Parse cursor into Buf.
  size_t HeaderBytes = 0;
  size_t ContentLength = 0;
  bool KeepAlive = true;
  int ErrStatus = 400;
  std::string ErrText;
  HttpRequest Req;
};

//===----------------------------------------------------------------------===//
// HttpRouter
//===----------------------------------------------------------------------===//

/// Thread-safe (method, path) -> handler table with token-checked
/// removal. Registering an existing (method, path) replaces the handler
/// (the newer owner wins); removal by token is a no-op when the route has
/// since been replaced, so RAII teardown can never evict a successor.
class HttpRouter {
public:
  using Handler = std::function<HttpResponse(const HttpRequest &)>;

  /// Registers \p Fn for (\p Method, \p Path); returns the removal token.
  uint64_t add(const std::string &Method, const std::string &Path,
               Handler Fn);

  /// Removes the route that \p Token registered, if still current.
  void remove(uint64_t Token);

  /// Routes \p Req: exact (method, path) match, HEAD falling back to GET;
  /// 405 for a known path under an unknown method, 404 otherwise.
  HttpResponse dispatch(const HttpRequest &Req) const;

  /// Sorted unique registered paths (the index page's inventory).
  std::vector<std::string> paths() const;

private:
  struct Route {
    uint64_t Token;
    Handler Fn;
  };
  mutable std::mutex Mutex;
  /// Key: "METHOD PATH" (method uppercase).
  std::map<std::string, Route> Routes;
  uint64_t NextToken = 1;
};

/// RAII registration of one route in an HttpRouter. Movable so services
/// can hold a vector of owned routes.
class ScopedRoute {
public:
  ScopedRoute() = default;
  ScopedRoute(HttpRouter &R, const std::string &Method,
              const std::string &Path, HttpRouter::Handler Fn)
      : Router(&R), Token(R.add(Method, Path, std::move(Fn))) {}
  ~ScopedRoute() { release(); }

  ScopedRoute(ScopedRoute &&O) noexcept : Router(O.Router), Token(O.Token) {
    O.Router = nullptr;
    O.Token = 0;
  }
  ScopedRoute &operator=(ScopedRoute &&O) noexcept {
    if (this != &O) {
      release();
      Router = O.Router;
      Token = O.Token;
      O.Router = nullptr;
      O.Token = 0;
    }
    return *this;
  }
  ScopedRoute(const ScopedRoute &) = delete;
  ScopedRoute &operator=(const ScopedRoute &) = delete;

private:
  void release() {
    if (Router)
      Router->remove(Token);
    Router = nullptr;
  }
  HttpRouter *Router = nullptr;
  uint64_t Token = 0;
};

} // namespace msem

#endif // MSEM_SUPPORT_HTTP_H
