//===- support/Rng.h - Deterministic random number generation -*- C++ -*-===//
//
// Part of the MSEM project: a reproduction of "Microarchitecture Sensitive
// Empirical Models for Compiler Optimizations" (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used across the project.
/// All stochastic components (experimental designs, model fitting, genetic
/// search, workload input generation) draw from explicitly seeded instances
/// of this generator so that every experiment is reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_RNG_H
#define MSEM_SUPPORT_RNG_H

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace msem {

/// SplitMix64 generator, used to expand a single 64-bit seed into the
/// larger state of Xoshiro256**.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256** pseudo-random generator with convenience distributions.
///
/// The generator is deliberately small and header-only; it is on the hot
/// path of the cycle-level simulator's workload generators.
class Rng {
public:
  /// Seeds the full 256-bit state from \p Seed via SplitMix64.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  void reseed(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : S)
      Word = SM.next();
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    const uint64_t Result = rotl(S[1] * 5, 7) * 9;
    const uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

  /// Uniform integer in [0, N). Requires N > 0.
  uint64_t nextBelow(uint64_t N) {
    assert(N > 0 && "nextBelow(0) is meaningless");
    // Rejection sampling to avoid modulo bias.
    const uint64_t Threshold = (0 - N) % N;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % N;
    }
  }

  /// Uniform integer in the closed range [Lo, Hi].
  int64_t intInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty integer range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli trial with probability \p P of returning true.
  bool chance(double P) { return uniform() < P; }

  /// Standard normal deviate (Box-Muller, no caching for determinism).
  double normal() {
    double U1 = uniform();
    // Guard against log(0).
    if (U1 <= 0.0)
      U1 = 0x1.0p-53;
    double U2 = uniform();
    return std::sqrt(-2.0 * std::log(U1)) *
           std::cos(2.0 * 3.14159265358979323846 * U2);
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double Mean, double Sigma) { return Mean + Sigma * normal(); }

  /// Fisher-Yates shuffle of \p V.
  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I)
      std::swap(V[I - 1], V[nextBelow(I)]);
  }

  /// Uniformly picks one element of non-empty \p V.
  template <typename T> const T &pick(const std::vector<T> &V) {
    assert(!V.empty() && "cannot pick from an empty vector");
    return V[nextBelow(V.size())];
  }

  /// Derives an independent child generator; used to hand sub-components
  /// their own streams without correlating them.
  Rng split() { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

  /// The full 256-bit generator state, for checkpointing. A generator
  /// restored with setState continues the exact sequence.
  std::array<uint64_t, 4> state() const { return {S[0], S[1], S[2], S[3]}; }

  /// Restores a state captured by state().
  void setState(const std::array<uint64_t, 4> &State) {
    for (size_t I = 0; I < 4; ++I)
      S[I] = State[I];
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t S[4];
};

} // namespace msem

#endif // MSEM_SUPPORT_RNG_H
