//===- support/TablePrinter.h - ASCII table formatting ----------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats experiment results as aligned ASCII tables matching the layout of
/// the paper's tables. Used by the benchmark harnesses and examples.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SUPPORT_TABLEPRINTER_H
#define MSEM_SUPPORT_TABLEPRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace msem {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: appends a row from already formatted cells.
  template <typename... Ts> void addRowCells(Ts &&...Cells) {
    addRow(std::vector<std::string>{std::forward<Ts>(Cells)...});
  }

  /// Renders the table to a string (header, separator, rows).
  std::string render() const;

  /// Renders and writes to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace msem

#endif // MSEM_SUPPORT_TABLEPRINTER_H
