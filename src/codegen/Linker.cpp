//===- codegen/Linker.cpp - Linearization and linking -------------------------===//
//
// Emits each function's blocks in layout order, folds branches into
// fall-throughs (dropping redundant jumps, inverting conditions when the
// taken side is the next block), and resolves block-index targets and
// callee-index JAL targets into absolute code indices. A startup stub
// (JAL main; HALT) occupies indices 0 and 1.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"

#include "support/Error.h"

#include <unordered_map>

using namespace msem;

namespace {

/// Emits one function's code into \p Code; returns block-start indices and
/// records intra-function patches to apply once all blocks are placed.
void emitFunction(const MachineFunction &MF, std::vector<MachineInstr> &Code) {
  const size_t NumBlocks = MF.Blocks.size();
  std::vector<int64_t> BlockStart(NumBlocks, -1);
  struct Patch {
    size_t CodeIndex;
    size_t BlockIndex;
  };
  std::vector<Patch> Patches;

  for (size_t Pos = 0; Pos < MF.LayoutOrder.size(); ++Pos) {
    size_t B = MF.LayoutOrder[Pos];
    const MachineBasicBlock &BB = MF.Blocks[B];
    BlockStart[B] = static_cast<int64_t>(Code.size());

    // The next block in layout (for fall-through folding).
    int64_t NextBlock = Pos + 1 < MF.LayoutOrder.size()
                            ? static_cast<int64_t>(MF.LayoutOrder[Pos + 1])
                            : -1;

    bool DropTailJump = false;
    for (size_t I = 0; I < BB.Instrs.size(); ++I) {
      MachineInstr MI = BB.Instrs[I].MI;
      bool IsLast = I + 1 == BB.Instrs.size();
      bool IsPenultimate = I + 2 == BB.Instrs.size();

      if (MI.Op == MOp::J && IsLast &&
          (DropTailJump || MI.Target == NextBlock))
        continue; // Fall through (or covered by an inverted branch).

      if (MI.isConditionalBranch() && IsPenultimate &&
          BB.Instrs.back().MI.Op == MOp::J) {
        const MachineInstr &Tail = BB.Instrs.back().MI;
        if (MI.Target == NextBlock) {
          // bcc next; j other  ->  b!cc other (fall through to next).
          MI.Op = MI.Op == MOp::BNEZ ? MOp::BEQZ : MOp::BNEZ;
          MI.Target = Tail.Target;
          DropTailJump = true;
        }
        // (The `j other == next` case is handled when the J is emitted.)
      }

      if (MI.Op == MOp::J || MI.isConditionalBranch())
        Patches.push_back({Code.size(), static_cast<size_t>(MI.Target)});
      Code.push_back(MI);
    }
  }

  for (const auto &P : Patches) {
    assert(BlockStart[P.BlockIndex] >= 0 && "branch to unplaced block");
    Code[P.CodeIndex].Target = BlockStart[P.BlockIndex];
  }
}

} // namespace

MachineProgram msem::linkProgram(const std::vector<MachineFunction> &MFs,
                                 const GlobalLayout &Layout,
                                 const CodeGenOptions &Options) {
  MachineProgram Prog;
  Prog.Globals = Layout.Globals;
  Prog.DataBase = Layout.DataBase;
  Prog.DataEnd = Layout.DataEnd;
  Prog.MemoryBytes = Layout.DataEnd + Options.StackBytes;

  // Startup stub: call main, then halt.
  MachineInstr CallMain;
  CallMain.Op = MOp::JAL;
  CallMain.Rd = reg::RA;
  CallMain.Target = -1; // Patched below.
  Prog.Code.push_back(CallMain);
  MachineInstr Halt;
  Halt.Op = MOp::HALT;
  Prog.Code.push_back(Halt);

  // Place functions; record entries.
  std::vector<std::pair<size_t, size_t>> JalSites; // (code idx, fn idx)
  for (const MachineFunction &MF : MFs) {
    LinkedFunction LF;
    LF.Name = MF.Name;
    LF.EntryIndex = Prog.Code.size();
    size_t Before = Prog.Code.size();
    emitFunction(MF, Prog.Code);
    // JAL targets inside the emitted range still hold function indices.
    for (size_t I = Before; I < Prog.Code.size(); ++I)
      if (Prog.Code[I].Op == MOp::JAL)
        JalSites.push_back({I, static_cast<size_t>(Prog.Code[I].Target)});
    LF.EndIndex = Prog.Code.size();
    Prog.Functions.push_back(std::move(LF));
  }

  // Resolve calls (JAL targets are module function indices).
  for (auto &[CodeIdx, FnIdx] : JalSites) {
    assert(FnIdx < Prog.Functions.size() && "call to unknown function");
    Prog.Code[CodeIdx].Target =
        static_cast<int64_t>(Prog.Functions[FnIdx].EntryIndex);
  }

  // The stub calls main.
  int64_t MainEntry = -1;
  for (const LinkedFunction &LF : Prog.Functions)
    if (LF.Name == "main")
      MainEntry = static_cast<int64_t>(LF.EntryIndex);
  if (MainEntry < 0)
    fatalError("link error: program has no main function");
  Prog.Code[0].Target = MainEntry;
  Prog.EntryIndex = 0;
  return Prog;
}

MachineProgram msem::compileToProgram(Module &M,
                                      const CodeGenOptions &Options) {
  GlobalLayout Layout = GlobalLayout::compute(M);
  std::vector<MachineFunction> MFs;
  MFs.reserve(M.functions().size());
  for (const auto &F : M.functions()) {
    MachineFunction MF = lowerFunction(*F, Layout);
    allocateRegisters(MF, Options);
    if (Options.PostRaSchedule)
      schedulePostRa(MF);
    MFs.push_back(std::move(MF));
  }
  return linkProgram(MFs, Layout, Options);
}
