//===- codegen/CodeGenerator.h - IR-to-machine compilation -------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code generation driver: lowers an (already optimized) IR module to a
/// linked MachineProgram. Consumes the codegen-level halves of the Table 1
/// flags: -fomit-frame-pointer (frees x30 for allocation and drops frame
/// setup) and the post-RA half of -fschedule-insns2.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CODEGEN_CODEGENERATOR_H
#define MSEM_CODEGEN_CODEGENERATOR_H

#include "codegen/MachineFunction.h"
#include "ir/Module.h"
#include "isa/MachineProgram.h"

namespace msem {

/// Codegen-level options (derived from OptimizationConfig).
struct CodeGenOptions {
  bool OmitFramePointer = false;
  bool PostRaSchedule = false;
  /// Stack size reserved above the globals in data memory.
  uint64_t StackBytes = 8ull << 20;
};

/// Placement of globals in data memory, shared between lowering (absolute
/// addresses) and linking (initial image).
struct GlobalLayout {
  std::vector<LinkedGlobal> Globals;
  uint64_t DataBase = 4096;
  uint64_t DataEnd = 4096;

  /// Computes the layout for \p M (16-byte aligned, module order).
  static GlobalLayout compute(const Module &M);

  /// Base address of a global; asserts if absent.
  uint64_t baseOf(const GlobalVariable *G) const;
};

/// Lowers one IR function to machine code over virtual registers.
/// (Exposed for unit testing; most callers use compileToProgram.)
MachineFunction lowerFunction(Function &F, const GlobalLayout &Layout);

/// Linear-scan register allocation + frame lowering for one function.
void allocateRegisters(MachineFunction &MF, const CodeGenOptions &Options);

/// Post-RA list scheduling (no-op unless Options.PostRaSchedule).
void schedulePostRa(MachineFunction &MF);

/// Links machine functions into an executable image. Function order
/// follows \p MFs; a startup stub (JAL main; HALT) is prepended.
MachineProgram linkProgram(const std::vector<MachineFunction> &MFs,
                           const GlobalLayout &Layout,
                           const CodeGenOptions &Options);

/// Full pipeline: lower + allocate + schedule + link.
MachineProgram compileToProgram(Module &M, const CodeGenOptions &Options);

} // namespace msem

#endif // MSEM_CODEGEN_CODEGENERATOR_H
