//===- codegen/MachineFunction.h - Pre-link machine code ---------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of code generation: machine basic blocks over virtual (then
/// physical) registers, frame information and the fixup metadata that frame
/// lowering resolves once the final frame size is known.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CODEGEN_MACHINEFUNCTION_H
#define MSEM_CODEGEN_MACHINEFUNCTION_H

#include "isa/MachineInstr.h"

#include <string>
#include <vector>

namespace msem {

/// Frame-relative references that need fixup after the frame is final.
enum class FrameRef : uint8_t {
  None,
  /// Imm is an offset into the alloca area; add the spill-area size.
  AllocaArea,
  /// Imm is the (negative) incoming-argument offset; add the frame size.
  IncomingArg,
};

/// A machine instruction plus codegen-time fixup metadata.
struct CgInstr {
  MachineInstr MI;
  FrameRef Frame = FrameRef::None;
};

/// A machine basic block. Branch targets (MI.Target) are block indices
/// within the owning MachineFunction until linking.
struct MachineBasicBlock {
  std::string Name;
  std::vector<CgInstr> Instrs;
};

/// A function's machine code between lowering and linking.
struct MachineFunction {
  std::string Name;
  std::vector<MachineBasicBlock> Blocks;
  /// Emission order of block indices. Lowering places edge-split blocks
  /// right after their predecessor so phi-copy code stays on the hot path;
  /// the linker emits blocks in this order and resolves branch targets
  /// (which are block indices) accordingly.
  std::vector<size_t> LayoutOrder;
  /// Number of virtual registers; ids are reg::FirstVirtual + i.
  uint32_t NumVRegs = 0;
  /// Class of each virtual register (true = floating point).
  std::vector<bool> VRegIsFp;
  /// Bytes of alloca (static frame) area.
  uint64_t AllocaBytes = 0;
  /// Number of incoming arguments (for the incoming-arg fixups).
  unsigned NumArgs = 0;
  bool MakesCalls = false;

  /// Allocates a fresh virtual register of the given class and returns its
  /// unified id.
  int32_t createVReg(bool IsFp) {
    VRegIsFp.push_back(IsFp);
    return reg::FirstVirtual + static_cast<int32_t>(NumVRegs++);
  }

  bool isVirtualFp(int32_t Reg) const {
    return VRegIsFp[static_cast<size_t>(Reg - reg::FirstVirtual)];
  }

  unsigned instructionCount() const {
    unsigned N = 0;
    for (const MachineBasicBlock &BB : Blocks)
      N += BB.Instrs.size();
    return N;
  }
};

} // namespace msem

#endif // MSEM_CODEGEN_MACHINEFUNCTION_H
