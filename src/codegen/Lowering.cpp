//===- codegen/Lowering.cpp - IR to machine instruction selection ------------===//
//
// Lowers SSA IR to machine code over virtual registers:
//   - phis are eliminated with the safe double-copy scheme (sources are
//     copied into fresh temporaries before the phi registers are written,
//     which handles the swap and lost-copy problems without analysis);
//   - critical edges carrying phi values are split;
//   - constants rematerialize per block (with per-block reuse), immediates
//     fold into ADDI and memory-operand offsets;
//   - calls pass arguments on the stack (at [sp - 8*(n-i)]) and return in
//     x1/f1.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"

#include "support/Error.h"

#include <unordered_map>

using namespace msem;

GlobalLayout GlobalLayout::compute(const Module &M) {
  GlobalLayout L;
  uint64_t Base = L.DataBase;
  for (const auto &G : M.globals()) {
    LinkedGlobal LG;
    LG.Name = G->name();
    LG.Base = Base;
    LG.Size = G->sizeInBytes();
    LG.Init = G->initializer();
    L.Globals.push_back(std::move(LG));
    Base += (G->sizeInBytes() + 15) & ~15ull;
  }
  L.DataEnd = Base;
  return L;
}

uint64_t GlobalLayout::baseOf(const GlobalVariable *G) const {
  for (const LinkedGlobal &LG : Globals)
    if (LG.Name == G->name())
      return LG.Base;
  MSEM_UNREACHABLE("global not in layout");
}

namespace {

class FunctionLowering {
public:
  FunctionLowering(Function &F, const GlobalLayout &Layout)
      : F(F), Layout(Layout) {}

  MachineFunction run() {
    MF.Name = F.name();
    MF.NumArgs = F.numArgs();
    for (size_t I = 0; I < F.blocks().size(); ++I) {
      BlockIndex[F.blocks()[I].get()] = I;
      MF.Blocks.push_back(MachineBasicBlock{F.blocks()[I]->name(), {}});
      MF.LayoutOrder.push_back(I);
    }
    assignAllocaSlots();
    assignPhiRegs();
    lowerArguments();
    for (size_t I = 0; I < F.blocks().size(); ++I)
      lowerBlock(*F.blocks()[I], I);
    return std::move(MF);
  }

private:
  // -- Emission helpers --------------------------------------------------
  void emitTo(size_t BlockIdx, MachineInstr MI,
              FrameRef Frame = FrameRef::None) {
    MF.Blocks[BlockIdx].Instrs.push_back(CgInstr{MI, Frame});
  }
  void emit(MachineInstr MI, FrameRef Frame = FrameRef::None) {
    emitTo(CurBlock, MI, Frame);
  }

  static MachineInstr make(MOp Op, int32_t Rd = -1, int32_t Rs1 = -1,
                           int32_t Rs2 = -1, int64_t Imm = 0) {
    MachineInstr MI;
    MI.Op = Op;
    MI.Rd = Rd;
    MI.Rs1 = Rs1;
    MI.Rs2 = Rs2;
    MI.Imm = Imm;
    return MI;
  }

  // -- Value mapping -----------------------------------------------------
  int32_t vregFor(const Value *V) {
    auto It = ValueReg.find(V);
    if (It != ValueReg.end())
      return It->second;
    bool IsFp = V->type() == Type::F64;
    int32_t R = MF.createVReg(IsFp);
    ValueReg[V] = R;
    return R;
  }

  /// Materializes \p V into a register in the current block. Constants are
  /// cached per (block, constant).
  int32_t useReg(Value *V) {
    if (auto *C = dyn_cast<Constant>(V)) {
      auto Key = std::make_pair(CurBlock, static_cast<const Value *>(C));
      auto It = BlockConstReg.find(Key);
      if (It != BlockConstReg.end())
        return It->second;
      int32_t R;
      if (C->type() == Type::I64) {
        R = MF.createVReg(false);
        emit(make(MOp::LI, R, -1, -1, C->intValue()));
      } else {
        R = MF.createVReg(true);
        MachineInstr MI = make(MOp::FLI, R);
        MI.FpImm = C->floatValue();
        emit(MI);
      }
      BlockConstReg[Key] = R;
      return R;
    }
    if (auto *G = dyn_cast<GlobalVariable>(V)) {
      auto Key = std::make_pair(CurBlock, static_cast<const Value *>(G));
      auto It = BlockConstReg.find(Key);
      if (It != BlockConstReg.end())
        return It->second;
      int32_t R = MF.createVReg(false);
      emit(make(MOp::LI, R, -1, -1,
                static_cast<int64_t>(Layout.baseOf(G))));
      BlockConstReg[Key] = R;
      return R;
    }
    return vregFor(V);
  }

  /// Integer constant value if \p V is one.
  static const Constant *asIntConst(const Value *V) {
    const auto *C = dyn_cast<Constant>(V);
    return (C && C->type() == Type::I64) ? C : nullptr;
  }

  // -- Setup -------------------------------------------------------------
  void assignAllocaSlots() {
    uint64_t Offset = 0;
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        if (I->opcode() != Opcode::Alloca)
          continue;
        AllocaOffset[I.get()] = Offset;
        Offset += (I->allocaSize() + 15) & ~15ull;
      }
    }
    MF.AllocaBytes = Offset;
  }

  void assignPhiRegs() {
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (I->opcode() == Opcode::Phi)
          (void)vregFor(I.get());
  }

  void lowerArguments() {
    // Incoming argument i lives at [sp + frame - 8*(n-i)]; the exact frame
    // size is patched by frame lowering (FrameRef::IncomingArg).
    CurBlock = 0;
    for (unsigned I = 0; I < F.numArgs(); ++I) {
      Argument *A = F.arg(I);
      int32_t R = vregFor(A);
      int64_t Offset = -8 * static_cast<int64_t>(F.numArgs() - I);
      MOp Op = A->type() == Type::F64 ? MOp::LDF : MOp::LD64;
      emit(make(Op, R, reg::SP, -1, Offset), FrameRef::IncomingArg);
    }
  }

  // -- Phi elimination ----------------------------------------------------
  /// Emits the phi copies for edge Pred -> Succ into block \p EmitIdx.
  void emitPhiCopies(BasicBlock *Pred, BasicBlock *Succ, size_t EmitIdx) {
    std::vector<std::pair<int32_t, Value *>> Copies; // (phi reg, incoming)
    for (const auto &I : Succ->instructions()) {
      if (I->opcode() != Opcode::Phi)
        break;
      Copies.push_back({vregFor(I.get()), I->phiIncomingFor(Pred)});
    }
    if (Copies.empty())
      return;
    size_t Saved = CurBlock;
    CurBlock = EmitIdx;
    // Double-copy: read all sources into fresh temps, then write the phi
    // registers. Immune to the swap/lost-copy problems.
    std::vector<int32_t> Temps;
    for (auto &[PhiReg, In] : Copies) {
      bool IsFp = In->type() == Type::F64;
      int32_t Tmp = MF.createVReg(IsFp);
      int32_t Src = useReg(In);
      emit(make(IsFp ? MOp::FMOV : MOp::MOV, Tmp, Src));
      Temps.push_back(Tmp);
    }
    for (size_t K = 0; K < Copies.size(); ++K) {
      bool IsFp = Copies[K].second->type() == Type::F64;
      emit(make(IsFp ? MOp::FMOV : MOp::MOV, Copies[K].first, Temps[K]));
    }
    CurBlock = Saved;
  }

  static bool hasPhis(const BasicBlock *BB) {
    return !BB->empty() &&
           BB->instructions().front()->opcode() == Opcode::Phi;
  }

  // -- Terminator lowering -------------------------------------------------
  void lowerTerminator(Instruction &I) {
    switch (I.opcode()) {
    case Opcode::Jmp: {
      BasicBlock *Succ = I.successor(0);
      emitPhiCopies(I.parent(), Succ, CurBlock);
      emit(make(MOp::J, -1, -1, -1, 0));
      MF.Blocks[CurBlock].Instrs.back().MI.Target = BlockIndex.at(Succ);
      break;
    }
    case Opcode::Br: {
      BasicBlock *T = I.successor(0);
      BasicBlock *E = I.successor(1);
      int32_t Cond = useReg(I.operand(0));
      // Phi-carrying successors need their copies on this edge only; with
      // two successors that means split blocks.
      size_t TIdx = BlockIndex.at(T);
      size_t EIdx = BlockIndex.at(E);
      if (hasPhis(T)) {
        size_t Split = newSplitBlock(I.parent()->name() + ".t", CurBlock);
        emitPhiCopies(I.parent(), T, Split);
        emitTo(Split, make(MOp::J, -1, -1, -1, 0));
        MF.Blocks[Split].Instrs.back().MI.Target = TIdx;
        TIdx = Split;
      }
      if (hasPhis(E)) {
        size_t Split = newSplitBlock(I.parent()->name() + ".e", CurBlock);
        emitPhiCopies(I.parent(), E, Split);
        emitTo(Split, make(MOp::J, -1, -1, -1, 0));
        MF.Blocks[Split].Instrs.back().MI.Target = EIdx;
        EIdx = Split;
      }
      MachineInstr B = make(MOp::BNEZ, -1, Cond);
      B.Target = static_cast<int64_t>(TIdx);
      emit(B);
      MachineInstr Jf = make(MOp::J);
      Jf.Target = static_cast<int64_t>(EIdx);
      emit(Jf);
      break;
    }
    case Opcode::Ret: {
      if (I.numOperands() == 1) {
        Value *V = I.operand(0);
        int32_t Src = useReg(V);
        if (V->type() == Type::F64)
          emit(make(MOp::FMOV, reg::FpBase + 1, Src));
        else
          emit(make(MOp::MOV, 1, Src));
      }
      emit(make(MOp::JR, -1, reg::RA));
      break;
    }
    default:
      MSEM_UNREACHABLE("non-terminator in terminator lowering");
    }
  }

  /// Creates an edge-split block placed right after \p PredIdx in the
  /// layout order, so the split's jump back to the real successor can be
  /// folded into a fall-through where possible.
  size_t newSplitBlock(const std::string &Name, size_t PredIdx) {
    MF.Blocks.push_back(MachineBasicBlock{Name, {}});
    size_t NewIdx = MF.Blocks.size() - 1;
    for (size_t Pos = 0; Pos < MF.LayoutOrder.size(); ++Pos) {
      if (MF.LayoutOrder[Pos] == PredIdx) {
        MF.LayoutOrder.insert(MF.LayoutOrder.begin() + Pos + 1, NewIdx);
        return NewIdx;
      }
    }
    MF.LayoutOrder.push_back(NewIdx);
    return NewIdx;
  }

  // -- Straight-line instruction selection ---------------------------------
  void lowerBlock(BasicBlock &BB, size_t BlockIdx) {
    CurBlock = BlockIdx;
    for (const auto &IPtr : BB.instructions()) {
      Instruction &I = *IPtr;
      if (I.opcode() == Opcode::Phi)
        continue; // Handled on incoming edges.
      if (I.isTerminator()) {
        lowerTerminator(I);
        continue;
      }
      lowerInstr(I);
    }
  }

  /// Folds a constant byte offset out of a memory address operand.
  /// Returns (base register, immediate).
  std::pair<int32_t, int64_t> lowerAddress(Value *Addr) {
    if (auto *PA = dyn_cast<Instruction>(Addr)) {
      if (PA->opcode() == Opcode::PtrAdd) {
        if (const Constant *C = asIntConst(PA->operand(1)))
          return {useReg(PA->operand(0)), C->intValue()};
      }
    }
    return {useReg(Addr), 0};
  }

  void lowerBinary(Instruction &I, MOp Op) {
    // Fold integer add/sub immediates into ADDI.
    if (Op == MOp::ADD || Op == MOp::SUB) {
      const Constant *C1 = asIntConst(I.operand(1));
      if (C1) {
        int64_t Imm = Op == MOp::ADD ? C1->intValue() : -C1->intValue();
        emit(make(MOp::ADDI, vregFor(&I), useReg(I.operand(0)), -1, Imm));
        return;
      }
      const Constant *C0 = asIntConst(I.operand(0));
      if (C0 && Op == MOp::ADD) {
        emit(make(MOp::ADDI, vregFor(&I), useReg(I.operand(1)), -1,
                  C0->intValue()));
        return;
      }
    }
    int32_t A = useReg(I.operand(0));
    int32_t B = useReg(I.operand(1));
    emit(make(Op, vregFor(&I), A, B));
  }

  void lowerInstr(Instruction &I) {
    switch (I.opcode()) {
    case Opcode::Add:
      lowerBinary(I, MOp::ADD);
      break;
    case Opcode::Sub:
      lowerBinary(I, MOp::SUB);
      break;
    case Opcode::Mul:
      lowerBinary(I, MOp::MUL);
      break;
    case Opcode::Div:
      lowerBinary(I, MOp::DIV);
      break;
    case Opcode::Rem:
      lowerBinary(I, MOp::REM);
      break;
    case Opcode::And:
      lowerBinary(I, MOp::AND);
      break;
    case Opcode::Or:
      lowerBinary(I, MOp::OR);
      break;
    case Opcode::Xor:
      lowerBinary(I, MOp::XOR);
      break;
    case Opcode::Shl:
      lowerBinary(I, MOp::SHL);
      break;
    case Opcode::Shr:
      lowerBinary(I, MOp::SHR);
      break;
    case Opcode::PtrAdd:
      lowerBinary(I, MOp::ADD);
      break;
    case Opcode::FAdd:
      lowerBinary(I, MOp::FADD);
      break;
    case Opcode::FSub:
      lowerBinary(I, MOp::FSUB);
      break;
    case Opcode::FMul:
      lowerBinary(I, MOp::FMUL);
      break;
    case Opcode::FDiv:
      lowerBinary(I, MOp::FDIV);
      break;
    case Opcode::ICmp: {
      MachineInstr MI = make(MOp::CMP, vregFor(&I), useReg(I.operand(0)),
                             useReg(I.operand(1)));
      MI.Pred = I.cmpPred();
      emit(MI);
      break;
    }
    case Opcode::FCmp: {
      MachineInstr MI = make(MOp::FCMP, vregFor(&I), useReg(I.operand(0)),
                             useReg(I.operand(1)));
      MI.Pred = I.cmpPred();
      emit(MI);
      break;
    }
    case Opcode::SIToFP:
      emit(make(MOp::CVTIF, vregFor(&I), useReg(I.operand(0))));
      break;
    case Opcode::FPToSI:
      emit(make(MOp::CVTFI, vregFor(&I), useReg(I.operand(0))));
      break;
    case Opcode::Select: {
      bool IsFp = I.type() == Type::F64;
      int32_t Rd = vregFor(&I);
      int32_t Cond = useReg(I.operand(0));
      int32_t TrueV = useReg(I.operand(1));
      int32_t FalseV = useReg(I.operand(2));
      emit(make(IsFp ? MOp::FMOV : MOp::MOV, Rd, FalseV));
      emit(make(IsFp ? MOp::FCMOV : MOp::CMOV, Rd, Cond, TrueV));
      break;
    }
    case Opcode::Load: {
      auto [Base, Imm] = lowerAddress(I.operand(0));
      MOp Op = MOp::LD64;
      switch (I.memKind()) {
      case MemKind::Int8:
        Op = MOp::LD8;
        break;
      case MemKind::Int32:
        Op = MOp::LD32;
        break;
      case MemKind::Int64:
        Op = MOp::LD64;
        break;
      case MemKind::Float64:
        Op = MOp::LDF;
        break;
      }
      emit(make(Op, vregFor(&I), Base, -1, Imm));
      break;
    }
    case Opcode::Store: {
      auto [Base, Imm] = lowerAddress(I.operand(1));
      int32_t Data = useReg(I.operand(0));
      MOp Op = MOp::ST64;
      switch (I.memKind()) {
      case MemKind::Int8:
        Op = MOp::ST8;
        break;
      case MemKind::Int32:
        Op = MOp::ST32;
        break;
      case MemKind::Int64:
        Op = MOp::ST64;
        break;
      case MemKind::Float64:
        Op = MOp::STF;
        break;
      }
      emit(make(Op, -1, Base, Data, Imm));
      break;
    }
    case Opcode::Prefetch: {
      auto [Base, Imm] = lowerAddress(I.operand(0));
      emit(make(MOp::PREF, -1, Base, -1, Imm));
      break;
    }
    case Opcode::Alloca:
      emit(make(MOp::ADDI, vregFor(&I), reg::SP, -1,
                static_cast<int64_t>(AllocaOffset.at(&I))),
           FrameRef::AllocaArea);
      break;
    case Opcode::Call: {
      MF.MakesCalls = true;
      // Outgoing arguments go just below sp: arg i at [sp - 8*(n-i)].
      unsigned N = I.numOperands();
      for (unsigned A = 0; A < N; ++A) {
        Value *Arg = I.operand(A);
        int32_t Src = useReg(Arg);
        int64_t Offset = -8 * static_cast<int64_t>(N - A);
        MOp Op = Arg->type() == Type::F64 ? MOp::STF : MOp::ST64;
        emit(make(Op, -1, reg::SP, Src, Offset));
      }
      MachineInstr Call = make(MOp::JAL, reg::RA);
      Call.Target = -1; // Patched by the linker via CalleeName.
      emit(Call);
      CalleeOfCall.push_back({CurBlock,
                              MF.Blocks[CurBlock].Instrs.size() - 1,
                              I.callee()->name()});
      if (I.type() != Type::Void) {
        bool IsFp = I.type() == Type::F64;
        emit(make(IsFp ? MOp::FMOV : MOp::MOV, vregFor(&I),
                  IsFp ? reg::FpBase + 1 : 1));
      }
      break;
    }
    case Opcode::Emit: {
      Value *V = I.operand(0);
      int32_t Src = useReg(V);
      emit(make(V->type() == Type::F64 ? MOp::EMITF : MOp::EMIT, -1, Src));
      break;
    }
    default:
      MSEM_UNREACHABLE("unhandled opcode in lowering");
    }
  }

public:
  /// (block, instr index, callee name) for every JAL; the linker patches
  /// targets. Exposed through lowerFunctionWithCalls below.
  struct CallSite {
    size_t Block;
    size_t Instr;
    std::string Callee;
  };
  std::vector<CallSite> CalleeOfCall;

private:
  Function &F;
  const GlobalLayout &Layout;
  MachineFunction MF;
  size_t CurBlock = 0;
  std::unordered_map<const BasicBlock *, size_t> BlockIndex;
  std::unordered_map<const Value *, int32_t> ValueReg;
  std::unordered_map<const Instruction *, uint64_t> AllocaOffset;

  struct PairHash {
    size_t operator()(const std::pair<size_t, const Value *> &P) const {
      return P.first * 1000003 + std::hash<const void *>()(P.second);
    }
  };
  std::unordered_map<std::pair<size_t, const Value *>, int32_t, PairHash>
      BlockConstReg;
};

} // namespace

// The call-site table is communicated to the linker via a side channel on
// the MachineInstr: JAL.Imm holds an index into a per-program callee-name
// table. To keep MachineFunction self-contained we instead encode the
// callee by name in a per-function table appended to the function.
//
// Simpler contract used here: lowering stores the callee name's index in
// the module's function list into JAL.Target (the linker resolves it to an
// entry code index). lowerFunction receives that mapping via the Function's
// parent module.

MachineFunction msem::lowerFunction(Function &F, const GlobalLayout &Layout) {
  FunctionLowering Lowering(F, Layout);
  MachineFunction MF = Lowering.run();
  // Resolve callee names to module function indices (link-time contract).
  const Module &M = *F.parent();
  for (const auto &CS : Lowering.CalleeOfCall) {
    int64_t FnIndex = -1;
    for (size_t I = 0; I < M.functions().size(); ++I)
      if (M.functions()[I]->name() == CS.Callee)
        FnIndex = static_cast<int64_t>(I);
    assert(FnIndex >= 0 && "callee not found in module");
    MF.Blocks[CS.Block].Instrs[CS.Instr].MI.Target = FnIndex;
  }
  return MF;
}
