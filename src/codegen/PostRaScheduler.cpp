//===- codegen/PostRaScheduler.cpp - Post-RA scheduling (-fschedule-insns2) --===//
//
// List scheduling over physical registers: honours RAW/WAR/WAW register
// dependences, a conservative memory order (stores/calls/emits are ordered
// against every other memory operation), and treats calls and control
// transfers as barriers. Long-latency instructions are hoisted away from
// their consumers; this is the "after register allocation" half of
// -fschedule-insns2.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"

#include <algorithm>
#include <vector>

using namespace msem;

namespace {

unsigned opLatency(const MachineInstr &MI) {
  switch (MI.fuClass()) {
  case FuClass::IntMult:
    return 3;
  case FuClass::IntDiv:
    return 20;
  case FuClass::FpAdd:
    return 2;
  case FuClass::FpMult:
    return 4;
  case FuClass::FpDiv:
    return 12;
  case FuClass::MemPort:
    return MI.isLoad() ? 3 : 1;
  default:
    return 1;
  }
}

bool isBarrier(const MachineInstr &MI) {
  // Calls clobber caller-saved state; control transfers end the window;
  // EMIT must stay ordered with other emits (program output order).
  return MI.isBranch() || MI.Op == MOp::HALT || MI.Op == MOp::EMIT ||
         MI.Op == MOp::EMITF;
}

void scheduleWindow(std::vector<CgInstr> &Instrs, size_t Begin, size_t End) {
  size_t N = End - Begin;
  if (N < 3)
    return;

  std::vector<std::vector<unsigned>> Succs(N);
  std::vector<unsigned> PredCount(N, 0);
  auto AddEdge = [&](unsigned From, unsigned To) {
    if (From == To)
      return;
    Succs[From].push_back(To);
    ++PredCount[To];
  };

  // Register dependences. LastWrite/LastReads are per physical register.
  std::vector<int> LastWrite(64, -1);
  std::vector<std::vector<unsigned>> LastReads(64);
  int LastMemWrite = -1;
  std::vector<unsigned> MemReadsSince;

  for (size_t I = 0; I < N; ++I) {
    const MachineInstr &MI = Instrs[Begin + I].MI;
    int32_t Srcs[3];
    unsigned NS = MI.srcRegs(Srcs);
    for (unsigned S = 0; S < NS; ++S) {
      int32_t R = Srcs[S];
      if (LastWrite[R] >= 0)
        AddEdge(static_cast<unsigned>(LastWrite[R]), I); // RAW
      LastReads[R].push_back(I);
    }
    int32_t Rd = MI.destReg();
    if (Rd >= 0) {
      if (LastWrite[Rd] >= 0)
        AddEdge(static_cast<unsigned>(LastWrite[Rd]), I); // WAW
      for (unsigned Reader : LastReads[Rd])
        AddEdge(Reader, I); // WAR
      LastReads[Rd].clear();
      LastWrite[Rd] = static_cast<int>(I);
    }
    if (MI.isStore()) {
      if (LastMemWrite >= 0)
        AddEdge(static_cast<unsigned>(LastMemWrite), I);
      for (unsigned Reader : MemReadsSince)
        AddEdge(Reader, I);
      MemReadsSince.clear();
      LastMemWrite = static_cast<int>(I);
    } else if (MI.isLoad() || MI.isPrefetch()) {
      if (LastMemWrite >= 0)
        AddEdge(static_cast<unsigned>(LastMemWrite), I);
      MemReadsSince.push_back(I);
    }
  }

  std::vector<unsigned> Priority(N, 0);
  for (size_t I = N; I-- > 0;) {
    unsigned Best = 0;
    for (unsigned S : Succs[I])
      Best = std::max(Best, Priority[S]);
    Priority[I] = Best + opLatency(Instrs[Begin + I].MI);
  }

  std::vector<unsigned> Order;
  Order.reserve(N);
  std::vector<unsigned> Ready;
  for (size_t I = 0; I < N; ++I)
    if (PredCount[I] == 0)
      Ready.push_back(I);
  while (!Ready.empty()) {
    size_t BestIdx = 0;
    for (size_t R = 1; R < Ready.size(); ++R)
      if (Priority[Ready[R]] > Priority[Ready[BestIdx]] ||
          (Priority[Ready[R]] == Priority[Ready[BestIdx]] &&
           Ready[R] < Ready[BestIdx]))
        BestIdx = R;
    unsigned Chosen = Ready[BestIdx];
    Ready.erase(Ready.begin() + BestIdx);
    Order.push_back(Chosen);
    for (unsigned S : Succs[Chosen])
      if (--PredCount[S] == 0)
        Ready.push_back(S);
  }
  assert(Order.size() == N && "post-RA scheduling cycle");

  std::vector<CgInstr> Old(Instrs.begin() + Begin, Instrs.begin() + End);
  for (size_t I = 0; I < N; ++I)
    Instrs[Begin + I] = Old[Order[I]];
}

} // namespace

void msem::schedulePostRa(MachineFunction &MF) {
  for (MachineBasicBlock &BB : MF.Blocks) {
    size_t WindowStart = 0;
    for (size_t I = 0; I <= BB.Instrs.size(); ++I) {
      bool AtEnd = I == BB.Instrs.size();
      if (AtEnd || isBarrier(BB.Instrs[I].MI)) {
        scheduleWindow(BB.Instrs, WindowStart, I);
        WindowStart = I + 1;
      }
    }
  }
}
