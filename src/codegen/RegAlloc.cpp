//===- codegen/RegAlloc.cpp - Linear-scan register allocation ----------------===//
//
// Classic linear scan over live-interval envelopes:
//   - liveness is computed by backward dataflow over the machine CFG;
//   - each virtual register gets one envelope interval [start, end];
//   - intervals crossing a call site may only take callee-saved registers;
//   - when no register is free the interval with the furthest end point
//     spills to a frame slot, and a rewrite pass turns spilled operands
//     into scratch-register reloads/stores.
//
// Frame lowering runs afterwards: it lays out spill slots, the alloca area,
// the callee-saved save area and the incoming-argument area, inserts
// prologue/epilogue code and resolves FrameRef fixups. -fomit-frame-pointer
// removes the frame-pointer save/setup and adds x30 to the callee-saved
// allocation pool.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"

#include "support/Error.h"

#include <functional>
#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace msem;

namespace {

constexpr int32_t FirstVirtual = reg::FirstVirtual;

bool isVirtual(int32_t R) { return R >= FirstVirtual; }

/// Register pools. Integer: x0..x14 caller-saved, x15..x26 callee-saved
/// (+x30 with -fomit-frame-pointer); x27/x28 scratch, x29 ra, x31 sp.
/// Floating: f0..f14 caller-saved, f15..f29 callee-saved; f30/f31 scratch.
struct RegisterPools {
  std::vector<int32_t> IntCallerSaved;
  std::vector<int32_t> IntCalleeSaved;
  std::vector<int32_t> FpCallerSaved;
  std::vector<int32_t> FpCalleeSaved;

  explicit RegisterPools(bool OmitFramePointer) {
    for (int32_t R = 0; R <= 14; ++R)
      IntCallerSaved.push_back(R);
    for (int32_t R = 15; R <= 25; ++R)
      IntCalleeSaved.push_back(R);
    if (OmitFramePointer)
      IntCalleeSaved.push_back(reg::FP);
    for (int32_t R = 0; R <= 14; ++R)
      FpCallerSaved.push_back(reg::FpBase + R);
    for (int32_t R = 15; R <= 29; ++R)
      FpCalleeSaved.push_back(reg::FpBase + R);
  }

  static bool isCalleeSaved(int32_t R) {
    if (R >= reg::FpBase)
      return R - reg::FpBase >= 15 && R - reg::FpBase <= 29;
    return (R >= 15 && R <= 25) || R == reg::FP;
  }
};

struct Interval {
  int32_t VReg = -1;
  int64_t Start = -1;
  int64_t End = -1;
  bool IsFp = false;
  bool CrossesCall = false;
  unsigned UseCount = 0; ///< Static reads; drives spill victim choice.
  int32_t Assigned = -1; ///< Physical register, or -1 when spilled.
  int64_t SpillSlot = -1;
};

class LinearScan {
public:
  LinearScan(MachineFunction &MF, const CodeGenOptions &Options)
      : MF(MF), Pools(Options.OmitFramePointer) {}

  /// Runs allocation; returns the spill-area size in bytes and fills the
  /// set of callee-saved physical registers that end up written.
  uint64_t run(std::set<int32_t> &UsedCalleeSaved) {
    numberInstructions();
    computeLiveness();
    buildIntervals();
    if (coalesceCopies()) {
      // Coalescing rewrote registers and deleted moves; rebuild the
      // position numbering, liveness and intervals from scratch.
      BlockFirst.clear();
      BlockLast.clear();
      CallPositions.clear();
      Intervals.clear();
      numberInstructions();
      computeLiveness();
      buildIntervals();
    }
    allocate();
    rewrite();
    for (const MachineBasicBlock &BB : MF.Blocks)
      for (const CgInstr &CI : BB.Instrs) {
        int32_t Rd = CI.MI.destReg();
        if (Rd >= 0 && RegisterPools::isCalleeSaved(Rd))
          UsedCalleeSaved.insert(Rd);
      }
    return static_cast<uint64_t>(NextSpillSlot) * 8;
  }

private:
  // Position numbering follows the *layout* order (the order code is
  // actually emitted), so edge-split blocks holding phi copies sit next to
  // their predecessors. Numbering in raw block-index order would stretch
  // every loop-carried value's envelope across unrelated code.
  void numberInstructions() {
    BlockFirst.assign(MF.Blocks.size(), 0);
    BlockLast.assign(MF.Blocks.size(), 0);
    int64_t Pos = 0;
    for (size_t B : MF.LayoutOrder) {
      BlockFirst[B] = Pos;
      for (const CgInstr &CI : MF.Blocks[B].Instrs) {
        if (CI.MI.Op == MOp::JAL)
          CallPositions.push_back(Pos);
        ++Pos;
      }
      BlockLast[B] = Pos - 1;
    }
  }

  std::vector<size_t> blockSuccessors(size_t B) const {
    std::vector<size_t> Succ;
    for (const CgInstr &CI : MF.Blocks[B].Instrs) {
      const MachineInstr &MI = CI.MI;
      if (MI.Op == MOp::J || MI.Op == MOp::BEQZ || MI.Op == MOp::BNEZ)
        Succ.push_back(static_cast<size_t>(MI.Target));
    }
    return Succ;
  }

  void computeLiveness() {
    size_t NB = MF.Blocks.size();
    Use.assign(NB, {});
    Def.assign(NB, {});
    LiveIn.assign(NB, {});
    LiveOut.assign(NB, {});
    for (size_t B = 0; B < NB; ++B) {
      for (const CgInstr &CI : MF.Blocks[B].Instrs) {
        int32_t Srcs[3];
        unsigned NS = CI.MI.srcRegs(Srcs);
        for (unsigned S = 0; S < NS; ++S)
          if (isVirtual(Srcs[S]) && !Def[B].count(Srcs[S]))
            Use[B].insert(Srcs[S]);
        int32_t Rd = CI.MI.destReg();
        if (Rd >= 0 && isVirtual(Rd))
          Def[B].insert(Rd);
      }
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t B = NB; B-- > 0;) {
        std::unordered_set<int32_t> Out;
        for (size_t S : blockSuccessors(B))
          for (int32_t V : LiveIn[S])
            Out.insert(V);
        std::unordered_set<int32_t> In = Use[B];
        for (int32_t V : Out)
          if (!Def[B].count(V))
            In.insert(V);
        if (Out != LiveOut[B] || In != LiveIn[B]) {
          LiveOut[B] = std::move(Out);
          LiveIn[B] = std::move(In);
          Changed = true;
        }
      }
    }
  }

  void buildIntervals() {
    std::unordered_map<int32_t, size_t> Index;
    auto Extend = [&](int32_t V, int64_t Pos) {
      auto It = Index.find(V);
      if (It == Index.end()) {
        Interval I;
        I.VReg = V;
        I.Start = I.End = Pos;
        I.IsFp = MF.isVirtualFp(V);
        Index[V] = Intervals.size();
        Intervals.push_back(I);
        return;
      }
      Interval &I = Intervals[It->second];
      I.Start = std::min(I.Start, Pos);
      I.End = std::max(I.End, Pos);
    };

    for (size_t B : MF.LayoutOrder) {
      int64_t Pos = BlockFirst[B];
      for (int32_t V : LiveIn[B])
        Extend(V, BlockFirst[B]);
      for (int32_t V : LiveOut[B])
        Extend(V, BlockLast[B]);
      for (const CgInstr &CI : MF.Blocks[B].Instrs) {
        int32_t Srcs[3];
        unsigned NS = CI.MI.srcRegs(Srcs);
        for (unsigned S = 0; S < NS; ++S)
          if (isVirtual(Srcs[S])) {
            Extend(Srcs[S], Pos);
            ++Intervals[Index.at(Srcs[S])].UseCount;
          }
        int32_t Rd = CI.MI.destReg();
        if (Rd >= 0 && isVirtual(Rd))
          Extend(Rd, Pos);
        ++Pos;
      }
    }
    for (Interval &I : Intervals)
      for (int64_t Call : CallPositions)
        if (I.Start < Call && Call < I.End)
          I.CrossesCall = true;
    std::sort(Intervals.begin(), Intervals.end(),
              [](const Interval &A, const Interval &B) {
                if (A.Start != B.Start)
                  return A.Start < B.Start;
                return A.VReg < B.VReg;
              });
  }

  /// Copy coalescing: merges virtual registers connected by MOV/FMOV when
  /// their live-interval envelopes do not conflict (the classic fix for
  /// the copies inserted by phi elimination -- without it every
  /// loop-carried value pays two moves per iteration). Returns true when
  /// anything changed; the caller recomputes liveness.
  bool coalesceCopies() {
    std::unordered_map<int32_t, size_t> IntervalOf;
    for (size_t I = 0; I < Intervals.size(); ++I)
      IntervalOf[Intervals[I].VReg] = I;

    // Union-find over vregs, with a merged envelope per root.
    std::unordered_map<int32_t, int32_t> Parent;
    std::unordered_map<int32_t, std::pair<int64_t, int64_t>> Env;
    std::function<int32_t(int32_t)> Find = [&](int32_t V) {
      auto It = Parent.find(V);
      if (It == Parent.end() || It->second == V)
        return V;
      int32_t Root = Find(It->second);
      It->second = Root;
      return Root;
    };
    auto EnvOf = [&](int32_t Root) -> std::pair<int64_t, int64_t> {
      auto It = Env.find(Root);
      if (It != Env.end())
        return It->second;
      auto IvIt = IntervalOf.find(Root);
      if (IvIt == IntervalOf.end())
        return {-1, -1}; // Never-used register: empty envelope.
      const Interval &Iv = Intervals[IvIt->second];
      return {Iv.Start, Iv.End};
    };

    bool Changed = false;
    for (MachineBasicBlock &BB : MF.Blocks) {
      for (CgInstr &CI : BB.Instrs) {
        MachineInstr &MI = CI.MI;
        if (MI.Op != MOp::MOV && MI.Op != MOp::FMOV)
          continue;
        if (!isVirtual(MI.Rd) || !isVirtual(MI.Rs1))
          continue;
        int32_t A = Find(MI.Rd), B = Find(MI.Rs1);
        if (A == B) {
          Changed = true; // Becomes a self-move, deleted below.
          continue;
        }
        auto [SA, EA] = EnvOf(A);
        auto [SB, EB] = EnvOf(B);
        // Compatible when one envelope ends where the other starts (the
        // move itself is the only shared position; reads precede writes
        // within an instruction).
        bool Compatible =
            SA < 0 || SB < 0 || EB <= SA || EA <= SB;
        if (!Compatible)
          continue;
        Parent[B] = A;
        Env[A] = {SA < 0 ? SB : std::min(SA, SB),
                  EA < 0 ? EB : std::max(EA, EB)};
        Changed = true;
      }
    }
    if (!Changed)
      return false;

    // Rewrite registers and drop self-moves.
    for (MachineBasicBlock &BB : MF.Blocks) {
      std::vector<CgInstr> Kept;
      Kept.reserve(BB.Instrs.size());
      for (CgInstr &CI : BB.Instrs) {
        MachineInstr &MI = CI.MI;
        if (isVirtual(MI.Rd))
          MI.Rd = Find(MI.Rd);
        if (isVirtual(MI.Rs1))
          MI.Rs1 = Find(MI.Rs1);
        if (isVirtual(MI.Rs2))
          MI.Rs2 = Find(MI.Rs2);
        bool SelfMove = (MI.Op == MOp::MOV || MI.Op == MOp::FMOV) &&
                        MI.Rd == MI.Rs1;
        if (!SelfMove)
          Kept.push_back(CI);
      }
      BB.Instrs = std::move(Kept);
    }
    return true;
  }

  void allocate() {
    // Active lists per class, ordered by end position.
    auto ByEnd = [this](size_t A, size_t B) {
      if (Intervals[A].End != Intervals[B].End)
        return Intervals[A].End < Intervals[B].End;
      return A < B;
    };
    std::set<size_t, decltype(ByEnd)> Active(ByEnd);
    std::set<int32_t> FreeRegs;
    auto SeedFree = [&]() {
      for (int32_t R : Pools.IntCallerSaved)
        FreeRegs.insert(R);
      for (int32_t R : Pools.IntCalleeSaved)
        FreeRegs.insert(R);
      for (int32_t R : Pools.FpCallerSaved)
        FreeRegs.insert(R);
      for (int32_t R : Pools.FpCalleeSaved)
        FreeRegs.insert(R);
    };
    SeedFree();

    auto IsFpReg = [](int32_t R) { return R >= reg::FpBase; };

    for (size_t Idx = 0; Idx < Intervals.size(); ++Idx) {
      Interval &Cur = Intervals[Idx];
      // Expire finished intervals.
      for (auto It = Active.begin(); It != Active.end();) {
        if (Intervals[*It].End < Cur.Start) {
          if (Intervals[*It].Assigned >= 0)
            FreeRegs.insert(Intervals[*It].Assigned);
          It = Active.erase(It);
        } else {
          ++It;
        }
      }
      // Pick a register: callee-saved first when crossing a call,
      // caller-saved first otherwise.
      const std::vector<int32_t> &Primary =
          Cur.IsFp ? (Cur.CrossesCall ? Pools.FpCalleeSaved
                                      : Pools.FpCallerSaved)
                   : (Cur.CrossesCall ? Pools.IntCalleeSaved
                                      : Pools.IntCallerSaved);
      const std::vector<int32_t> &Secondary =
          Cur.IsFp ? Pools.FpCalleeSaved : Pools.IntCalleeSaved;

      int32_t Chosen = -1;
      for (int32_t R : Primary)
        if (FreeRegs.count(R)) {
          Chosen = R;
          break;
        }
      if (Chosen < 0 && !Cur.CrossesCall) {
        // Fall back to callee-saved even for short intervals.
        for (int32_t R : Secondary)
          if (FreeRegs.count(R)) {
            Chosen = R;
            break;
          }
      }
      if (Chosen >= 0) {
        Cur.Assigned = Chosen;
        FreeRegs.erase(Chosen);
        Active.insert(Idx);
        continue;
      }
      // Spill: among eligible active intervals (same class, compatible
      // constraints, later end), evict the one with the worst
      // length-per-use density -- long-lived rarely-read values (e.g.
      // after-loop checksums) spill before hot loop-carried phis.
      auto SpillScore = [](const Interval &I) {
        return static_cast<double>(I.End - I.Start) /
               (1.0 + static_cast<double>(I.UseCount));
      };
      size_t VictimIdx = Idx;
      double BestScore = SpillScore(Cur);
      for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
        Interval &Cand = Intervals[*It];
        if (Cand.IsFp != Cur.IsFp || Cand.Assigned < 0)
          continue;
        // A caller-saved register cannot be inherited by a call-crossing
        // interval.
        if (Cur.CrossesCall &&
            !RegisterPools::isCalleeSaved(Cand.Assigned))
          continue;
        if (Cand.End <= Cur.End)
          continue;
        if (SpillScore(Cand) > BestScore) {
          BestScore = SpillScore(Cand);
          VictimIdx = *It;
        }
      }
      if (VictimIdx != Idx) {
        Interval &Victim = Intervals[VictimIdx];
        Cur.Assigned = Victim.Assigned;
        Victim.Assigned = -1;
        Victim.SpillSlot = NextSpillSlot++;
        Active.erase(VictimIdx);
        Active.insert(Idx);
      } else {
        Cur.SpillSlot = NextSpillSlot++;
      }
    }

    for (const Interval &I : Intervals) {
      if (I.Assigned >= 0) {
        assert(IsFpReg(I.Assigned) == I.IsFp && "class mismatch");
        Assignment[I.VReg] = I.Assigned;
      } else {
        SpillSlotOf[I.VReg] = I.SpillSlot;
      }
    }
    (void)IsFpReg;
  }

  /// Rewrites virtual operands to physical registers; spilled operands go
  /// through scratch registers with loads/stores around the instruction.
  void rewrite() {
    for (MachineBasicBlock &BB : MF.Blocks) {
      std::vector<CgInstr> NewInstrs;
      NewInstrs.reserve(BB.Instrs.size());
      for (CgInstr &CI : BB.Instrs) {
        MachineInstr &MI = CI.MI;
        int NextIntScratch = 0, NextFpScratch = 0;
        auto ScratchFor = [&](bool IsFp) {
          if (IsFp) {
            assert(NextFpScratch < 2 && "out of fp spill scratch");
            return static_cast<int32_t>(NextFpScratch++ == 0
                                            ? reg::FpScratch0
                                            : reg::FpScratch1);
          }
          assert(NextIntScratch < 3 && "out of int spill scratch");
          static const int32_t IntScratches[3] = {
              reg::IntScratch0, reg::IntScratch1, reg::IntScratch2};
          return IntScratches[NextIntScratch++];
        };
        auto EmitReload = [&](int64_t Slot, bool IsFp, int32_t Scratch) {
          MachineInstr Reload;
          Reload.Op = IsFp ? MOp::LDF : MOp::LD64;
          Reload.Rd = Scratch;
          Reload.Rs1 = reg::SP;
          Reload.Imm = Slot * 8;
          NewInstrs.push_back(CgInstr{Reload, FrameRef::None});
        };

        // Whether Rd is also read (conditional moves keep the old value).
        bool RdIsSource = MI.Op == MOp::CMOV || MI.Op == MOp::FCMOV;
        bool RdIsDest = MI.destReg() >= 0 && MI.destReg() == MI.Rd;

        // Sources: reload spilled ones into scratch registers. If Rd is
        // both source and destination it shares one scratch.
        int32_t RdOrig = MI.Rd;
        int32_t RdScratch = -1;
        int64_t RdSlot = -1;
        bool RdIsFp = false;

        auto RewriteSrc = [&](int32_t &R) {
          if (!isVirtual(R))
            return;
          auto AIt = Assignment.find(R);
          if (AIt != Assignment.end()) {
            R = AIt->second;
            return;
          }
          int64_t Slot = SpillSlotOf.at(R);
          bool IsFp = MF.isVirtualFp(R);
          int32_t Scratch = ScratchFor(IsFp);
          EmitReload(Slot, IsFp, Scratch);
          R = Scratch;
        };
        RewriteSrc(MI.Rs1);
        RewriteSrc(MI.Rs2);

        if (RdIsDest && isVirtual(RdOrig)) {
          auto AIt = Assignment.find(RdOrig);
          if (AIt != Assignment.end()) {
            MI.Rd = AIt->second;
          } else {
            RdSlot = SpillSlotOf.at(RdOrig);
            RdIsFp = MF.isVirtualFp(RdOrig);
            RdScratch = ScratchFor(RdIsFp);
            if (RdIsSource)
              EmitReload(RdSlot, RdIsFp, RdScratch);
            MI.Rd = RdScratch;
          }
        } else if (isVirtual(MI.Rd)) {
          // Rd used purely as a source field (never happens with the
          // current opcode set, but keep the mapping total).
          RewriteSrc(MI.Rd);
        }

        NewInstrs.push_back(CI);
        if (RdScratch >= 0) {
          MachineInstr Store;
          Store.Op = RdIsFp ? MOp::STF : MOp::ST64;
          Store.Rs1 = reg::SP;
          Store.Rs2 = RdScratch;
          Store.Imm = RdSlot * 8;
          NewInstrs.push_back(CgInstr{Store, FrameRef::None});
        }
      }
      BB.Instrs = std::move(NewInstrs);
    }
  }

private:
  MachineFunction &MF;
  RegisterPools Pools;
  std::vector<int64_t> BlockFirst, BlockLast;
  std::vector<int64_t> CallPositions;
  std::vector<std::unordered_set<int32_t>> Use, Def, LiveIn, LiveOut;
  std::vector<Interval> Intervals;
  std::unordered_map<int32_t, int32_t> Assignment;
  std::unordered_map<int32_t, int64_t> SpillSlotOf;
  int64_t NextSpillSlot = 0;
};

} // namespace

void msem::allocateRegisters(MachineFunction &MF,
                             const CodeGenOptions &Options) {
  LinearScan Scan(MF, Options);
  std::set<int32_t> UsedCalleeSaved;
  uint64_t SpillBytes = Scan.run(UsedCalleeSaved);

  // ---- Frame layout -----------------------------------------------------
  // [sp + 0, SpillBytes)                    spill slots
  // [sp + SpillBytes, +AllocaBytes)         alloca area
  // [.., +SaveBytes)                        ra / fp / callee-saved saves
  // [TotalFrame - 8*NumArgs, TotalFrame)    incoming arguments
  bool SaveRa = MF.MakesCalls;
  bool SaveFp = !Options.OmitFramePointer;
  uint64_t SaveBytes =
      8 * (UsedCalleeSaved.size() + (SaveRa ? 1 : 0) + (SaveFp ? 1 : 0));
  uint64_t ArgBytes = 8ull * MF.NumArgs;
  uint64_t TotalFrame =
      (SpillBytes + MF.AllocaBytes + SaveBytes + ArgBytes + 15) & ~15ull;

  // Resolve frame fixups.
  for (MachineBasicBlock &BB : MF.Blocks) {
    for (CgInstr &CI : BB.Instrs) {
      if (CI.Frame == FrameRef::AllocaArea)
        CI.MI.Imm += static_cast<int64_t>(SpillBytes);
      else if (CI.Frame == FrameRef::IncomingArg)
        CI.MI.Imm += static_cast<int64_t>(TotalFrame);
      CI.Frame = FrameRef::None;
    }
  }

  // ---- Prologue -----------------------------------------------------------
  auto MakeI = [](MOp Op, int32_t Rd, int32_t Rs1, int32_t Rs2,
                  int64_t Imm) {
    MachineInstr MI;
    MI.Op = Op;
    MI.Rd = Rd;
    MI.Rs1 = Rs1;
    MI.Rs2 = Rs2;
    MI.Imm = Imm;
    return MI;
  };

  std::vector<CgInstr> Prologue;
  uint64_t SaveBase = SpillBytes + MF.AllocaBytes;
  if (TotalFrame > 0)
    Prologue.push_back(CgInstr{MakeI(MOp::ADDI, reg::SP, reg::SP, -1,
                                     -static_cast<int64_t>(TotalFrame)),
                               FrameRef::None});
  uint64_t SaveOffset = SaveBase;
  std::vector<std::pair<int32_t, uint64_t>> Saves;
  if (SaveRa) {
    Saves.push_back({reg::RA, SaveOffset});
    SaveOffset += 8;
  }
  if (SaveFp) {
    Saves.push_back({reg::FP, SaveOffset});
    SaveOffset += 8;
  }
  for (int32_t R : UsedCalleeSaved) {
    if (R == reg::FP && SaveFp)
      continue; // Already saved.
    Saves.push_back({R, SaveOffset});
    SaveOffset += 8;
  }
  for (auto &[R, Off] : Saves) {
    bool IsFp = R >= reg::FpBase;
    Prologue.push_back(CgInstr{MakeI(IsFp ? MOp::STF : MOp::ST64, -1,
                                     reg::SP, R,
                                     static_cast<int64_t>(Off)),
                               FrameRef::None});
  }
  if (SaveFp)
    Prologue.push_back(CgInstr{MakeI(MOp::ADDI, reg::FP, reg::SP, -1,
                                     static_cast<int64_t>(TotalFrame)),
                               FrameRef::None});

  auto &Entry = MF.Blocks.front().Instrs;
  Entry.insert(Entry.begin(), Prologue.begin(), Prologue.end());

  // ---- Epilogues ------------------------------------------------------------
  for (MachineBasicBlock &BB : MF.Blocks) {
    for (size_t Idx = 0; Idx < BB.Instrs.size(); ++Idx) {
      if (BB.Instrs[Idx].MI.Op != MOp::JR)
        continue;
      std::vector<CgInstr> Epilogue;
      for (auto &[R, Off] : Saves) {
        bool IsFp = R >= reg::FpBase;
        Epilogue.push_back(CgInstr{MakeI(IsFp ? MOp::LDF : MOp::LD64, R,
                                         reg::SP, -1,
                                         static_cast<int64_t>(Off)),
                                   FrameRef::None});
      }
      if (TotalFrame > 0)
        Epilogue.push_back(CgInstr{MakeI(MOp::ADDI, reg::SP, reg::SP, -1,
                                         static_cast<int64_t>(TotalFrame)),
                                   FrameRef::None});
      BB.Instrs.insert(BB.Instrs.begin() + Idx, Epilogue.begin(),
                       Epilogue.end());
      Idx += Epilogue.size();
    }
  }
}
