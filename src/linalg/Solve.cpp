//===- linalg/Solve.cpp - Factorizations and least squares ----------------===//

#include "linalg/Solve.h"

#include <cassert>
#include <cmath>

using namespace msem;

Cholesky::Cholesky(const Matrix &A) {
  assert(A.rows() == A.cols() && "Cholesky requires a square matrix");
  size_t N = A.rows();
  L = Matrix(N, N);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J <= I; ++J) {
      double Sum = A.at(I, J);
      for (size_t K = 0; K < J; ++K)
        Sum -= L.at(I, K) * L.at(J, K);
      if (I == J) {
        if (Sum <= 0.0 || !std::isfinite(Sum))
          return; // Not numerically SPD; Valid stays false.
        L.at(I, I) = std::sqrt(Sum);
      } else {
        L.at(I, J) = Sum / L.at(J, J);
      }
    }
  }
  Valid = true;
}

std::vector<double> Cholesky::solve(const std::vector<double> &B) const {
  assert(Valid && "solve on failed factorization");
  size_t N = L.rows();
  assert(B.size() == N && "rhs length mismatch");
  // Forward substitution L y = b.
  std::vector<double> Y(N);
  for (size_t I = 0; I < N; ++I) {
    double Sum = B[I];
    for (size_t K = 0; K < I; ++K)
      Sum -= L.at(I, K) * Y[K];
    Y[I] = Sum / L.at(I, I);
  }
  // Back substitution L^T x = y.
  std::vector<double> X(N);
  for (size_t I = N; I-- > 0;) {
    double Sum = Y[I];
    for (size_t K = I + 1; K < N; ++K)
      Sum -= L.at(K, I) * X[K];
    X[I] = Sum / L.at(I, I);
  }
  return X;
}

double Cholesky::logDeterminant() const {
  assert(Valid && "logDeterminant on failed factorization");
  double Sum = 0.0;
  for (size_t I = 0; I < L.rows(); ++I)
    Sum += std::log(L.at(I, I));
  return 2.0 * Sum;
}

Matrix Cholesky::inverse() const {
  assert(Valid && "inverse on failed factorization");
  size_t N = L.rows();
  Matrix Inv(N, N);
  std::vector<double> E(N, 0.0);
  for (size_t C = 0; C < N; ++C) {
    E[C] = 1.0;
    std::vector<double> X = solve(E);
    for (size_t R = 0; R < N; ++R)
      Inv.at(R, C) = X[R];
    E[C] = 0.0;
  }
  return Inv;
}

std::vector<double> msem::leastSquaresQR(const Matrix &A,
                                         const std::vector<double> &B) {
  size_t M = A.rows(), N = A.cols();
  assert(B.size() == M && "rhs length mismatch");
  assert(M >= N && "least squares requires rows >= cols");

  // Working copies; R is computed in place in W, Q is applied to Rhs.
  Matrix W = A;
  std::vector<double> Rhs = B;
  std::vector<bool> DeadColumn(N, false);

  for (size_t K = 0; K < N; ++K) {
    // Householder vector for column K below the diagonal.
    double Norm = 0.0;
    for (size_t I = K; I < M; ++I)
      Norm += W.at(I, K) * W.at(I, K);
    Norm = std::sqrt(Norm);
    if (Norm < 1e-12) {
      DeadColumn[K] = true;
      continue;
    }
    double Alpha = W.at(K, K) > 0 ? -Norm : Norm;
    std::vector<double> V(M - K);
    V[0] = W.at(K, K) - Alpha;
    for (size_t I = K + 1; I < M; ++I)
      V[I - K] = W.at(I, K);
    double VNorm2 = 0.0;
    for (double X : V)
      VNorm2 += X * X;
    if (VNorm2 < 1e-24) {
      W.at(K, K) = Alpha;
      continue;
    }
    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and the RHS.
    for (size_t C = K; C < N; ++C) {
      double Dot = 0.0;
      for (size_t I = K; I < M; ++I)
        Dot += V[I - K] * W.at(I, C);
      double Scale = 2.0 * Dot / VNorm2;
      for (size_t I = K; I < M; ++I)
        W.at(I, C) -= Scale * V[I - K];
    }
    double Dot = 0.0;
    for (size_t I = K; I < M; ++I)
      Dot += V[I - K] * Rhs[I];
    double Scale = 2.0 * Dot / VNorm2;
    for (size_t I = K; I < M; ++I)
      Rhs[I] -= Scale * V[I - K];
  }

  // Back substitution on the upper-triangular system, skipping dead columns.
  std::vector<double> X(N, 0.0);
  for (size_t I = N; I-- > 0;) {
    if (DeadColumn[I] || std::fabs(W.at(I, I)) < 1e-12) {
      X[I] = 0.0;
      continue;
    }
    double Sum = Rhs[I];
    for (size_t K = I + 1; K < N; ++K)
      Sum -= W.at(I, K) * X[K];
    X[I] = Sum / W.at(I, I);
  }
  return X;
}

std::vector<double> msem::ridgeLeastSquares(const Matrix &A,
                                            const std::vector<double> &B,
                                            double Lambda) {
  assert(Lambda >= 0.0 && "negative ridge penalty");
  Matrix G = A.gram();
  std::vector<double> Aty = A.transposeMultiplyVector(B);
  double Jitter = Lambda > 0 ? Lambda : 1e-10 * (1.0 + G.maxAbs());
  for (int Attempt = 0; Attempt < 7; ++Attempt) {
    Matrix GJ = G;
    GJ.addToDiagonal(Jitter);
    Cholesky Chol(GJ);
    if (Chol.ok())
      return Chol.solve(Aty);
    Jitter *= 10.0;
  }
  // Pathological conditioning: fall back to QR which zeroes dead columns.
  return leastSquaresQR(A, B);
}
