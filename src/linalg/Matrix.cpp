//===- linalg/Matrix.cpp - Dense row-major matrix --------------------------===//

#include "linalg/Matrix.h"

#include <algorithm>
#include <cmath>

using namespace msem;

Matrix Matrix::fromRows(const std::vector<std::vector<double>> &Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(Rows.size(), Rows[0].size());
  for (size_t R = 0; R < Rows.size(); ++R) {
    assert(Rows[R].size() == M.NumCols && "ragged rows");
    std::copy(Rows[R].begin(), Rows[R].end(), M.rowPtr(R));
  }
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

std::vector<double> Matrix::row(size_t R) const {
  const double *P = rowPtr(R);
  return std::vector<double>(P, P + NumCols);
}

std::vector<double> Matrix::col(size_t C) const {
  assert(C < NumCols && "column out of range");
  std::vector<double> Result(NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    Result[R] = at(R, C);
  return Result;
}

void Matrix::setRow(size_t R, const std::vector<double> &Values) {
  assert(Values.size() == NumCols && "row width mismatch");
  std::copy(Values.begin(), Values.end(), rowPtr(R));
}

void Matrix::appendRow(const std::vector<double> &Values) {
  if (NumRows == 0 && NumCols == 0)
    NumCols = Values.size();
  assert(Values.size() == NumCols && "row width mismatch");
  Data.insert(Data.end(), Values.begin(), Values.end());
  ++NumRows;
}

Matrix Matrix::transposed() const {
  Matrix T(NumCols, NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t C = 0; C < NumCols; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::multiply(const Matrix &Other) const {
  assert(NumCols == Other.NumRows && "inner dimension mismatch");
  Matrix Result(NumRows, Other.NumCols);
  for (size_t R = 0; R < NumRows; ++R) {
    const double *ARow = rowPtr(R);
    double *CRow = Result.rowPtr(R);
    for (size_t K = 0; K < NumCols; ++K) {
      double A = ARow[K];
      if (A == 0.0)
        continue;
      const double *BRow = Other.rowPtr(K);
      for (size_t C = 0; C < Other.NumCols; ++C)
        CRow[C] += A * BRow[C];
    }
  }
  return Result;
}

Matrix Matrix::gram() const {
  Matrix G(NumCols, NumCols);
  for (size_t R = 0; R < NumRows; ++R) {
    const double *Row = rowPtr(R);
    for (size_t I = 0; I < NumCols; ++I) {
      double A = Row[I];
      if (A == 0.0)
        continue;
      double *GRow = G.rowPtr(I);
      for (size_t J = I; J < NumCols; ++J)
        GRow[J] += A * Row[J];
    }
  }
  // Mirror the upper triangle.
  for (size_t I = 0; I < NumCols; ++I)
    for (size_t J = I + 1; J < NumCols; ++J)
      G.at(J, I) = G.at(I, J);
  return G;
}

std::vector<double> Matrix::multiplyVector(const std::vector<double> &V) const {
  assert(V.size() == NumCols && "vector length mismatch");
  std::vector<double> Result(NumRows, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    const double *Row = rowPtr(R);
    double Sum = 0.0;
    for (size_t C = 0; C < NumCols; ++C)
      Sum += Row[C] * V[C];
    Result[R] = Sum;
  }
  return Result;
}

std::vector<double>
Matrix::transposeMultiplyVector(const std::vector<double> &V) const {
  assert(V.size() == NumRows && "vector length mismatch");
  std::vector<double> Result(NumCols, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    const double *Row = rowPtr(R);
    double Scale = V[R];
    if (Scale == 0.0)
      continue;
    for (size_t C = 0; C < NumCols; ++C)
      Result[C] += Scale * Row[C];
  }
  return Result;
}

void Matrix::addToDiagonal(double Lambda) {
  size_t N = std::min(NumRows, NumCols);
  for (size_t I = 0; I < N; ++I)
    at(I, I) += Lambda;
}

double Matrix::maxAbs() const {
  double M = 0.0;
  for (double X : Data)
    M = std::max(M, std::fabs(X));
  return M;
}

double msem::dotProduct(const std::vector<double> &A,
                        const std::vector<double> &B) {
  assert(A.size() == B.size() && "dot product length mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    Sum += A[I] * B[I];
  return Sum;
}
