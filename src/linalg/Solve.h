//===- linalg/Solve.h - Factorizations and least squares --------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cholesky factorization for symmetric positive definite systems,
/// Householder QR least squares, log-determinants and explicit inverses.
/// These back every model fit (Equation 3 of the paper) and the D-optimal
/// design search (det(X'X) maximization).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_LINALG_SOLVE_H
#define MSEM_LINALG_SOLVE_H

#include "linalg/Matrix.h"

#include <vector>

namespace msem {

/// Cholesky factorization A = L L^T of a symmetric positive definite matrix.
///
/// Construction reports failure (via ok()) instead of asserting so that
/// callers probing near-singular information matrices can back off or add
/// ridge jitter.
class Cholesky {
public:
  /// Factorizes \p A (must be square and symmetric).
  explicit Cholesky(const Matrix &A);

  /// True if the factorization succeeded (matrix was numerically SPD).
  bool ok() const { return Valid; }

  /// Solves A x = b. Requires ok().
  std::vector<double> solve(const std::vector<double> &B) const;

  /// log(det(A)) = 2 * sum(log(L_ii)). Requires ok().
  double logDeterminant() const;

  /// Explicit inverse of A. Requires ok(). O(n^3); used to seed the
  /// Fedorov-exchange dispersion matrix which is then updated incrementally.
  Matrix inverse() const;

private:
  Matrix L;
  bool Valid = false;
};

/// Solves the linear least squares problem min ||A x - b||_2 by Householder
/// QR with column norm checks. Rank-deficient columns get zero coefficients.
std::vector<double> leastSquaresQR(const Matrix &A,
                                   const std::vector<double> &B);

/// Ridge least squares: solves (A'A + Lambda I) x = A'b via Cholesky.
/// Falls back to increasing Lambda (up to 1e6x) if the system is not SPD.
std::vector<double> ridgeLeastSquares(const Matrix &A,
                                      const std::vector<double> &B,
                                      double Lambda);

} // namespace msem

#endif // MSEM_LINALG_SOLVE_H
