//===- linalg/Matrix.h - Dense row-major matrix -----------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense row-major matrix of doubles with the operations the
/// empirical-modeling stack needs: products, transposes, Gram matrices and
/// row extraction. Deliberately minimal; factorizations live in Solve.h.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_LINALG_MATRIX_H
#define MSEM_LINALG_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace msem {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// Creates a Rows x Cols matrix filled with \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  /// Creates a matrix from rows; all rows must have equal length.
  static Matrix fromRows(const std::vector<std::vector<double>> &Rows);

  /// Identity matrix of order \p N.
  static Matrix identity(size_t N);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  bool empty() const { return Data.empty(); }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Pointer to the start of row \p R.
  double *rowPtr(size_t R) {
    assert(R < NumRows && "row out of range");
    return Data.data() + R * NumCols;
  }
  const double *rowPtr(size_t R) const {
    assert(R < NumRows && "row out of range");
    return Data.data() + R * NumCols;
  }

  /// Copies row \p R into a vector.
  std::vector<double> row(size_t R) const;

  /// Copies column \p C into a vector.
  std::vector<double> col(size_t C) const;

  /// Overwrites row \p R with \p Values (size must equal cols()).
  void setRow(size_t R, const std::vector<double> &Values);

  /// Appends a row (matrix must be empty or have matching width).
  void appendRow(const std::vector<double> &Values);

  Matrix transposed() const;

  /// this * Other. Column count must match Other's row count.
  Matrix multiply(const Matrix &Other) const;

  /// this^T * this: the (symmetric) Gram / information matrix.
  Matrix gram() const;

  /// Matrix-vector product; V.size() must equal cols().
  std::vector<double> multiplyVector(const std::vector<double> &V) const;

  /// this^T * V; V.size() must equal rows().
  std::vector<double> transposeMultiplyVector(
      const std::vector<double> &V) const;

  /// Adds Lambda to every diagonal entry (ridge regularization).
  void addToDiagonal(double Lambda);

  /// Maximum absolute entry; 0 for an empty matrix.
  double maxAbs() const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Dot product of equal-length vectors.
double dotProduct(const std::vector<double> &A, const std::vector<double> &B);

} // namespace msem

#endif // MSEM_LINALG_MATRIX_H
