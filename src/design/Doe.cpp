//===- design/Doe.cpp - Design of experiments -----------------------------------===//

#include "design/Doe.h"

#include "linalg/Solve.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace msem;

size_t msem::expansionColumns(ExpansionKind Kind, size_t K) {
  if (Kind == ExpansionKind::Linear)
    return 1 + K;
  return 1 + K + K * (K - 1) / 2;
}

std::vector<double> msem::expandRow(ExpansionKind Kind,
                                    const std::vector<double> &Encoded) {
  size_t K = Encoded.size();
  std::vector<double> Row;
  Row.reserve(expansionColumns(Kind, K));
  Row.push_back(1.0);
  for (double X : Encoded)
    Row.push_back(X);
  if (Kind == ExpansionKind::LinearWith2FI)
    for (size_t I = 0; I < K; ++I)
      for (size_t J = I + 1; J < K; ++J)
        Row.push_back(Encoded[I] * Encoded[J]);
  return Row;
}

Matrix msem::expandMatrix(ExpansionKind Kind, const ParameterSpace &Space,
                          const std::vector<DesignPoint> &Points) {
  Matrix M(Points.size(), expansionColumns(Kind, Space.size()));
  for (size_t I = 0; I < Points.size(); ++I)
    M.setRow(I, expandRow(Kind, Space.encode(Points[I])));
  return M;
}

Matrix msem::encodeMatrix(const ParameterSpace &Space,
                          const std::vector<DesignPoint> &Points) {
  Matrix M(Points.size(), Space.size());
  for (size_t I = 0; I < Points.size(); ++I)
    M.setRow(I, Space.encode(Points[I]));
  return M;
}

std::vector<DesignPoint>
msem::generateRandomCandidates(const ParameterSpace &Space, size_t N,
                               Rng &R) {
  std::vector<DesignPoint> Points;
  Points.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Points.push_back(Space.randomPoint(R));
  return Points;
}

std::vector<DesignPoint>
msem::generateLatinHypercube(const ParameterSpace &Space, size_t N,
                             Rng &R) {
  std::vector<DesignPoint> Points(N, DesignPoint(Space.size()));
  for (size_t P = 0; P < Space.size(); ++P) {
    const Parameter &Param = Space.param(P);
    // Stratify: assign level indices in round-robin proportion, shuffle.
    std::vector<size_t> LevelOf(N);
    for (size_t I = 0; I < N; ++I)
      LevelOf[I] = (I * Param.numLevels()) / N;
    R.shuffle(LevelOf);
    for (size_t I = 0; I < N; ++I)
      Points[I][P] = Param.Levels[LevelOf[I]];
  }
  return Points;
}

namespace {

/// Sherman-Morrison helper: updates Minv for M' = M + Sign * x x^T.
/// Returns false (leaving Minv untouched) when the update is singular.
bool rankOneUpdate(Matrix &Minv, const std::vector<double> &X,
                   double Sign) {
  std::vector<double> Mx = Minv.multiplyVector(X);
  double Denom = 1.0 + Sign * dotProduct(X, Mx);
  if (Denom <= 1e-12 && Sign < 0)
    return false; // Removal would make the matrix singular.
  if (std::fabs(Denom) < 1e-14)
    return false;
  double Scale = Sign / Denom;
  size_t P = Minv.rows();
  for (size_t I = 0; I < P; ++I) {
    double Mi = Mx[I];
    if (Mi == 0.0)
      continue;
    double *Row = Minv.rowPtr(I);
    for (size_t J = 0; J < P; ++J)
      Row[J] -= Scale * Mi * Mx[J];
  }
  return true;
}

/// Prediction variance d(x) = x^T Minv x.
double dispersion(const Matrix &Minv, const std::vector<double> &X) {
  return dotProduct(X, Minv.multiplyVector(X));
}

} // namespace

DOptimalResult
msem::selectDOptimal(const ParameterSpace &Space,
                     const std::vector<DesignPoint> &Candidates,
                     const DOptimalOptions &Options,
                     const std::vector<size_t> &Preselected) {
  telemetry::ScopedTimer Span("doe.select");
  assert(Options.DesignSize >= Preselected.size() &&
         "design smaller than the preselected set");
  assert(Candidates.size() >= Options.DesignSize &&
         "not enough candidates");

  // Expand all candidates once.
  std::vector<std::vector<double>> Rows(Candidates.size());
  for (size_t I = 0; I < Candidates.size(); ++I)
    Rows[I] = expandRow(Options.Expansion, Space.encode(Candidates[I]));
  const size_t P = Rows.empty() ? 0 : Rows[0].size();

  Rng R(Options.Seed);
  std::vector<size_t> Selected = Preselected;
  std::vector<bool> InDesign(Candidates.size(), false);
  for (size_t I : Preselected)
    InDesign[I] = true;
  // Random initial completion.
  std::vector<size_t> Pool;
  for (size_t I = 0; I < Candidates.size(); ++I)
    if (!InDesign[I])
      Pool.push_back(I);
  R.shuffle(Pool);
  for (size_t I = 0; Selected.size() < Options.DesignSize; ++I) {
    Selected.push_back(Pool[I]);
    InDesign[Pool[I]] = true;
  }

  // Information matrix and its inverse (ridge-regularized).
  auto BuildInverse = [&](const std::vector<size_t> &Sel) {
    Matrix Info(P, P);
    Info.addToDiagonal(Options.Ridge);
    for (size_t Idx : Sel) {
      const std::vector<double> &X = Rows[Idx];
      for (size_t I = 0; I < P; ++I) {
        double Xi = X[I];
        if (Xi == 0.0)
          continue;
        double *Row = Info.rowPtr(I);
        for (size_t J = 0; J < P; ++J)
          Row[J] += Xi * X[J];
      }
    }
    return Info;
  };

  Matrix Info = BuildInverse(Selected);
  Cholesky Chol(Info);
  assert(Chol.ok() && "ridge failed to regularize the information matrix");
  Matrix Minv = Chol.inverse();

  DOptimalResult Result;
  const size_t FixedCount = Preselected.size();

  // Per-candidate exchange deltas, recomputed for every slot scan. The
  // scoring fans across the thread pool (each candidate's delta is an
  // independent O(P^2) dispersion computation against the read-only Minv);
  // the argmax reduction stays sequential in candidate order, so the
  // selected exchange is bitwise identical to a single-threaded scan.
  std::vector<double> Delta(Candidates.size());

  for (int Pass = 0; Pass < Options.MaxPasses; ++Pass) {
    bool Improved = false;
    // Simple exchange: remove the lowest-leverage free design point and add
    // the highest-variance candidate, when the swap increases det.
    for (size_t SlotIdx = FixedCount; SlotIdx < Selected.size(); ++SlotIdx) {
      size_t Out = Selected[SlotIdx];
      std::vector<double> MxOut = Minv.multiplyVector(Rows[Out]);
      double DOut = dotProduct(Rows[Out], MxOut);
      globalThreadPool().parallelFor(
          0, Candidates.size(),
          [&](size_t Cand) {
            if (InDesign[Cand]) {
              Delta[Cand] = -1e300;
              return;
            }
            double DIn = dispersion(Minv, Rows[Cand]);
            // Fedorov delta for swapping Out -> Cand.
            double Cross = dotProduct(Rows[Cand], MxOut);
            Delta[Cand] = DIn - (DIn * DOut - Cross * Cross) - DOut;
          },
          "doe");
      // Best incoming candidate by the Fedorov exchange criterion.
      size_t BestIn = SIZE_MAX;
      double BestGain = 1e-9;
      for (size_t Cand = 0; Cand < Candidates.size(); ++Cand) {
        if (InDesign[Cand])
          continue;
        if (Delta[Cand] > BestGain) {
          BestGain = Delta[Cand];
          BestIn = Cand;
        }
      }
      if (BestIn == SIZE_MAX)
        continue;
      // Apply the swap: add BestIn, remove Out (SM updates).
      Matrix Backup = Minv;
      if (!rankOneUpdate(Minv, Rows[BestIn], +1.0) ||
          !rankOneUpdate(Minv, Rows[Out], -1.0)) {
        Minv = Backup;
        continue;
      }
      InDesign[Out] = false;
      InDesign[BestIn] = true;
      Selected[SlotIdx] = BestIn;
      Improved = true;
      telemetry::count("doe.exchanges");
    }
    Result.PassesUsed = Pass + 1;
    if (!Improved)
      break;
  }
  telemetry::count("doe.selections");
  telemetry::count("doe.passes", Result.PassesUsed);

  // Final log-determinant (recomputed exactly).
  Matrix FinalInfo = BuildInverse(Selected);
  Cholesky FinalChol(FinalInfo);
  Result.LogDetInformation =
      FinalChol.ok() ? FinalChol.logDeterminant() : -1e300;
  telemetry::gaugeSet("doe.logdet.last", Result.LogDetInformation);
  Result.Selected = std::move(Selected);
  return Result;
}
