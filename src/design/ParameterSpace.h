//===- design/ParameterSpace.h - Predictor variables and domain --*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predictor variables of the paper's Tables 1 and 2: 14 compiler
/// flags/heuristics and 11 microarchitectural parameters, with the same
/// ranges and level counts. Parameters marked log-scale in the paper
/// (cache/table sizes) are log2-transformed before the linear mapping onto
/// [-1, 1] used by all models ("All compiler parameters are linearly
/// transformed to a scale -1 to 1 for modeling").
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_DESIGN_PARAMETERSPACE_H
#define MSEM_DESIGN_PARAMETERSPACE_H

#include "opt/OptimizationConfig.h"
#include "uarch/MachineConfig.h"

#include <cstdint>
#include <string>
#include <vector>

namespace msem {

class Rng;

/// How a parameter's raw values map onto the modeling scale.
enum class ParamKind : uint8_t {
  Binary,      ///< Two levels, 0/1 (categorical).
  Discrete,    ///< Evenly spaced integer levels, linear transform.
  LogDiscrete, ///< Power-of-two-ish levels, log2 transform (Table 2 "*").
};

/// One predictor variable.
struct Parameter {
  std::string Name;
  ParamKind Kind = ParamKind::Discrete;
  std::vector<int64_t> Levels; ///< Raw values, ascending.

  size_t numLevels() const { return Levels.size(); }
  int64_t low() const { return Levels.front(); }
  int64_t high() const { return Levels.back(); }

  /// Maps a raw value onto [-1, 1].
  double encode(int64_t Raw) const;
  /// Maps an encoded value back to the nearest raw level.
  int64_t decode(double Encoded) const;
  /// Index of the level nearest to \p Raw.
  size_t nearestLevel(int64_t Raw) const;
};

/// An assignment of raw values to every parameter (one per Levels entry).
using DesignPoint = std::vector<int64_t>;

/// The joint compiler x microarchitecture design space.
class ParameterSpace {
public:
  /// The paper's full 25-parameter space (Table 1 then Table 2).
  static ParameterSpace paperSpace();
  /// Only the 14 compiler parameters (Table 1).
  static ParameterSpace compilerSpace();
  /// The 29-parameter extension: Table 1 plus the Section 2.2
  /// trace-formation knobs (if-conversion and tail duplication, each a
  /// flag and a budget heuristic), then Table 2. Demonstrates that the
  /// methodology scales beyond the paper's selection ("this selection ...
  /// is by no means exhaustive").
  static ParameterSpace extendedSpace();

  /// Reconstructs a space from an explicit parameter list -- the
  /// model-artifact load path: artifacts embed their full predictor-space
  /// description, so a serving process can encode requests without
  /// knowing which named space the model was trained on.
  static ParameterSpace fromParams(std::vector<Parameter> Params,
                                   size_t CompilerParams);

  size_t size() const { return Params.size(); }
  const Parameter &param(size_t I) const { return Params[I]; }
  const std::vector<Parameter> &params() const { return Params; }

  /// Index of the parameter named \p Name; asserts if absent.
  size_t indexOf(const std::string &Name) const;

  /// Number of compiler parameters leading the space (14 for paperSpace,
  /// all for compilerSpace).
  size_t numCompilerParams() const { return CompilerParams; }

  /// Encodes a point onto [-1, 1]^k.
  std::vector<double> encode(const DesignPoint &Point) const;
  /// Decodes per-dimension values back to the nearest levels.
  DesignPoint decode(const std::vector<double> &Encoded) const;

  /// Uniformly random point (independent uniform level per parameter).
  DesignPoint randomPoint(Rng &R) const;

  // --- Bridges to the measurement substrate -------------------------------
  /// Interprets the first 14 coordinates as Table 1 settings.
  OptimizationConfig toOptimizationConfig(const DesignPoint &Point) const;
  /// Interprets coordinates 14..24 as Table 2 settings (paperSpace only).
  MachineConfig toMachineConfig(const DesignPoint &Point) const;
  /// Builds a full point from explicit configs (paperSpace only).
  DesignPoint fromConfigs(const OptimizationConfig &Opt,
                          const MachineConfig &Machine) const;
  /// Overwrites the microarchitectural coordinates of \p Point.
  void freezeMachine(DesignPoint &Point, const MachineConfig &M) const;

private:
  /// Appends the Table 2 microarchitectural parameters to \p S.
  static void appendMachineParams(ParameterSpace &S);

  std::vector<Parameter> Params;
  size_t CompilerParams = 0;
};

} // namespace msem

#endif // MSEM_DESIGN_PARAMETERSPACE_H
