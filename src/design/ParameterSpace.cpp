//===- design/ParameterSpace.cpp - Predictor variables and domain --------------===//

#include "design/ParameterSpace.h"

#include "support/Error.h"
#include "support/Rng.h"

#include <algorithm>
#include <cmath>

using namespace msem;

namespace {

double rawToAxis(const Parameter &P, int64_t Raw) {
  if (P.Kind == ParamKind::LogDiscrete)
    return std::log2(static_cast<double>(Raw));
  return static_cast<double>(Raw);
}

Parameter makeBinary(const std::string &Name) {
  return Parameter{Name, ParamKind::Binary, {0, 1}};
}

Parameter makeRange(const std::string &Name, int64_t Low, int64_t High,
                    int64_t Step) {
  Parameter P{Name, ParamKind::Discrete, {}};
  for (int64_t V = Low; V <= High; V += Step)
    P.Levels.push_back(V);
  return P;
}

Parameter makePow2(const std::string &Name, int64_t Low, int64_t High) {
  Parameter P{Name, ParamKind::LogDiscrete, {}};
  for (int64_t V = Low; V <= High; V *= 2)
    P.Levels.push_back(V);
  return P;
}

} // namespace

double Parameter::encode(int64_t Raw) const {
  double Lo = rawToAxis(*this, low());
  double Hi = rawToAxis(*this, high());
  if (Hi == Lo)
    return 0.0;
  return -1.0 + 2.0 * (rawToAxis(*this, Raw) - Lo) / (Hi - Lo);
}

size_t Parameter::nearestLevel(int64_t Raw) const {
  size_t Best = 0;
  double BestDist = 1e300;
  double Axis = rawToAxis(*this, Raw);
  for (size_t I = 0; I < Levels.size(); ++I) {
    double D = std::fabs(rawToAxis(*this, Levels[I]) - Axis);
    if (D < BestDist) {
      BestDist = D;
      Best = I;
    }
  }
  return Best;
}

int64_t Parameter::decode(double Encoded) const {
  double Lo = rawToAxis(*this, low());
  double Hi = rawToAxis(*this, high());
  double Axis = Lo + (Encoded + 1.0) / 2.0 * (Hi - Lo);
  size_t Best = 0;
  double BestDist = 1e300;
  for (size_t I = 0; I < Levels.size(); ++I) {
    double D = std::fabs(rawToAxis(*this, Levels[I]) - Axis);
    if (D < BestDist) {
      BestDist = D;
      Best = I;
    }
  }
  return Levels[Best];
}

ParameterSpace ParameterSpace::compilerSpace() {
  ParameterSpace S;
  // Table 1, in order.
  S.Params.push_back(makeBinary("finline-functions"));       // #1
  S.Params.push_back(makeBinary("funroll-loops"));           // #2
  S.Params.push_back(makeBinary("fschedule-insns2"));        // #3
  S.Params.push_back(makeBinary("floop-optimize"));          // #4
  S.Params.push_back(makeBinary("fgcse"));                   // #5
  S.Params.push_back(makeBinary("fstrength-reduce"));        // #6
  S.Params.push_back(makeBinary("fomit-frame-pointer"));     // #7
  S.Params.push_back(makeBinary("freorder-blocks"));         // #8
  S.Params.push_back(makeBinary("fprefetch-loop-arrays"));   // #9
  S.Params.push_back(makeRange("max-inline-insns-auto", 50, 150, 10));
  S.Params.push_back(makeRange("inline-unit-growth", 25, 75, 5));
  S.Params.push_back(makeRange("inline-call-cost", 12, 20, 1));
  S.Params.push_back(makeRange("max-unroll-times", 4, 12, 1));
  S.Params.push_back(makeRange("max-unrolled-insns", 100, 300, 10));
  S.CompilerParams = S.Params.size();
  return S;
}

ParameterSpace ParameterSpace::paperSpace() {
  ParameterSpace S = compilerSpace();
  appendMachineParams(S);
  return S;
}

ParameterSpace ParameterSpace::fromParams(std::vector<Parameter> Params,
                                          size_t CompilerParams) {
  ParameterSpace S;
  S.Params = std::move(Params);
  S.CompilerParams = std::min(CompilerParams, S.Params.size());
  return S;
}

ParameterSpace ParameterSpace::extendedSpace() {
  ParameterSpace S = compilerSpace();
  S.Params.push_back(makeBinary("fif-convert"));
  S.Params.push_back(makeRange("max-ifcvt-insns", 2, 12, 2));
  S.Params.push_back(makeBinary("ftracer"));
  S.Params.push_back(makeRange("tail-dup-insns", 2, 16, 2));
  S.CompilerParams = S.Params.size();
  appendMachineParams(S);
  return S;
}

void ParameterSpace::appendMachineParams(ParameterSpace &S) {
  // Table 2, in order (parameters 15-25 of the paper space).
  Parameter IssueWidth{"issue-width", ParamKind::Discrete, {2, 4}};
  S.Params.push_back(IssueWidth);
  S.Params.push_back(makePow2("bpred-size", 512, 8192));
  S.Params.push_back(makePow2("ruu-size", 16, 128));
  S.Params.push_back(makePow2("il1-size", 8 * 1024, 128 * 1024));
  S.Params.push_back(makePow2("dl1-size", 8 * 1024, 128 * 1024));
  S.Params.push_back(Parameter{"dl1-assoc", ParamKind::Discrete, {1, 2}});
  S.Params.push_back(makeRange("dl1-latency", 1, 3, 1));
  S.Params.push_back(makePow2("ul2-size", 256 * 1024, 8 * 1024 * 1024));
  S.Params.push_back(makePow2("ul2-assoc", 1, 8));
  S.Params.push_back(makeRange("ul2-latency", 6, 16, 1));
  S.Params.push_back(makeRange("memory-latency", 50, 150, 5));
}

size_t ParameterSpace::indexOf(const std::string &Name) const {
  for (size_t I = 0; I < Params.size(); ++I)
    if (Params[I].Name == Name)
      return I;
  fatalError("unknown parameter: " + Name);
}

std::vector<double> ParameterSpace::encode(const DesignPoint &Point) const {
  assert(Point.size() == Params.size() && "point arity mismatch");
  std::vector<double> E(Point.size());
  for (size_t I = 0; I < Point.size(); ++I)
    E[I] = Params[I].encode(Point[I]);
  return E;
}

DesignPoint
ParameterSpace::decode(const std::vector<double> &Encoded) const {
  assert(Encoded.size() == Params.size() && "point arity mismatch");
  DesignPoint P(Encoded.size());
  for (size_t I = 0; I < Encoded.size(); ++I)
    P[I] = Params[I].decode(Encoded[I]);
  return P;
}

DesignPoint ParameterSpace::randomPoint(Rng &R) const {
  DesignPoint P(Params.size());
  for (size_t I = 0; I < Params.size(); ++I)
    P[I] = Params[I].Levels[R.nextBelow(Params[I].numLevels())];
  return P;
}

OptimizationConfig
ParameterSpace::toOptimizationConfig(const DesignPoint &Point) const {
  assert(CompilerParams >= 14 && "space lacks the compiler parameters");
  OptimizationConfig C;
  C.InlineFunctions = Point[0] != 0;
  C.UnrollLoops = Point[1] != 0;
  C.ScheduleInsns2 = Point[2] != 0;
  C.LoopOptimize = Point[3] != 0;
  C.Gcse = Point[4] != 0;
  C.StrengthReduce = Point[5] != 0;
  C.OmitFramePointer = Point[6] != 0;
  C.ReorderBlocks = Point[7] != 0;
  C.PrefetchLoopArrays = Point[8] != 0;
  C.MaxInlineInsnsAuto = static_cast<int>(Point[9]);
  C.InlineUnitGrowth = static_cast<int>(Point[10]);
  C.InlineCallCost = static_cast<int>(Point[11]);
  C.MaxUnrollTimes = static_cast<int>(Point[12]);
  C.MaxUnrolledInsns = static_cast<int>(Point[13]);
  if (CompilerParams >= 18) {
    // Extended space: Section 2.2 trace-formation knobs.
    C.IfConvert = Point[14] != 0;
    C.MaxIfConvertInsns = static_cast<int>(Point[15]);
    C.Tracer = Point[16] != 0;
    C.TailDupInsns = static_cast<int>(Point[17]);
  }
  return C;
}

MachineConfig
ParameterSpace::toMachineConfig(const DesignPoint &Point) const {
  assert(Params.size() >= CompilerParams + 11 &&
         "space lacks the machine parameters");
  const size_t B = CompilerParams; // Machine parameters follow.
  MachineConfig M;
  M.IssueWidth = static_cast<unsigned>(Point[B + 0]);
  M.BranchPredictorSize = static_cast<unsigned>(Point[B + 1]);
  M.RuuSize = static_cast<unsigned>(Point[B + 2]);
  M.IcacheBytes = static_cast<unsigned>(Point[B + 3]);
  M.DcacheBytes = static_cast<unsigned>(Point[B + 4]);
  M.DcacheAssoc = static_cast<unsigned>(Point[B + 5]);
  M.DcacheLatency = static_cast<unsigned>(Point[B + 6]);
  M.L2Bytes = static_cast<unsigned>(Point[B + 7]);
  M.L2Assoc = static_cast<unsigned>(Point[B + 8]);
  M.L2Latency = static_cast<unsigned>(Point[B + 9]);
  M.MemoryLatency = static_cast<unsigned>(Point[B + 10]);
  return M;
}

DesignPoint
ParameterSpace::fromConfigs(const OptimizationConfig &Opt,
                            const MachineConfig &Machine) const {
  assert(Params.size() >= CompilerParams + 11 &&
         "space lacks the machine parameters");
  DesignPoint P(Params.size());
  P[0] = Opt.InlineFunctions;
  P[1] = Opt.UnrollLoops;
  P[2] = Opt.ScheduleInsns2;
  P[3] = Opt.LoopOptimize;
  P[4] = Opt.Gcse;
  P[5] = Opt.StrengthReduce;
  P[6] = Opt.OmitFramePointer;
  P[7] = Opt.ReorderBlocks;
  P[8] = Opt.PrefetchLoopArrays;
  P[9] = Opt.MaxInlineInsnsAuto;
  P[10] = Opt.InlineUnitGrowth;
  P[11] = Opt.InlineCallCost;
  P[12] = Opt.MaxUnrollTimes;
  P[13] = Opt.MaxUnrolledInsns;
  if (CompilerParams >= 18) {
    P[14] = Opt.IfConvert;
    P[15] = Opt.MaxIfConvertInsns;
    P[16] = Opt.Tracer;
    P[17] = Opt.TailDupInsns;
  }
  freezeMachine(P, Machine);
  return P;
}

void ParameterSpace::freezeMachine(DesignPoint &Point,
                                   const MachineConfig &M) const {
  assert(Params.size() >= CompilerParams + 11 &&
         "space lacks the machine parameters");
  const size_t B = CompilerParams;
  Point[B + 0] = M.IssueWidth;
  Point[B + 1] = M.BranchPredictorSize;
  Point[B + 2] = M.RuuSize;
  Point[B + 3] = M.IcacheBytes;
  Point[B + 4] = M.DcacheBytes;
  Point[B + 5] = M.DcacheAssoc;
  Point[B + 6] = M.DcacheLatency;
  Point[B + 7] = M.L2Bytes;
  Point[B + 8] = M.L2Assoc;
  Point[B + 9] = M.L2Latency;
  Point[B + 10] = M.MemoryLatency;
}
