//===- design/Doe.h - Design of experiments -----------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experimental-design machinery (Section 3 of the paper): candidate-set
/// generation (uniform random and Latin hypercube), model-matrix expansion
/// (linear or linear + two-factor interactions) and D-optimal subset
/// selection by Fedorov-style exchange maximizing det(X'X), with
/// Sherman-Morrison rank-one updates of the dispersion matrix. Designs are
/// extensible: an existing design can be augmented with additional points,
/// as the paper's iterative loop (Figure 1) requires.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_DESIGN_DOE_H
#define MSEM_DESIGN_DOE_H

#include "design/ParameterSpace.h"
#include "linalg/Matrix.h"
#include "support/Rng.h"

namespace msem {

/// Model-matrix expansion applied to encoded points.
enum class ExpansionKind {
  Linear,        ///< [1, x1..xk]
  LinearWith2FI, ///< [1, x1..xk, x1x2, x1x3, ..., x_{k-1}x_k]
};

/// Number of columns the expansion produces for k predictors.
size_t expansionColumns(ExpansionKind Kind, size_t K);

/// Expands one encoded point.
std::vector<double> expandRow(ExpansionKind Kind,
                              const std::vector<double> &Encoded);

/// Expands a whole set of points into a model matrix.
Matrix expandMatrix(ExpansionKind Kind, const ParameterSpace &Space,
                    const std::vector<DesignPoint> &Points);

/// Encodes points into a plain (n x k) matrix without expansion.
Matrix encodeMatrix(const ParameterSpace &Space,
                    const std::vector<DesignPoint> &Points);

/// N independent uniform points.
std::vector<DesignPoint> generateRandomCandidates(const ParameterSpace &Space,
                                                  size_t N, Rng &R);

/// Latin hypercube sample: every parameter's levels are covered in
/// (approximately) equal proportions, independently shuffled per dimension.
std::vector<DesignPoint> generateLatinHypercube(const ParameterSpace &Space,
                                                size_t N, Rng &R);

/// Options for D-optimal selection.
struct DOptimalOptions {
  size_t DesignSize = 100;
  ExpansionKind Expansion = ExpansionKind::Linear;
  int MaxPasses = 20;       ///< Exchange passes over the design.
  double Ridge = 1e-6;      ///< Regularizer keeping X'X invertible.
  uint64_t Seed = 0xD0E0001;
};

/// Result of a D-optimal search.
struct DOptimalResult {
  std::vector<size_t> Selected; ///< Indices into the candidate set.
  double LogDetInformation = 0; ///< log det(X'X + ridge I) achieved.
  int PassesUsed = 0;
};

/// Selects Options.DesignSize candidate indices approximately maximizing
/// det(X'X). \p Preselected indices (an existing design being augmented)
/// are always kept and never exchanged.
DOptimalResult selectDOptimal(const ParameterSpace &Space,
                              const std::vector<DesignPoint> &Candidates,
                              const DOptimalOptions &Options,
                              const std::vector<size_t> &Preselected = {});

} // namespace msem

#endif // MSEM_DESIGN_DOE_H
