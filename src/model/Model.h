//===- model/Model.h - Empirical model interface -------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the three empirical modeling techniques the
/// paper evaluates (Section 4): linear regression, MARS and RBF networks.
/// Models consume the *encoded* design matrix (rows in [-1, 1]^k) and the
/// response vector (execution time in cycles).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_MODEL_MODEL_H
#define MSEM_MODEL_MODEL_H

#include "linalg/Matrix.h"
#include "support/Json.h"

#include <memory>
#include <string>
#include <vector>

namespace msem {

/// Abstract empirical model y = f(x) + eps.
class Model {
public:
  virtual ~Model();

  /// Fits the model; X is n x k (encoded), Y has n entries.
  virtual void train(const Matrix &X, const std::vector<double> &Y) = 0;

  /// Predicts the response at one encoded point. Implementations must be
  /// pure readers of the fitted state: the GA and the parallel fitting
  /// engine call predict concurrently from pool workers.
  virtual double predict(const std::vector<double> &XEnc) const = 0;

  /// Human-readable technique name ("linear", "mars", "rbf").
  virtual std::string name() const = 0;

  /// Serializes the fitted state -- options included -- into \p Out as a
  /// JSON object tagged with a "kind" discriminator understood by
  /// fromJson. Doubles are written in the DOM's bitwise round-trip form,
  /// so a saved-then-loaded model predicts bit-identically to the
  /// original at every input.
  virtual void save(Json &Out) const = 0;

  /// Restores the state written by save. Returns false with a structured
  /// diagnostic in \p Error (kind mismatch, arity mismatch, truncated
  /// document); the model is unusable after a failed load.
  virtual bool load(const Json &In, std::string *Error) = 0;

  /// Constructs and loads the model serialized in \p In, dispatching on
  /// its "kind" tag ("linear", "mars", "rbf", "tree", "log"). Returns
  /// null with a diagnostic on an unknown kind or a failed load.
  static std::unique_ptr<Model> fromJson(const Json &In,
                                         std::string *Error = nullptr);

  /// Convenience: predicts every row of \p X.
  std::vector<double> predictAll(const Matrix &X) const;
};

/// Shared helper for Model::load implementations: verifies the document's
/// "kind" tag. Returns false with a diagnostic on mismatch.
bool checkModelKind(const Json &In, const std::string &Expected,
                    std::string *Error);

/// Bayesian Information Criterion as defined in the paper (Equation 9):
/// BIC = (p + (ln(p) - 1) * gamma) / (p * (p - gamma)) * SSE, where p is
/// the sample count and gamma the number of model parameters.
double bicScore(double SSE, size_t SampleCount, size_t ParamCount);

/// Generalized cross validation: GCV = SSE/n / (1 - C/n)^2 with effective
/// parameter count C.
double gcvScore(double SSE, size_t SampleCount, double EffectiveParams);

} // namespace msem

#endif // MSEM_MODEL_MODEL_H
