//===- model/Model.h - Empirical model interface -------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the three empirical modeling techniques the
/// paper evaluates (Section 4): linear regression, MARS and RBF networks.
/// Models consume the *encoded* design matrix (rows in [-1, 1]^k) and the
/// response vector (execution time in cycles).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_MODEL_MODEL_H
#define MSEM_MODEL_MODEL_H

#include "linalg/Matrix.h"

#include <memory>
#include <string>
#include <vector>

namespace msem {

/// Abstract empirical model y = f(x) + eps.
class Model {
public:
  virtual ~Model();

  /// Fits the model; X is n x k (encoded), Y has n entries.
  virtual void train(const Matrix &X, const std::vector<double> &Y) = 0;

  /// Predicts the response at one encoded point. Implementations must be
  /// pure readers of the fitted state: the GA and the parallel fitting
  /// engine call predict concurrently from pool workers.
  virtual double predict(const std::vector<double> &XEnc) const = 0;

  /// Human-readable technique name ("linear", "mars", "rbf").
  virtual std::string name() const = 0;

  /// Convenience: predicts every row of \p X.
  std::vector<double> predictAll(const Matrix &X) const;
};

/// Bayesian Information Criterion as defined in the paper (Equation 9):
/// BIC = (p + (ln(p) - 1) * gamma) / (p * (p - gamma)) * SSE, where p is
/// the sample count and gamma the number of model parameters.
double bicScore(double SSE, size_t SampleCount, size_t ParamCount);

/// Generalized cross validation: GCV = SSE/n / (1 - C/n)^2 with effective
/// parameter count C.
double gcvScore(double SSE, size_t SampleCount, double EffectiveParams);

} // namespace msem

#endif // MSEM_MODEL_MODEL_H
