//===- model/RegressionTree.h - CART for RBF center selection -----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CART-style regression tree. Its primary role here is the one the
/// paper assigns it (after Orr et al.): partitioning the design space into
/// regions of roughly uniform response whose centers and extents seed the
/// RBF network's neurons. It is also a usable (if crude) predictor on its
/// own, which the tests exploit.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_MODEL_REGRESSIONTREE_H
#define MSEM_MODEL_REGRESSIONTREE_H

#include "model/Model.h"

namespace msem {

/// A leaf region: sample members, centroid and per-dimension extent.
struct TreeRegion {
  std::vector<size_t> Samples;
  std::vector<double> Centroid;
  std::vector<double> HalfWidth; ///< Half of the bounding-box extent.
  double MeanResponse = 0.0;
  unsigned Depth = 0;
};

/// Greedy variance-reduction regression tree.
class RegressionTree : public Model {
public:
  struct Options {
    size_t MaxLeaves = 32;
    size_t MinLeafSize = 4;
  };

  RegressionTree() = default;
  explicit RegressionTree(Options Opts) : Opts(Opts) {}

  void train(const Matrix &X, const std::vector<double> &Y) override;
  double predict(const std::vector<double> &XEnc) const override;
  std::string name() const override { return "tree"; }
  /// Serializes structure and leaf statistics; leaf sample-index lists are
  /// training-time scaffolding and are not persisted.
  void save(Json &Out) const override;
  bool load(const Json &In, std::string *Error) override;

  /// Leaf regions after training (in creation order: coarse first).
  const std::vector<TreeRegion> &leaves() const { return Leaves; }

private:
  struct Node {
    bool IsLeaf = true;
    unsigned SplitVar = 0;
    double SplitValue = 0.0;
    int Left = -1, Right = -1;
    size_t LeafIndex = 0; ///< Valid when IsLeaf.
  };

  Options Opts;
  std::vector<Node> Nodes;
  std::vector<TreeRegion> Leaves;
};

} // namespace msem

#endif // MSEM_MODEL_REGRESSIONTREE_H
