//===- model/TransformedModel.h - Response transformations --------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decorator fitting an inner model to a transformed response. The
/// standard use is the log transform for responses that vary
/// multiplicatively (energy dominated by leakage x capacity, code size
/// dominated by unroll factors): the inner model sees log(y), predictions
/// are mapped back through exp. Section 2.3 of the paper applies the same
/// idea on the *predictor* side (log-transforming power-of-two parameters).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_MODEL_TRANSFORMEDMODEL_H
#define MSEM_MODEL_TRANSFORMEDMODEL_H

#include "model/Model.h"

#include <cmath>

namespace msem {

/// Fits the wrapped model on log(y); predicts exp(inner(x)).
class LogResponseModel : public Model {
public:
  explicit LogResponseModel(std::unique_ptr<Model> Inner)
      : Inner(std::move(Inner)) {}

  void train(const Matrix &X, const std::vector<double> &Y) override {
    std::vector<double> LogY(Y.size());
    for (size_t I = 0; I < Y.size(); ++I) {
      assert(Y[I] > 0.0 && "log transform requires a positive response");
      LogY[I] = std::log(Y[I]);
    }
    Inner->train(X, LogY);
  }

  double predict(const std::vector<double> &XEnc) const override {
    return std::exp(Inner->predict(XEnc));
  }

  std::string name() const override { return "log-" + Inner->name(); }

  // Defined in Model.cpp (this header stays implementation-free beyond
  // the trivial forwarding above).
  void save(Json &Out) const override;
  bool load(const Json &In, std::string *Error) override;

  const Model &inner() const { return *Inner; }

private:
  std::unique_ptr<Model> Inner;
};

} // namespace msem

#endif // MSEM_MODEL_TRANSFORMEDMODEL_H
