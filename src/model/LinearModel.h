//===- model/LinearModel.h - Linear regression (Section 4.1) ------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global parametric linear regression, optionally with two-factor
/// interaction terms (the paper's Equation 2). Coefficients are the least
/// squares estimates of Equation 3, computed by ridge-stabilized normal
/// equations.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_MODEL_LINEARMODEL_H
#define MSEM_MODEL_LINEARMODEL_H

#include "model/Model.h"

namespace msem {

/// y = b0 + sum bi xi (+ sum bij xi xj).
class LinearModel : public Model {
public:
  struct Options {
    bool TwoFactorInteractions = true;
    double Ridge = 1e-8;
  };

  LinearModel() = default;
  explicit LinearModel(Options Opts) : Opts(Opts) {}

  void train(const Matrix &X, const std::vector<double> &Y) override;
  double predict(const std::vector<double> &XEnc) const override;
  std::string name() const override { return "linear"; }
  void save(Json &Out) const override;
  bool load(const Json &In, std::string *Error) override;

  /// Fitted coefficients: [intercept, main effects..., interactions...].
  const std::vector<double> &coefficients() const { return Beta; }
  /// Training SSE after the fit.
  double trainingSse() const { return Sse; }
  /// BIC of the fitted model.
  double bic() const { return Bic; }

private:
  std::vector<double> expand(const std::vector<double> &XEnc) const;

  Options Opts;
  size_t NumVars = 0;
  std::vector<double> Beta;
  double Sse = 0.0;
  double Bic = 0.0;
};

} // namespace msem

#endif // MSEM_MODEL_LINEARMODEL_H
