//===- model/Diagnostics.h - Model quality and effect analysis ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model diagnostics (Section 6.1) and significance analysis (Section 6.2):
/// prediction-error metrics on held-out test sets, and estimation of
/// main-effect / two-factor-interaction coefficients from any fitted model
/// by averaged finite differences over the design space. The paper reads
/// such coefficients directly off the simplified MARS form; the
/// finite-difference estimator recovers the same quantity ("one-half the
/// change in response caused by moving the variable(s) from low to high")
/// for any model family.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_MODEL_DIAGNOSTICS_H
#define MSEM_MODEL_DIAGNOSTICS_H

#include "design/ParameterSpace.h"
#include "model/Model.h"
#include "support/Rng.h"

namespace msem {

/// Error metrics of a model on a labelled set.
struct ModelQuality {
  double Mape = 0.0; ///< Mean absolute percent error (the paper's metric).
  double Rmse = 0.0;
  double R2 = 0.0;
};

/// Evaluates \p M on (X, Y).
ModelQuality evaluateModel(const Model &M, const Matrix &X,
                           const std::vector<double> &Y);

/// Estimated effect of one parameter or one pair.
struct EffectEstimate {
  std::string Label;       ///< e.g. "ruu-size" or "inlining * ruu-size".
  double Coefficient = 0.0; ///< Half the low-to-high response change.
};

/// Main effect of parameter \p Var: E[f(x | xv=high) - f(x | xv=low)] / 2
/// averaged over \p Samples random base points.
double mainEffect(const Model &M, const ParameterSpace &Space, size_t Var,
                  size_t Samples, Rng &R);

/// Two-factor interaction effect:
/// E[f(hi,hi) - f(hi,lo) - f(lo,hi) + f(lo,lo)] / 4 over random bases.
double interactionEffect(const Model &M, const ParameterSpace &Space,
                         size_t VarA, size_t VarB, size_t Samples, Rng &R);

/// All main effects plus the \p TopInteractions largest interactions,
/// sorted by |coefficient| descending (the Table 4 listing).
std::vector<EffectEstimate> rankEffects(const Model &M,
                                        const ParameterSpace &Space,
                                        size_t Samples, size_t TopInteractions,
                                        uint64_t Seed);

} // namespace msem

#endif // MSEM_MODEL_DIAGNOSTICS_H
