//===- model/RegressionTree.cpp - CART for RBF center selection ------------------===//

#include "model/RegressionTree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace msem;

namespace {

/// Statistics of a candidate split evaluated over a sample subset.
struct SplitChoice {
  bool Valid = false;
  unsigned Var = 0;
  double Value = 0.0;
  double SseAfter = 1e300;
};

double subsetSse(const std::vector<size_t> &Samples,
                 const std::vector<double> &Y) {
  if (Samples.empty())
    return 0.0;
  double Mean = 0.0;
  for (size_t I : Samples)
    Mean += Y[I];
  Mean /= static_cast<double>(Samples.size());
  double Sse = 0.0;
  for (size_t I : Samples)
    Sse += (Y[I] - Mean) * (Y[I] - Mean);
  return Sse;
}

SplitChoice bestSplit(const Matrix &X, const std::vector<double> &Y,
                      const std::vector<size_t> &Samples,
                      size_t MinLeafSize) {
  SplitChoice Best;
  size_t K = X.cols();
  for (unsigned Var = 0; Var < K; ++Var) {
    // Sort samples by this coordinate; scan split positions maintaining
    // running sums (O(n) per variable after the sort).
    std::vector<size_t> Order = Samples;
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return X.at(A, Var) < X.at(B, Var);
    });
    double SumL = 0, SumSqL = 0;
    double SumR = 0, SumSqR = 0;
    for (size_t I : Order) {
      SumR += Y[I];
      SumSqR += Y[I] * Y[I];
    }
    for (size_t Pos = 0; Pos + 1 < Order.size(); ++Pos) {
      double Yi = Y[Order[Pos]];
      SumL += Yi;
      SumSqL += Yi * Yi;
      SumR -= Yi;
      SumSqR -= Yi * Yi;
      size_t NL = Pos + 1, NR = Order.size() - NL;
      if (NL < MinLeafSize || NR < MinLeafSize)
        continue;
      double Xl = X.at(Order[Pos], Var);
      double Xr = X.at(Order[Pos + 1], Var);
      if (Xl == Xr)
        continue; // Can't separate equal coordinates.
      double SseL = SumSqL - SumL * SumL / static_cast<double>(NL);
      double SseR = SumSqR - SumR * SumR / static_cast<double>(NR);
      double Total = SseL + SseR;
      if (Total < Best.SseAfter) {
        Best.Valid = true;
        Best.Var = Var;
        Best.Value = (Xl + Xr) / 2.0;
        Best.SseAfter = Total;
      }
    }
  }
  return Best;
}

TreeRegion makeRegion(const Matrix &X, const std::vector<double> &Y,
                      std::vector<size_t> Samples, unsigned Depth) {
  TreeRegion R;
  size_t K = X.cols();
  R.Samples = std::move(Samples);
  R.Depth = Depth;
  R.Centroid.assign(K, 0.0);
  std::vector<double> Lo(K, 1e300), Hi(K, -1e300);
  double Mean = 0.0;
  for (size_t I : R.Samples) {
    Mean += Y[I];
    for (size_t D = 0; D < K; ++D) {
      double V = X.at(I, D);
      R.Centroid[D] += V;
      Lo[D] = std::min(Lo[D], V);
      Hi[D] = std::max(Hi[D], V);
    }
  }
  double N = static_cast<double>(R.Samples.size());
  if (N > 0) {
    Mean /= N;
    for (size_t D = 0; D < K; ++D)
      R.Centroid[D] /= N;
  }
  R.MeanResponse = Mean;
  R.HalfWidth.assign(K, 0.0);
  for (size_t D = 0; D < K; ++D)
    R.HalfWidth[D] = R.Samples.empty() ? 0.0 : (Hi[D] - Lo[D]) / 2.0;
  return R;
}

} // namespace

void RegressionTree::train(const Matrix &X, const std::vector<double> &Y) {
  assert(X.rows() == Y.size() && "design/response size mismatch");
  Nodes.clear();
  Leaves.clear();

  struct Pending {
    int NodeIndex;
    std::vector<size_t> Samples;
    unsigned Depth;
    double Sse;
  };

  std::vector<size_t> All(X.rows());
  for (size_t I = 0; I < X.rows(); ++I)
    All[I] = I;

  Nodes.push_back(Node());
  std::vector<Pending> Frontier;
  Frontier.push_back({0, All, 0, subsetSse(All, Y)});
  size_t LeafBudget = Opts.MaxLeaves;

  // Greedy best-first growth: always split the frontier node with the
  // largest SSE (the least-uniform region), as in the paper's description
  // of recursively partitioning until regions have uniform response.
  while (Frontier.size() < LeafBudget) {
    // Pick the frontier entry with the largest SSE that can split.
    int BestIdx = -1;
    double BestSse = 1e-12;
    for (size_t I = 0; I < Frontier.size(); ++I) {
      if (Frontier[I].Samples.size() < 2 * Opts.MinLeafSize)
        continue;
      if (Frontier[I].Sse > BestSse) {
        BestSse = Frontier[I].Sse;
        BestIdx = static_cast<int>(I);
      }
    }
    if (BestIdx < 0)
      break;
    Pending Cur = std::move(Frontier[static_cast<size_t>(BestIdx)]);
    Frontier.erase(Frontier.begin() + BestIdx);

    SplitChoice Split = bestSplit(X, Y, Cur.Samples, Opts.MinLeafSize);
    if (!Split.Valid || Split.SseAfter >= Cur.Sse) {
      Frontier.push_back(std::move(Cur));
      // Mark as unsplittable by zeroing its SSE so we don't loop forever.
      Frontier.back().Sse = 0.0;
      continue;
    }
    std::vector<size_t> LeftSamples, RightSamples;
    for (size_t I : Cur.Samples) {
      if (X.at(I, Split.Var) <= Split.Value)
        LeftSamples.push_back(I);
      else
        RightSamples.push_back(I);
    }
    Node &N = Nodes[static_cast<size_t>(Cur.NodeIndex)];
    N.IsLeaf = false;
    N.SplitVar = Split.Var;
    N.SplitValue = Split.Value;
    N.Left = static_cast<int>(Nodes.size());
    Nodes.push_back(Node());
    Nodes[static_cast<size_t>(Cur.NodeIndex)].Right =
        static_cast<int>(Nodes.size());
    Nodes.push_back(Node());
    int LeftNode = Nodes[static_cast<size_t>(Cur.NodeIndex)].Left;
    int RightNode = Nodes[static_cast<size_t>(Cur.NodeIndex)].Right;
    Frontier.push_back({LeftNode, std::move(LeftSamples), Cur.Depth + 1,
                        0.0});
    Frontier.back().Sse = subsetSse(Frontier.back().Samples, Y);
    Frontier.push_back({RightNode, std::move(RightSamples), Cur.Depth + 1,
                        0.0});
    Frontier.back().Sse = subsetSse(Frontier.back().Samples, Y);
  }

  // Materialize leaves.
  for (Pending &P : Frontier) {
    Node &N = Nodes[static_cast<size_t>(P.NodeIndex)];
    N.IsLeaf = true;
    N.LeafIndex = Leaves.size();
    Leaves.push_back(makeRegion(X, Y, std::move(P.Samples), P.Depth));
  }
}

double RegressionTree::predict(const std::vector<double> &XEnc) const {
  assert(!Nodes.empty() && "model not trained");
  const Node *N = &Nodes[0];
  while (!N->IsLeaf) {
    if (XEnc[N->SplitVar] <= N->SplitValue)
      N = &Nodes[static_cast<size_t>(N->Left)];
    else
      N = &Nodes[static_cast<size_t>(N->Right)];
  }
  return Leaves[N->LeafIndex].MeanResponse;
}

void RegressionTree::save(Json &Out) const {
  Out = Json::object();
  Out.set("kind", Json::string("tree"));
  Json O = Json::object();
  O.set("max_leaves", Json::number(static_cast<double>(Opts.MaxLeaves)));
  O.set("min_leaf_size",
        Json::number(static_cast<double>(Opts.MinLeafSize)));
  Out.set("options", std::move(O));
  Json NJ = Json::array();
  for (const Node &N : Nodes) {
    Json J = Json::object();
    J.set("leaf", Json::boolean(N.IsLeaf));
    if (N.IsLeaf) {
      J.set("leaf_index", Json::number(static_cast<double>(N.LeafIndex)));
    } else {
      J.set("var", Json::number(N.SplitVar));
      J.set("value", Json::number(N.SplitValue));
      J.set("left", Json::number(N.Left));
      J.set("right", Json::number(N.Right));
    }
    NJ.push(std::move(J));
  }
  Out.set("nodes", std::move(NJ));
  Json LJ = Json::array();
  for (const TreeRegion &L : Leaves) {
    Json J = Json::object();
    J.set("centroid", Json::numberArray(L.Centroid));
    J.set("half_width", Json::numberArray(L.HalfWidth));
    J.set("mean_response", Json::number(L.MeanResponse));
    J.set("depth", Json::number(L.Depth));
    LJ.push(std::move(J));
  }
  Out.set("leaves", std::move(LJ));
}

bool RegressionTree::load(const Json &In, std::string *Error) {
  if (!checkModelKind(In, "tree", Error))
    return false;
  const Json &O = In["options"];
  Opts.MaxLeaves = static_cast<size_t>(
      O["max_leaves"].asInt(static_cast<int64_t>(Opts.MaxLeaves)));
  Opts.MinLeafSize = static_cast<size_t>(
      O["min_leaf_size"].asInt(static_cast<int64_t>(Opts.MinLeafSize)));
  Leaves.clear();
  for (const Json &J : In["leaves"].items()) {
    TreeRegion L;
    L.Centroid = J["centroid"].toDoubleVector();
    L.HalfWidth = J["half_width"].toDoubleVector();
    L.MeanResponse = J["mean_response"].asDouble();
    L.Depth = static_cast<unsigned>(J["depth"].asInt());
    Leaves.push_back(std::move(L));
  }
  Nodes.clear();
  int64_t NodeCount = static_cast<int64_t>(In["nodes"].size());
  for (const Json &J : In["nodes"].items()) {
    Node N;
    N.IsLeaf = J["leaf"].asBool(true);
    if (N.IsLeaf) {
      N.LeafIndex = static_cast<size_t>(J["leaf_index"].asInt());
      if (N.LeafIndex >= Leaves.size()) {
        if (Error)
          *Error = "tree: leaf index out of range";
        return false;
      }
    } else {
      N.SplitVar = static_cast<unsigned>(J["var"].asInt());
      N.SplitValue = J["value"].asDouble();
      N.Left = static_cast<int>(J["left"].asInt(-1));
      N.Right = static_cast<int>(J["right"].asInt(-1));
      if (N.Left < 0 || N.Left >= NodeCount || N.Right < 0 ||
          N.Right >= NodeCount) {
        if (Error)
          *Error = "tree: child index out of range";
        return false;
      }
    }
    Nodes.push_back(N);
  }
  if (Nodes.empty()) {
    if (Error)
      *Error = "tree: empty node table";
    return false;
  }
  return true;
}
