//===- model/LinearModel.cpp - Linear regression ---------------------------------===//

#include "model/LinearModel.h"

#include "linalg/Solve.h"

#include <cassert>

using namespace msem;

std::vector<double>
LinearModel::expand(const std::vector<double> &XEnc) const {
  std::vector<double> Row;
  size_t K = XEnc.size();
  Row.reserve(1 + K + (Opts.TwoFactorInteractions ? K * (K - 1) / 2 : 0));
  Row.push_back(1.0);
  for (double V : XEnc)
    Row.push_back(V);
  if (Opts.TwoFactorInteractions)
    for (size_t I = 0; I < K; ++I)
      for (size_t J = I + 1; J < K; ++J)
        Row.push_back(XEnc[I] * XEnc[J]);
  return Row;
}

void LinearModel::train(const Matrix &X, const std::vector<double> &Y) {
  assert(X.rows() == Y.size() && "design/response size mismatch");
  NumVars = X.cols();
  Matrix Expanded;
  for (size_t I = 0; I < X.rows(); ++I)
    Expanded.appendRow(expand(X.row(I)));
  Beta = ridgeLeastSquares(Expanded, Y, Opts.Ridge);

  Sse = 0.0;
  std::vector<double> Pred = Expanded.multiplyVector(Beta);
  for (size_t I = 0; I < Y.size(); ++I)
    Sse += (Y[I] - Pred[I]) * (Y[I] - Pred[I]);
  Bic = bicScore(Sse, Y.size(), Beta.size());
}

void LinearModel::save(Json &Out) const {
  Out = Json::object();
  Out.set("kind", Json::string("linear"));
  Json O = Json::object();
  O.set("two_factor_interactions", Json::boolean(Opts.TwoFactorInteractions));
  O.set("ridge", Json::number(Opts.Ridge));
  Out.set("options", std::move(O));
  Out.set("num_vars", Json::number(static_cast<double>(NumVars)));
  Out.set("beta", Json::numberArray(Beta));
  Out.set("sse", Json::number(Sse));
  Out.set("bic", Json::number(Bic));
}

bool LinearModel::load(const Json &In, std::string *Error) {
  if (!checkModelKind(In, "linear", Error))
    return false;
  Opts.TwoFactorInteractions =
      In["options"]["two_factor_interactions"].asBool(true);
  Opts.Ridge = In["options"]["ridge"].asDouble(Opts.Ridge);
  NumVars = static_cast<size_t>(In["num_vars"].asInt());
  Beta = In["beta"].toDoubleVector();
  size_t Expected =
      1 + NumVars +
      (Opts.TwoFactorInteractions ? NumVars * (NumVars - 1) / 2 : 0);
  if (NumVars == 0 || Beta.size() != Expected) {
    if (Error)
      *Error = "linear: coefficient arity mismatch";
    return false;
  }
  Sse = In["sse"].asDouble();
  Bic = In["bic"].asDouble();
  return true;
}

double LinearModel::predict(const std::vector<double> &XEnc) const {
  assert(XEnc.size() == NumVars && "arity mismatch");
  std::vector<double> Row = expand(XEnc);
  assert(Row.size() == Beta.size() && "model not trained");
  double Sum = 0.0;
  for (size_t I = 0; I < Row.size(); ++I)
    Sum += Row[I] * Beta[I];
  return Sum;
}
