//===- model/RbfNetwork.h - RBF networks (Section 4.3) ------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Radial basis function networks, the paper's most accurate technique:
/// f(x) = w0 + sum wi h_i(x) with localized kernels. Neuron centers and
/// radii come from a regression tree over the training data (the paper's
/// "RBF-RT", after Orr et al.); the number of neurons is chosen by the BIC
/// criterion (Equation 9) to avoid overfitting; output weights are ridge
/// least squares. Gaussian and multiquadric kernels are supported -- the
/// paper found the multiquadric the most accurate and so does this
/// reproduction's default.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_MODEL_RBFNETWORK_H
#define MSEM_MODEL_RBFNETWORK_H

#include "model/Model.h"
#include "model/RegressionTree.h"

namespace msem {

/// Kernel families (the paper's Equation 8).
enum class RbfKernel {
  Gaussian,     ///< exp(-d^2 / (2 r^2))
  Multiquadric, ///< sqrt(1 + d^2 / (2 r^2))
};

/// The RBF network model.
class RbfNetwork : public Model {
public:
  struct Options {
    RbfKernel Kernel = RbfKernel::Multiquadric;
    /// Candidate neuron counts tried during BIC selection (clamped to the
    /// sample count).
    std::vector<size_t> CenterCounts = {8, 12, 16, 24, 32, 48, 64};
    size_t MinLeafSize = 3;
    double Ridge = 1e-6;
    /// Radii are the tree-region half-diagonals scaled by this factor.
    double RadiusScale = 1.0;
    double MinRadius = 0.35;
  };

  RbfNetwork() = default;
  explicit RbfNetwork(Options Opts) : Opts(std::move(Opts)) {}

  void train(const Matrix &X, const std::vector<double> &Y) override;
  double predict(const std::vector<double> &XEnc) const override;
  std::string name() const override { return "rbf"; }
  void save(Json &Out) const override;
  bool load(const Json &In, std::string *Error) override;

  size_t numNeurons() const { return Centers.size(); }
  double bic() const { return Bic; }

private:
  double kernelValue(double Dist2, double Radius) const;
  /// Builds the (n x centers+1) design matrix for the given neurons.
  Matrix hiddenMatrix(const Matrix &X,
                      const std::vector<std::vector<double>> &Ctrs,
                      const std::vector<double> &Radii) const;

  Options Opts;
  size_t NumVars = 0;
  std::vector<std::vector<double>> Centers;
  std::vector<double> Radii;
  std::vector<double> Weights; ///< [bias, w1..wm].
  double Bic = 0.0;
};

} // namespace msem

#endif // MSEM_MODEL_RBFNETWORK_H
