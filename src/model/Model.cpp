//===- model/Model.cpp - Empirical model interface -------------------------------===//

#include "model/Model.h"

#include <cassert>
#include <cmath>

using namespace msem;

Model::~Model() = default;

std::vector<double> Model::predictAll(const Matrix &X) const {
  std::vector<double> P(X.rows());
  for (size_t I = 0; I < X.rows(); ++I)
    P[I] = predict(X.row(I));
  return P;
}

double msem::bicScore(double SSE, size_t SampleCount, size_t ParamCount) {
  double P = static_cast<double>(SampleCount);
  double Gamma = static_cast<double>(ParamCount);
  if (Gamma >= P)
    return 1e300; // Saturated model: infinitely penalized.
  return (P + (std::log(P) - 1.0) * Gamma) / (P * (P - Gamma)) * SSE;
}

double msem::gcvScore(double SSE, size_t SampleCount,
                      double EffectiveParams) {
  double N = static_cast<double>(SampleCount);
  if (EffectiveParams >= N)
    return 1e300;
  double Denom = 1.0 - EffectiveParams / N;
  return (SSE / N) / (Denom * Denom);
}
