//===- model/Model.cpp - Empirical model interface -------------------------------===//

#include "model/Model.h"

#include "model/LinearModel.h"
#include "model/Mars.h"
#include "model/RbfNetwork.h"
#include "model/RegressionTree.h"
#include "model/TransformedModel.h"

#include <cassert>
#include <cmath>

using namespace msem;

Model::~Model() = default;

bool msem::checkModelKind(const Json &In, const std::string &Expected,
                          std::string *Error) {
  const std::string &Kind = In["kind"].asString();
  if (Kind == Expected)
    return true;
  if (Error)
    *Error = "model: expected kind '" + Expected + "', found '" + Kind + "'";
  return false;
}

std::unique_ptr<Model> Model::fromJson(const Json &In, std::string *Error) {
  const std::string &Kind = In["kind"].asString();
  std::unique_ptr<Model> M;
  if (Kind == "linear")
    M = std::make_unique<LinearModel>();
  else if (Kind == "mars")
    M = std::make_unique<MarsModel>();
  else if (Kind == "rbf")
    M = std::make_unique<RbfNetwork>();
  else if (Kind == "tree")
    M = std::make_unique<RegressionTree>();
  else if (Kind == "log")
    M = std::make_unique<LogResponseModel>(nullptr);
  else {
    if (Error)
      *Error = "model: unknown kind '" + Kind + "'";
    return nullptr;
  }
  if (!M->load(In, Error))
    return nullptr;
  return M;
}

//===----------------------------------------------------------------------===//
// LogResponseModel (defined here: TransformedModel.h is header-only)
//===----------------------------------------------------------------------===//

void LogResponseModel::save(Json &Out) const {
  assert(Inner && "log model has no inner model");
  Out = Json::object();
  Out.set("kind", Json::string("log"));
  Json InnerDoc;
  Inner->save(InnerDoc);
  Out.set("inner", std::move(InnerDoc));
}

bool LogResponseModel::load(const Json &In, std::string *Error) {
  if (!checkModelKind(In, "log", Error))
    return false;
  Inner = Model::fromJson(In["inner"], Error);
  return Inner != nullptr;
}

std::vector<double> Model::predictAll(const Matrix &X) const {
  std::vector<double> P(X.rows());
  for (size_t I = 0; I < X.rows(); ++I)
    P[I] = predict(X.row(I));
  return P;
}

double msem::bicScore(double SSE, size_t SampleCount, size_t ParamCount) {
  double P = static_cast<double>(SampleCount);
  double Gamma = static_cast<double>(ParamCount);
  if (Gamma >= P)
    return 1e300; // Saturated model: infinitely penalized.
  return (P + (std::log(P) - 1.0) * Gamma) / (P * (P - Gamma)) * SSE;
}

double msem::gcvScore(double SSE, size_t SampleCount,
                      double EffectiveParams) {
  double N = static_cast<double>(SampleCount);
  if (EffectiveParams >= N)
    return 1e300;
  double Denom = 1.0 - EffectiveParams / N;
  return (SSE / N) / (Denom * Denom);
}
