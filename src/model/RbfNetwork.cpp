//===- model/RbfNetwork.cpp - RBF networks ----------------------------------------===//

#include "model/RbfNetwork.h"

#include "linalg/Solve.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace msem;

double RbfNetwork::kernelValue(double Dist2, double Radius) const {
  double R2 = Radius * Radius;
  switch (Opts.Kernel) {
  case RbfKernel::Gaussian:
    return std::exp(-Dist2 / (2.0 * R2));
  case RbfKernel::Multiquadric:
    return std::sqrt(1.0 + Dist2 / (2.0 * R2));
  }
  return 0.0;
}

Matrix RbfNetwork::hiddenMatrix(
    const Matrix &X, const std::vector<std::vector<double>> &Ctrs,
    const std::vector<double> &Rad) const {
  Matrix H(X.rows(), Ctrs.size() + 1);
  for (size_t I = 0; I < X.rows(); ++I) {
    H.at(I, 0) = 1.0;
    const double *Row = X.rowPtr(I);
    for (size_t C = 0; C < Ctrs.size(); ++C) {
      double Dist2 = 0.0;
      for (size_t D = 0; D < X.cols(); ++D) {
        double Delta = Row[D] - Ctrs[C][D];
        Dist2 += Delta * Delta;
      }
      H.at(I, C + 1) = kernelValue(Dist2, Rad[C]);
    }
  }
  return H;
}

void RbfNetwork::train(const Matrix &X, const std::vector<double> &Y) {
  telemetry::ScopedTimer Span("fit.rbf");
  assert(X.rows() == Y.size() && "design/response size mismatch");
  NumVars = X.cols();
  const size_t N = X.rows();

  // Every candidate center count is an independent fit (tree partition,
  // hidden-layer evaluation, ridge solve): fan them across the pool, then
  // reduce sequentially in the configured order so telemetry ordering and
  // the selected configuration match the single-threaded run exactly.
  struct CountFit {
    bool Feasible = false;
    double Score = 0.0;
    std::vector<std::vector<double>> Ctrs;
    std::vector<double> Rad;
    std::vector<double> W;
  };
  std::vector<CountFit> Fits = globalThreadPool().parallelMap(
      Opts.CenterCounts.size(),
      [&](size_t CI) {
        CountFit Fit;
        size_t Want = Opts.CenterCounts[CI];
        size_t MaxFeasible = N / std::max<size_t>(1, Opts.MinLeafSize);
        size_t LeafTarget = std::min(Want, std::max<size_t>(2, MaxFeasible));
        if (LeafTarget + 1 >= N)
          return Fit; // Would saturate.

        // Regression tree partition -> centers and radii.
        RegressionTree::Options TreeOpts;
        TreeOpts.MaxLeaves = LeafTarget;
        TreeOpts.MinLeafSize = Opts.MinLeafSize;
        RegressionTree Tree(TreeOpts);
        Tree.train(X, Y);

        for (const TreeRegion &Leaf : Tree.leaves()) {
          if (Leaf.Samples.empty())
            continue;
          Fit.Ctrs.push_back(Leaf.Centroid);
          double Diag2 = 0.0;
          for (double HW : Leaf.HalfWidth)
            Diag2 += HW * HW;
          double Radius =
              std::max(Opts.MinRadius, Opts.RadiusScale * std::sqrt(Diag2));
          Fit.Rad.push_back(Radius);
        }
        if (Fit.Ctrs.empty())
          return Fit;

        Matrix H = hiddenMatrix(X, Fit.Ctrs, Fit.Rad);
        Fit.W = ridgeLeastSquares(H, Y, Opts.Ridge);
        std::vector<double> Pred = H.multiplyVector(Fit.W);
        double Sse = 0.0;
        for (size_t I = 0; I < N; ++I)
          Sse += (Y[I] - Pred[I]) * (Y[I] - Pred[I]);
        Fit.Score = bicScore(Sse, N, Fit.W.size());
        Fit.Feasible = true;
        return Fit;
      },
      "rbf.train");

  double BestBic = 1e300;
  for (CountFit &Fit : Fits) {
    if (!Fit.Feasible)
      continue;
    // BIC trajectory over candidate center counts (x = centers used).
    telemetry::record("rbf.bic", static_cast<double>(Fit.Ctrs.size()),
                      Fit.Score);
    if (Fit.Score < BestBic) {
      BestBic = Fit.Score;
      Centers = std::move(Fit.Ctrs);
      Radii = std::move(Fit.Rad);
      Weights = std::move(Fit.W);
    }
  }
  Bic = BestBic;
  assert(!Weights.empty() && "no feasible RBF configuration");

  if (telemetry::enabled()) {
    telemetry::counter("rbf.fits").add(1);
    telemetry::gauge("rbf.centers").set(static_cast<double>(Centers.size()));
    telemetry::gauge("rbf.bic.final").set(Bic);
  }
}

double RbfNetwork::predict(const std::vector<double> &XEnc) const {
  assert(XEnc.size() == NumVars && "arity mismatch");
  assert(!Weights.empty() && "model not trained");
  double Sum = Weights[0];
  for (size_t C = 0; C < Centers.size(); ++C) {
    double Dist2 = 0.0;
    for (size_t D = 0; D < NumVars; ++D) {
      double Delta = XEnc[D] - Centers[C][D];
      Dist2 += Delta * Delta;
    }
    Sum += Weights[C + 1] * kernelValue(Dist2, Radii[C]);
  }
  return Sum;
}

void RbfNetwork::save(Json &Out) const {
  Out = Json::object();
  Out.set("kind", Json::string("rbf"));
  Json O = Json::object();
  O.set("kernel", Json::string(Opts.Kernel == RbfKernel::Gaussian
                                   ? "gaussian"
                                   : "multiquadric"));
  O.set("min_leaf_size",
        Json::number(static_cast<double>(Opts.MinLeafSize)));
  O.set("ridge", Json::number(Opts.Ridge));
  O.set("radius_scale", Json::number(Opts.RadiusScale));
  O.set("min_radius", Json::number(Opts.MinRadius));
  Out.set("options", std::move(O));
  Out.set("num_vars", Json::number(static_cast<double>(NumVars)));
  Json Ctrs = Json::array();
  for (const std::vector<double> &C : Centers)
    Ctrs.push(Json::numberArray(C));
  Out.set("centers", std::move(Ctrs));
  Out.set("radii", Json::numberArray(Radii));
  Out.set("weights", Json::numberArray(Weights));
  Out.set("bic", Json::number(Bic));
}

bool RbfNetwork::load(const Json &In, std::string *Error) {
  if (!checkModelKind(In, "rbf", Error))
    return false;
  const Json &O = In["options"];
  // By value: with no "kernel" key asString returns a reference to its
  // temporary fallback argument, dead past this expression.
  std::string Kernel = O["kernel"].asString("multiquadric");
  if (Kernel == "gaussian")
    Opts.Kernel = RbfKernel::Gaussian;
  else if (Kernel == "multiquadric")
    Opts.Kernel = RbfKernel::Multiquadric;
  else {
    if (Error)
      *Error = "rbf: unknown kernel '" + Kernel + "'";
    return false;
  }
  Opts.MinLeafSize = static_cast<size_t>(
      O["min_leaf_size"].asInt(static_cast<int64_t>(Opts.MinLeafSize)));
  Opts.Ridge = O["ridge"].asDouble(Opts.Ridge);
  Opts.RadiusScale = O["radius_scale"].asDouble(Opts.RadiusScale);
  Opts.MinRadius = O["min_radius"].asDouble(Opts.MinRadius);
  NumVars = static_cast<size_t>(In["num_vars"].asInt());
  Centers.clear();
  for (const Json &C : In["centers"].items()) {
    Centers.push_back(C.toDoubleVector());
    if (Centers.back().size() != NumVars) {
      if (Error)
        *Error = "rbf: center dimensionality mismatch";
      return false;
    }
  }
  Radii = In["radii"].toDoubleVector();
  Weights = In["weights"].toDoubleVector();
  if (Centers.empty() || Radii.size() != Centers.size() ||
      Weights.size() != Centers.size() + 1) {
    if (Error)
      *Error = "rbf: center/radius/weight arity mismatch";
    return false;
  }
  Bic = In["bic"].asDouble();
  return true;
}
