//===- model/RbfNetwork.cpp - RBF networks ----------------------------------------===//

#include "model/RbfNetwork.h"

#include "linalg/Solve.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace msem;

double RbfNetwork::kernelValue(double Dist2, double Radius) const {
  double R2 = Radius * Radius;
  switch (Opts.Kernel) {
  case RbfKernel::Gaussian:
    return std::exp(-Dist2 / (2.0 * R2));
  case RbfKernel::Multiquadric:
    return std::sqrt(1.0 + Dist2 / (2.0 * R2));
  }
  return 0.0;
}

Matrix RbfNetwork::hiddenMatrix(
    const Matrix &X, const std::vector<std::vector<double>> &Ctrs,
    const std::vector<double> &Rad) const {
  Matrix H(X.rows(), Ctrs.size() + 1);
  for (size_t I = 0; I < X.rows(); ++I) {
    H.at(I, 0) = 1.0;
    const double *Row = X.rowPtr(I);
    for (size_t C = 0; C < Ctrs.size(); ++C) {
      double Dist2 = 0.0;
      for (size_t D = 0; D < X.cols(); ++D) {
        double Delta = Row[D] - Ctrs[C][D];
        Dist2 += Delta * Delta;
      }
      H.at(I, C + 1) = kernelValue(Dist2, Rad[C]);
    }
  }
  return H;
}

void RbfNetwork::train(const Matrix &X, const std::vector<double> &Y) {
  telemetry::ScopedTimer Span("fit.rbf");
  assert(X.rows() == Y.size() && "design/response size mismatch");
  NumVars = X.cols();
  const size_t N = X.rows();

  double BestBic = 1e300;
  for (size_t Want : Opts.CenterCounts) {
    size_t MaxFeasible = N / std::max<size_t>(1, Opts.MinLeafSize);
    size_t LeafTarget = std::min(Want, std::max<size_t>(2, MaxFeasible));
    if (LeafTarget + 1 >= N)
      continue; // Would saturate.

    // Regression tree partition -> centers and radii.
    RegressionTree::Options TreeOpts;
    TreeOpts.MaxLeaves = LeafTarget;
    TreeOpts.MinLeafSize = Opts.MinLeafSize;
    RegressionTree Tree(TreeOpts);
    Tree.train(X, Y);

    std::vector<std::vector<double>> Ctrs;
    std::vector<double> Rad;
    for (const TreeRegion &Leaf : Tree.leaves()) {
      if (Leaf.Samples.empty())
        continue;
      Ctrs.push_back(Leaf.Centroid);
      double Diag2 = 0.0;
      for (double HW : Leaf.HalfWidth)
        Diag2 += HW * HW;
      double Radius =
          std::max(Opts.MinRadius, Opts.RadiusScale * std::sqrt(Diag2));
      Rad.push_back(Radius);
    }
    if (Ctrs.empty())
      continue;

    Matrix H = hiddenMatrix(X, Ctrs, Rad);
    std::vector<double> W = ridgeLeastSquares(H, Y, Opts.Ridge);
    std::vector<double> Pred = H.multiplyVector(W);
    double Sse = 0.0;
    for (size_t I = 0; I < N; ++I)
      Sse += (Y[I] - Pred[I]) * (Y[I] - Pred[I]);
    double Score = bicScore(Sse, N, W.size());
    // BIC trajectory over candidate center counts (x = centers used).
    telemetry::record("rbf.bic", static_cast<double>(Ctrs.size()), Score);
    if (Score < BestBic) {
      BestBic = Score;
      Centers = std::move(Ctrs);
      Radii = std::move(Rad);
      Weights = std::move(W);
    }
  }
  Bic = BestBic;
  assert(!Weights.empty() && "no feasible RBF configuration");

  if (telemetry::enabled()) {
    telemetry::counter("rbf.fits").add(1);
    telemetry::gauge("rbf.centers").set(static_cast<double>(Centers.size()));
    telemetry::gauge("rbf.bic.final").set(Bic);
  }
}

double RbfNetwork::predict(const std::vector<double> &XEnc) const {
  assert(XEnc.size() == NumVars && "arity mismatch");
  assert(!Weights.empty() && "model not trained");
  double Sum = Weights[0];
  for (size_t C = 0; C < Centers.size(); ++C) {
    double Dist2 = 0.0;
    for (size_t D = 0; D < NumVars; ++D) {
      double Delta = XEnc[D] - Centers[C][D];
      Dist2 += Delta * Delta;
    }
    Sum += Weights[C + 1] * kernelValue(Dist2, Radii[C]);
  }
  return Sum;
}
