//===- model/Mars.h - Multivariate Adaptive Regression Splines ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MARS (Friedman 1991), the paper's Section 4.2 technique: a forward
/// stepwise pass greedily adds mirrored pairs of hinge basis functions
/// max(0, x - t) / max(0, t - x) (optionally multiplied into an existing
/// basis function, giving interactions up to a configured degree), and a
/// backward pruning pass deletes terms while the GCV criterion improves.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_MODEL_MARS_H
#define MSEM_MODEL_MARS_H

#include "model/Model.h"

namespace msem {

/// One factor of a MARS basis function: a hinge on a single variable.
struct HingeFactor {
  unsigned Var = 0;
  double Knot = 0.0;
  bool Positive = true; ///< max(0, x - knot) vs max(0, knot - x).
};

/// A basis function: a product of zero or more hinge factors (the empty
/// product is the constant 1).
struct MarsBasis {
  std::vector<HingeFactor> Factors;

  double evaluate(const std::vector<double> &X) const {
    double V = 1.0;
    for (const HingeFactor &F : Factors) {
      double T = F.Positive ? X[F.Var] - F.Knot : F.Knot - X[F.Var];
      if (T <= 0.0)
        return 0.0;
      V *= T;
    }
    return V;
  }

  bool usesVar(unsigned Var) const {
    for (const HingeFactor &F : Factors)
      if (F.Var == Var)
        return true;
    return false;
  }
};

/// The MARS model (Equation 6): f(x) = w0 + sum wm Bm(x).
class MarsModel : public Model {
public:
  struct Options {
    size_t MaxBasis = 24;       ///< Forward-pass budget (pairs count as 2).
    unsigned MaxInteraction = 2; ///< Maximum factors per basis function.
    size_t KnotsPerVar = 8;      ///< Candidate knots per variable.
    double GcvPenalty = 3.0;     ///< Friedman's d (cost per basis).
    double Ridge = 1e-8;
  };

  MarsModel() = default;
  explicit MarsModel(Options Opts) : Opts(Opts) {}

  void train(const Matrix &X, const std::vector<double> &Y) override;
  double predict(const std::vector<double> &XEnc) const override;
  std::string name() const override { return "mars"; }
  void save(Json &Out) const override;
  bool load(const Json &In, std::string *Error) override;

  const std::vector<MarsBasis> &basis() const { return Basis; }
  const std::vector<double> &weights() const { return Weights; }
  double gcv() const { return Gcv; }

private:
  /// Fits weights for a basis set; returns SSE.
  double fitWeights(const Matrix &BasisMatrix, const std::vector<double> &Y,
                    std::vector<double> &W) const;

  Options Opts;
  size_t NumVars = 0;
  std::vector<MarsBasis> Basis; ///< Basis[0] is the constant.
  std::vector<double> Weights;
  double Gcv = 0.0;
};

} // namespace msem

#endif // MSEM_MODEL_MARS_H
