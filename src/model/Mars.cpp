//===- model/Mars.cpp - Multivariate Adaptive Regression Splines -----------------===//

#include "model/Mars.h"

#include "linalg/Solve.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace msem;

namespace {

/// Evaluates a basis set over all samples into an n x m matrix.
Matrix basisMatrix(const std::vector<MarsBasis> &Basis, const Matrix &X) {
  Matrix B(X.rows(), Basis.size());
  for (size_t I = 0; I < X.rows(); ++I) {
    std::vector<double> Row = X.row(I);
    for (size_t M = 0; M < Basis.size(); ++M)
      B.at(I, M) = Basis[M].evaluate(Row);
  }
  return B;
}

/// Candidate knots for a variable: distinct quantiles of its sample values
/// (endpoints excluded -- a hinge at the extreme value is degenerate).
std::vector<double> candidateKnots(const Matrix &X, unsigned Var,
                                   size_t MaxKnots) {
  std::vector<double> Values = X.col(Var);
  std::sort(Values.begin(), Values.end());
  Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
  if (Values.size() <= 2)
    return Values.size() == 2
               ? std::vector<double>{(Values[0] + Values[1]) / 2}
               : std::vector<double>{};
  std::vector<double> Knots;
  size_t Interior = Values.size() - 2;
  size_t Take = std::min(MaxKnots, Interior);
  for (size_t K = 0; K < Take; ++K) {
    size_t Idx = 1 + (K * Interior) / Take;
    Knots.push_back(Values[Idx]);
  }
  Knots.erase(std::unique(Knots.begin(), Knots.end()), Knots.end());
  return Knots;
}

} // namespace

double MarsModel::fitWeights(const Matrix &BasisMat,
                             const std::vector<double> &Y,
                             std::vector<double> &W) const {
  W = ridgeLeastSquares(BasisMat, Y, Opts.Ridge);
  std::vector<double> Pred = BasisMat.multiplyVector(W);
  double Sse = 0.0;
  for (size_t I = 0; I < Y.size(); ++I)
    Sse += (Y[I] - Pred[I]) * (Y[I] - Pred[I]);
  return Sse;
}

void MarsModel::train(const Matrix &X, const std::vector<double> &Y) {
  telemetry::ScopedTimer Span("fit.mars");
  assert(X.rows() == Y.size() && "design/response size mismatch");
  NumVars = X.cols();
  const size_t N = X.rows();

  Basis.clear();
  Basis.push_back(MarsBasis{}); // The constant term.

  // Cache candidate knots per variable.
  std::vector<std::vector<double>> Knots(NumVars);
  for (unsigned V = 0; V < NumVars; ++V)
    Knots[V] = candidateKnots(X, V, Opts.KnotsPerVar);

  // ---- Forward pass -------------------------------------------------------
  // Candidates are scored cheaply by how much of the *current residual*
  // the mirrored hinge pair explains (a 2x2 least squares); the full set
  // of weights is refit exactly after each accepted pair. This is the
  // standard fast approximation of Friedman's forward step.
  Matrix BMat = basisMatrix(Basis, X);
  std::vector<double> W;
  double CurSse = fitWeights(BMat, Y, W);
  std::vector<double> Residual(N);
  auto RefreshResidual = [&]() {
    std::vector<double> Pred = BMat.multiplyVector(W);
    for (size_t I = 0; I < N; ++I)
      Residual[I] = Y[I] - Pred[I];
  };
  RefreshResidual();

  // Each (parent basis, variable) pair scans its candidate knots
  // independently; the pairs fan across the thread pool and the winner is
  // reduced sequentially in pair order afterwards, which reproduces the
  // sequential scan's earliest-maximum tie-breaking bit for bit.
  struct PairBest {
    double Reduction = 0.0; ///< Valid only when Found.
    double Knot = 0.0;
    bool Found = false;
  };

  while (Basis.size() + 2 <= Opts.MaxBasis + 1) {
    const double Threshold = 1e-9 * (1.0 + CurSse);
    const size_t NumPairs = Basis.size() * NumVars;
    std::vector<PairBest> PairBests = globalThreadPool().parallelMap(
        NumPairs,
        [&](size_t Pair) {
          PairBest PB;
          size_t Parent = Pair / NumVars;
          unsigned Var = static_cast<unsigned>(Pair % NumVars);
          if (Basis[Parent].Factors.size() >= Opts.MaxInteraction ||
              Basis[Parent].usesVar(Var))
            return PB;
          PB.Reduction = Threshold;
          std::vector<double> ColPos(N), ColNeg(N);
          for (double Knot : Knots[Var]) {
            bool NonTrivial = false;
            for (size_t I = 0; I < N; ++I) {
              double ParentVal = BMat.at(I, Parent);
              double Xi = X.at(I, Var);
              ColPos[I] = ParentVal * std::max(0.0, Xi - Knot);
              ColNeg[I] = ParentVal * std::max(0.0, Knot - Xi);
              if (ColPos[I] != 0.0 || ColNeg[I] != 0.0)
                NonTrivial = true;
            }
            if (!NonTrivial)
              continue;
            // Regress the residual on [c1 c2]: 2x2 normal equations.
            double A11 = 0, A12 = 0, A22 = 0, B1 = 0, B2 = 0;
            for (size_t I = 0; I < N; ++I) {
              A11 += ColPos[I] * ColPos[I];
              A12 += ColPos[I] * ColNeg[I];
              A22 += ColNeg[I] * ColNeg[I];
              B1 += ColPos[I] * Residual[I];
              B2 += ColNeg[I] * Residual[I];
            }
            double Det = A11 * A22 - A12 * A12;
            double Reduction;
            if (std::fabs(Det) > 1e-12 * (1.0 + A11 * A22)) {
              double Ca = (B1 * A22 - B2 * A12) / Det;
              double Cb = (B2 * A11 - B1 * A12) / Det;
              Reduction = Ca * B1 + Cb * B2;
            } else if (A11 > 1e-12) {
              Reduction = B1 * B1 / A11;
            } else if (A22 > 1e-12) {
              Reduction = B2 * B2 / A22;
            } else {
              continue;
            }
            if (Reduction > PB.Reduction) {
              PB.Reduction = Reduction;
              PB.Knot = Knot;
              PB.Found = true;
            }
          }
          return PB;
        },
        "mars.forward");

    double BestReduction = Threshold;
    int BestParent = -1;
    unsigned BestVar = 0;
    double BestKnot = 0.0;
    for (size_t Pair = 0; Pair < NumPairs; ++Pair) {
      const PairBest &PB = PairBests[Pair];
      if (PB.Found && PB.Reduction > BestReduction) {
        BestReduction = PB.Reduction;
        BestParent = static_cast<int>(Pair / NumVars);
        BestVar = static_cast<unsigned>(Pair % NumVars);
        BestKnot = PB.Knot;
      }
    }
    if (BestParent < 0)
      break; // No improving pair.
    MarsBasis Pos = Basis[static_cast<size_t>(BestParent)];
    Pos.Factors.push_back({BestVar, BestKnot, true});
    MarsBasis Neg = Basis[static_cast<size_t>(BestParent)];
    Neg.Factors.push_back({BestVar, BestKnot, false});
    Basis.push_back(std::move(Pos));
    Basis.push_back(std::move(Neg));
    BMat = basisMatrix(Basis, X);
    double NewSse = fitWeights(BMat, Y, W);
    if (NewSse >= CurSse)
      break; // The exact refit disagrees; stop growing.
    CurSse = NewSse;
    RefreshResidual();
  }

  // ---- Backward pruning (GCV) ----------------------------------------------
  auto EffectiveParams = [&](size_t NumBasis) {
    // Friedman: C(M) = m + d * (m - 1) / 2 where m counts basis functions.
    double Md = static_cast<double>(NumBasis);
    return Md + Opts.GcvPenalty * (Md - 1.0) / 2.0;
  };

  std::vector<double> FullW;
  double FullSse = fitWeights(BMat, Y, FullW);
  double BestGcv = gcvScore(FullSse, N, EffectiveParams(Basis.size()));
  std::vector<MarsBasis> BestBasis = Basis;
  // GCV trajectory over the pruning sequence (x = basis count).
  telemetry::record("mars.gcv", static_cast<double>(Basis.size()), BestGcv);

  std::vector<MarsBasis> Working = Basis;
  while (Working.size() > 1) {
    // Score every candidate victim in parallel (each is an independent
    // refit of the reduced basis), then pick the round's best in victim
    // order -- same earliest-minimum tie-breaking as the sequential loop.
    std::vector<double> VictimGcv = globalThreadPool().parallelMap(
        Working.size() - 1,
        [&](size_t VIdx) {
          size_t Victim = VIdx + 1;
          std::vector<MarsBasis> Reduced;
          Reduced.reserve(Working.size() - 1);
          for (size_t I = 0; I < Working.size(); ++I)
            if (I != Victim)
              Reduced.push_back(Working[I]);
          Matrix RM = basisMatrix(Reduced, X);
          std::vector<double> RW;
          double Sse = fitWeights(RM, Y, RW);
          return gcvScore(Sse, N, EffectiveParams(Reduced.size()));
        },
        "mars.prune");
    double RoundBestGcv = 1e300;
    int RoundBestVictim = -1;
    for (size_t Victim = 1; Victim < Working.size(); ++Victim) {
      if (VictimGcv[Victim - 1] < RoundBestGcv) {
        RoundBestGcv = VictimGcv[Victim - 1];
        RoundBestVictim = static_cast<int>(Victim);
      }
    }
    if (RoundBestVictim < 0)
      break;
    Working.erase(Working.begin() + RoundBestVictim);
    telemetry::record("mars.gcv", static_cast<double>(Working.size()),
                      RoundBestGcv);
    if (RoundBestGcv < BestGcv) {
      BestGcv = RoundBestGcv;
      BestBasis = Working;
    }
  }

  Basis = std::move(BestBasis);
  Matrix FinalMat = basisMatrix(Basis, X);
  double FinalSse = fitWeights(FinalMat, Y, Weights);
  Gcv = gcvScore(FinalSse, N, EffectiveParams(Basis.size()));

  if (telemetry::enabled()) {
    telemetry::counter("mars.fits").add(1);
    telemetry::gauge("mars.basis_count")
        .set(static_cast<double>(Basis.size()));
    telemetry::gauge("mars.gcv.final").set(Gcv);
  }
}

double MarsModel::predict(const std::vector<double> &XEnc) const {
  assert(XEnc.size() == NumVars && "arity mismatch");
  assert(Weights.size() == Basis.size() && "model not trained");
  double Sum = 0.0;
  for (size_t M = 0; M < Basis.size(); ++M)
    Sum += Weights[M] * Basis[M].evaluate(XEnc);
  return Sum;
}

void MarsModel::save(Json &Out) const {
  Out = Json::object();
  Out.set("kind", Json::string("mars"));
  Json O = Json::object();
  O.set("max_basis", Json::number(static_cast<double>(Opts.MaxBasis)));
  O.set("max_interaction", Json::number(Opts.MaxInteraction));
  O.set("knots_per_var", Json::number(static_cast<double>(Opts.KnotsPerVar)));
  O.set("gcv_penalty", Json::number(Opts.GcvPenalty));
  O.set("ridge", Json::number(Opts.Ridge));
  Out.set("options", std::move(O));
  Out.set("num_vars", Json::number(static_cast<double>(NumVars)));
  Json B = Json::array();
  for (const MarsBasis &Bm : Basis) {
    Json Factors = Json::array();
    for (const HingeFactor &F : Bm.Factors) {
      Json FJ = Json::object();
      FJ.set("var", Json::number(F.Var));
      FJ.set("knot", Json::number(F.Knot));
      FJ.set("positive", Json::boolean(F.Positive));
      Factors.push(std::move(FJ));
    }
    B.push(std::move(Factors));
  }
  Out.set("basis", std::move(B));
  Out.set("weights", Json::numberArray(Weights));
  Out.set("gcv", Json::number(Gcv));
}

bool MarsModel::load(const Json &In, std::string *Error) {
  if (!checkModelKind(In, "mars", Error))
    return false;
  const Json &O = In["options"];
  Opts.MaxBasis = static_cast<size_t>(
      O["max_basis"].asInt(static_cast<int64_t>(Opts.MaxBasis)));
  Opts.MaxInteraction =
      static_cast<unsigned>(O["max_interaction"].asInt(Opts.MaxInteraction));
  Opts.KnotsPerVar = static_cast<size_t>(
      O["knots_per_var"].asInt(static_cast<int64_t>(Opts.KnotsPerVar)));
  Opts.GcvPenalty = O["gcv_penalty"].asDouble(Opts.GcvPenalty);
  Opts.Ridge = O["ridge"].asDouble(Opts.Ridge);
  NumVars = static_cast<size_t>(In["num_vars"].asInt());
  Basis.clear();
  for (const Json &Factors : In["basis"].items()) {
    MarsBasis B;
    for (const Json &FJ : Factors.items()) {
      HingeFactor F;
      F.Var = static_cast<unsigned>(FJ["var"].asInt());
      F.Knot = FJ["knot"].asDouble();
      F.Positive = FJ["positive"].asBool(true);
      if (F.Var >= NumVars) {
        if (Error)
          *Error = "mars: hinge variable out of range";
        return false;
      }
      B.Factors.push_back(F);
    }
    Basis.push_back(std::move(B));
  }
  Weights = In["weights"].toDoubleVector();
  if (Basis.empty() || Weights.size() != Basis.size()) {
    if (Error)
      *Error = "mars: basis/weight arity mismatch";
    return false;
  }
  Gcv = In["gcv"].asDouble();
  return true;
}
