//===- model/Diagnostics.cpp - Model quality and effect analysis -----------------===//

#include "model/Diagnostics.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace msem;

ModelQuality msem::evaluateModel(const Model &M, const Matrix &X,
                                 const std::vector<double> &Y) {
  std::vector<double> Pred = M.predictAll(X);
  ModelQuality Q;
  Q.Mape = meanAbsolutePercentError(Y, Pred);
  Q.Rmse = rootMeanSquaredError(Y, Pred);
  Q.R2 = rSquared(Y, Pred);
  return Q;
}

double msem::mainEffect(const Model &M, const ParameterSpace &Space,
                        size_t Var, size_t Samples, Rng &R) {
  double Sum = 0.0;
  for (size_t S = 0; S < Samples; ++S) {
    DesignPoint P = Space.randomPoint(R);
    std::vector<double> Hi = Space.encode(P);
    std::vector<double> Lo = Hi;
    Hi[Var] = 1.0;
    Lo[Var] = -1.0;
    Sum += M.predict(Hi) - M.predict(Lo);
  }
  return Sum / (2.0 * static_cast<double>(Samples));
}

double msem::interactionEffect(const Model &M, const ParameterSpace &Space,
                               size_t VarA, size_t VarB, size_t Samples,
                               Rng &R) {
  double Sum = 0.0;
  for (size_t S = 0; S < Samples; ++S) {
    DesignPoint P = Space.randomPoint(R);
    std::vector<double> Base = Space.encode(P);
    auto At = [&](double A, double B) {
      std::vector<double> X = Base;
      X[VarA] = A;
      X[VarB] = B;
      return M.predict(X);
    };
    Sum += At(1, 1) - At(1, -1) - At(-1, 1) + At(-1, -1);
  }
  return Sum / (4.0 * static_cast<double>(Samples));
}

std::vector<EffectEstimate>
msem::rankEffects(const Model &M, const ParameterSpace &Space,
                  size_t Samples, size_t TopInteractions, uint64_t Seed) {
  Rng R(Seed);
  std::vector<EffectEstimate> Mains;
  for (size_t V = 0; V < Space.size(); ++V) {
    EffectEstimate E;
    E.Label = Space.param(V).Name;
    E.Coefficient = mainEffect(M, Space, V, Samples, R);
    Mains.push_back(E);
  }
  std::vector<EffectEstimate> Inters;
  for (size_t A = 0; A < Space.size(); ++A) {
    for (size_t Bv = A + 1; Bv < Space.size(); ++Bv) {
      EffectEstimate E;
      E.Label = Space.param(A).Name + " * " + Space.param(Bv).Name;
      E.Coefficient = interactionEffect(M, Space, A, Bv, Samples, R);
      Inters.push_back(E);
    }
  }
  auto ByMagnitude = [](const EffectEstimate &A, const EffectEstimate &B) {
    return std::fabs(A.Coefficient) > std::fabs(B.Coefficient);
  };
  std::sort(Inters.begin(), Inters.end(), ByMagnitude);
  if (Inters.size() > TopInteractions)
    Inters.resize(TopInteractions);

  std::vector<EffectEstimate> All = std::move(Mains);
  All.insert(All.end(), Inters.begin(), Inters.end());
  std::sort(All.begin(), All.end(), ByMagnitude);
  return All;
}
