//===- telemetry/Telemetry.h - Counters, timers, trace export ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight instrumentation for the whole experiment pipeline: a global
/// registry of named counters / gauges / histograms / timers / series, RAII
/// span timers with nesting, and pluggable output sinks:
///
///   - "summary": aligned tables on stderr (TablePrinter),
///   - "jsonl":   one JSON object per metric in MSEM_METRICS_FILE,
///   - "trace":   Chrome trace-event JSON in MSEM_TRACE_FILE, loadable in
///                chrome://tracing or https://ui.perfetto.dev.
///
/// Sinks are selected via MSEM_TELEMETRY (comma-separated list, e.g.
/// "summary,trace") or programmatically with telemetry::configure(). When
/// no sink is configured every convenience entry point is a branch on one
/// relaxed atomic load and nothing allocates; instrumented code guards any
/// expensive argument computation behind telemetry::enabled().
///
/// Metric objects returned from the registry have stable addresses for the
/// lifetime of the process, so hot paths may cache the reference. All
/// mutation is thread-safe: scalar metrics use plain atomics; the registry
/// and span/series buffers take a mutex on the (rare) slow paths.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_TELEMETRY_TELEMETRY_H
#define MSEM_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace msem {
namespace telemetry {

//===----------------------------------------------------------------------===//
// Configuration
//===----------------------------------------------------------------------===//

/// Bitmask of output sinks.
enum Sink : unsigned {
  SinkNone = 0,
  SinkSummary = 1u << 0, ///< Human-readable tables on stderr.
  SinkJsonl = 1u << 1,   ///< One JSON object per metric, one per line.
  SinkTrace = 1u << 2,   ///< Chrome trace-event JSON.
};

struct Config {
  unsigned Sinks = SinkNone;
  std::string TraceFile = "msem_trace.json";
  std::string MetricsFile = "msem_metrics.jsonl";
};

/// Parses MSEM_TELEMETRY / MSEM_TRACE_FILE / MSEM_METRICS_FILE. Unknown
/// sink names are ignored.
Config configFromEnv();

/// Overrides the environment-derived configuration (tests and demos).
/// Safe to call at any time; an earlier env-latch is replaced.
void configure(const Config &C);

/// The active configuration (latched from the environment on first use).
Config currentConfig();

/// True when at least one sink is active. One relaxed atomic load.
bool enabled();

/// True when the trace sink is active (spans and series timestamps are
/// only buffered in that case).
bool traceEnabled();

//===----------------------------------------------------------------------===//
// Metric types
//===----------------------------------------------------------------------===//

/// Monotonic unsigned counter.
class Counter {
public:
  void add(uint64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Last-write-wins floating-point value with a signed accumulate option.
class Gauge {
public:
  void set(double X) { Value.store(X, std::memory_order_relaxed); }
  void add(double Delta) {
    double Cur = Value.load(std::memory_order_relaxed);
    while (!Value.compare_exchange_weak(Cur, Cur + Delta,
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// Accumulated wall time plus invocation count (what -time-passes shows).
class Timer {
public:
  void add(uint64_t Ns) {
    TotalNs.fetch_add(Ns, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t totalNs() const { return TotalNs.load(std::memory_order_relaxed); }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> TotalNs{0};
  std::atomic<uint64_t> Count{0};
};

/// Fixed-bucket histogram. Bucket I counts observations <= Bounds[I]; one
/// implicit overflow bucket counts the rest.
class Histogram {
public:
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  size_t numBuckets() const { return Bounds.size() + 1; }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  uint64_t totalCount() const;
  const std::vector<double> &bounds() const { return Bounds; }

private:
  std::vector<double> Bounds; ///< Sorted ascending.
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
};

/// An append-only (x, y) trajectory -- GCV per pruning step, GA best per
/// generation, CI bound per window. When the trace sink is active each
/// point also carries a wall-clock timestamp and is exported as a Chrome
/// counter event, so trajectories render as counter tracks in Perfetto.
class Series {
public:
  void record(double X, double Y);

  struct Point {
    double X, Y;
    uint64_t TsNs; ///< Monotonic, 0 when the trace sink was inactive.
  };
  std::vector<Point> points() const;
  size_t size() const;

private:
  mutable std::mutex Mutex;
  std::vector<Point> Points;
};

//===----------------------------------------------------------------------===//
// Registry access
//===----------------------------------------------------------------------===//

/// Finds or creates the named metric. References stay valid until reset().
/// Always functional, even with every sink disabled.
Counter &counter(std::string_view Name);
Gauge &gauge(std::string_view Name);
Timer &timer(std::string_view Name);
Series &series(std::string_view Name);
/// \p UpperBounds is consulted only on first registration of \p Name.
Histogram &histogram(std::string_view Name, std::vector<double> UpperBounds);

//===----------------------------------------------------------------------===//
// Convenience entry points (no-ops when telemetry is disabled)
//===----------------------------------------------------------------------===//

inline void count(std::string_view Name, uint64_t Delta = 1) {
  if (enabled())
    counter(Name).add(Delta);
}
inline void gaugeSet(std::string_view Name, double X) {
  if (enabled())
    gauge(Name).set(X);
}
inline void gaugeAdd(std::string_view Name, double Delta) {
  if (enabled())
    gauge(Name).add(Delta);
}
inline void observe(std::string_view Name, double X,
                    std::vector<double> UpperBounds) {
  if (enabled())
    histogram(Name, std::move(UpperBounds)).observe(X);
}
inline void record(std::string_view Name, double X, double Y) {
  if (enabled())
    series(Name).record(X, Y);
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

/// Monotonic nanoseconds since telemetry initialization.
uint64_t nowNs();

/// RAII wall-time span. Accumulates into timer(Name) and, when the trace
/// sink is active, buffers a trace event. Nesting falls out of Chrome's
/// containment semantics for same-thread "X" events. Costs one atomic
/// load when telemetry is disabled.
class ScopedTimer {
public:
  explicit ScopedTimer(std::string_view Name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  /// Nanoseconds since construction (0 when telemetry was disabled).
  uint64_t elapsedNs() const;

private:
  std::string Name; ///< Empty when inactive.
  uint64_t StartNs = 0;
  bool Active = false;
};

/// A completed span, exposed for tests and custom sinks.
struct SpanEvent {
  std::string Name;
  uint64_t StartNs = 0;
  uint64_t DurationNs = 0;
  uint32_t ThreadId = 0; ///< Small dense index, not the OS tid.
};

/// Snapshot of all completed spans (trace sink active only).
std::vector<SpanEvent> spans();

//===----------------------------------------------------------------------===//
// Output
//===----------------------------------------------------------------------===//

/// Renders the summary tables (counters, gauges, timers sorted by total
/// time, histograms, series) regardless of configured sinks.
std::string renderSummary();

/// Renders every metric as one JSON object per line.
std::string renderMetricsJsonl();

/// Renders buffered spans and series as a Chrome trace-event JSON document.
std::string renderTraceJson();

/// Writes all configured sinks: summary to stderr, jsonl/trace to their
/// configured files. Also registered via atexit on first initialization
/// with any sink active, so programs need no explicit call.
void flush();

/// Drops all metrics, spans and the latched configuration (tests).
void reset();

} // namespace telemetry
} // namespace msem

#endif // MSEM_TELEMETRY_TELEMETRY_H
