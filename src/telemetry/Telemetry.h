//===- telemetry/Telemetry.h - Counters, timers, trace export ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight instrumentation for the whole experiment pipeline: a global
/// registry of named counters / gauges / histograms / timers / series, RAII
/// span timers with causal trace contexts, and pluggable output sinks:
///
///   - "summary": aligned tables on stderr (TablePrinter),
///   - "jsonl":   metrics snapshot in MSEM_METRICS_FILE (JSONL by default;
///                MSEM_METRICS_FORMAT=openmetrics switches to OpenMetrics
///                text exposition, see telemetry/OpenMetrics.h),
///   - "trace":   Chrome trace-event JSON in MSEM_TRACE_FILE, loadable in
///                chrome://tracing or https://ui.perfetto.dev,
///   - "events":  structured span-tree JSONL in MSEM_EVENTS_FILE with
///                stable field names (schema "msem.events.v1"), the input
///                to tools/msem_report.
///
/// Sinks are selected via MSEM_TELEMETRY (comma-separated list, e.g.
/// "summary,trace") or programmatically with telemetry::configure(). When
/// no sink is configured every convenience entry point is a branch on one
/// relaxed atomic load and nothing allocates; instrumented code guards any
/// expensive argument computation behind telemetry::enabled().
///
/// Causal tracing: every ScopedTimer is a *span* with a (trace id, span id,
/// parent span id) triple. The innermost live span on the current thread is
/// the implicit parent; crossing a thread boundary (ThreadPool tasks) the
/// enqueuing span's context is carried along and re-established with a
/// ContextGuard, so spans created inside pool tasks parent correctly to the
/// span that issued the region. All ids are *deterministic*: they are FNV
/// hashes of (parent ids, span name, explicit key or sibling ordinal) --
/// never wall-clock or thread identity -- so the span tree is bitwise
/// identical across MSEM_THREADS settings and across checkpoint resumes.
/// Within a parallel region iterations must use *keyed* spans
/// (ScopedTimer(Name, Key) with the iteration index) so sibling identity
/// does not depend on execution order.
///
/// MSEM_TRACE_SAMPLE in [0, 1] keeps that fraction of traces in the span
/// buffers (decided per trace id by hash, so sampling is deterministic and
/// whole-trace). Timers always accumulate regardless of sampling.
///
/// Metric objects returned from the registry have stable addresses for the
/// lifetime of the process, so hot paths may cache the reference. All
/// mutation is thread-safe: scalar metrics use plain atomics; the registry
/// and span/series buffers take a mutex on the (rare) slow paths.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_TELEMETRY_TELEMETRY_H
#define MSEM_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace msem {
namespace telemetry {

//===----------------------------------------------------------------------===//
// Configuration
//===----------------------------------------------------------------------===//

/// Bitmask of output sinks.
enum Sink : unsigned {
  SinkNone = 0,
  SinkSummary = 1u << 0, ///< Human-readable tables on stderr.
  SinkJsonl = 1u << 1,   ///< Metrics snapshot (JSONL or OpenMetrics).
  SinkTrace = 1u << 2,   ///< Chrome trace-event JSON.
  SinkEvents = 1u << 3,  ///< Structured span-tree JSONL event log.
};

struct Config {
  unsigned Sinks = SinkNone;
  std::string TraceFile = "msem_trace.json";
  std::string MetricsFile = "msem_metrics.jsonl";
  std::string EventsFile = "msem_events.jsonl";
  /// "jsonl" (default) or "openmetrics" -- how the SinkJsonl metrics
  /// snapshot is rendered (both to MetricsFile).
  std::string MetricsFormat = "jsonl";
  /// Fraction of traces kept in the span buffers, in [0, 1]. Decided per
  /// trace id, deterministically.
  double TraceSample = 1.0;
};

/// Parses MSEM_TELEMETRY / MSEM_TRACE_FILE / MSEM_METRICS_FILE /
/// MSEM_EVENTS_FILE / MSEM_METRICS_FORMAT / MSEM_TRACE_SAMPLE. Unknown
/// sink names are ignored.
Config configFromEnv();

/// Overrides the environment-derived configuration (tests and demos).
/// Safe to call at any time; an earlier env-latch is replaced.
void configure(const Config &C);

/// The active configuration (latched from the environment on first use).
Config currentConfig();

/// True when at least one sink is active (or metric recording is forced).
/// One relaxed atomic load.
bool enabled();

/// True when a span-buffering sink (trace or events) is active.
bool traceEnabled();

/// Forces enabled() true even with every sink off, so spans and metrics
/// are tracked without any output being written. The sampling profiler
/// (telemetry/SampleProfiler.h) uses this: attribution needs live span
/// nesting, but a profiled run should not be obliged to configure sinks.
/// Cleared by the next configure()/reset().
void setMetricsForced(bool Forced);

//===----------------------------------------------------------------------===//
// Metric types
//===----------------------------------------------------------------------===//

/// Monotonic unsigned counter.
class Counter {
public:
  void add(uint64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Last-write-wins floating-point value with a signed accumulate option.
class Gauge {
public:
  void set(double X) { Value.store(X, std::memory_order_relaxed); }
  void add(double Delta) {
    double Cur = Value.load(std::memory_order_relaxed);
    while (!Value.compare_exchange_weak(Cur, Cur + Delta,
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// Accumulated wall time plus invocation count (what -time-passes shows).
class Timer {
public:
  void add(uint64_t Ns) {
    TotalNs.fetch_add(Ns, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t totalNs() const { return TotalNs.load(std::memory_order_relaxed); }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> TotalNs{0};
  std::atomic<uint64_t> Count{0};
};

/// Fixed-bucket histogram. Bucket I counts observations <= Bounds[I]; one
/// implicit overflow bucket counts the rest. Also tracks the running sum
/// and maximum so quantiles can be estimated and OpenMetrics exposition
/// can emit the standard _sum series.
class Histogram {
public:
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  size_t numBuckets() const { return Bounds.size() + 1; }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  uint64_t totalCount() const;
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  double max() const { return Max.load(std::memory_order_relaxed); }
  const std::vector<double> &bounds() const { return Bounds; }

  /// Estimated Q-quantile (Q in [0, 1]) by linear interpolation within the
  /// containing bucket, clamped to the observed maximum. 0 when empty.
  double quantile(double Q) const;

private:
  std::vector<double> Bounds; ///< Sorted ascending.
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
  std::atomic<double> Sum{0.0};
  std::atomic<double> Max{0.0};
};

/// Unit label inferred from a histogram/timer name suffix ("_us" -> "us",
/// "_ns" -> "ns", "_ms" -> "ms"; "" otherwise). Rendered next to quantile
/// columns and as the OpenMetrics unit hint.
std::string_view unitForMetricName(std::string_view Name);

/// An append-only (x, y) trajectory -- GCV per pruning step, GA best per
/// generation, CI bound per window. When the trace sink is active each
/// point also carries a wall-clock timestamp and is exported as a Chrome
/// counter event, so trajectories render as counter tracks in Perfetto.
class Series {
public:
  void record(double X, double Y);

  struct Point {
    double X, Y;
    uint64_t TsNs; ///< Monotonic, 0 when the trace sink was inactive.
  };
  std::vector<Point> points() const;
  size_t size() const;

private:
  mutable std::mutex Mutex;
  std::vector<Point> Points;
};

//===----------------------------------------------------------------------===//
// Registry access
//===----------------------------------------------------------------------===//

/// Finds or creates the named metric. References stay valid until reset().
/// Always functional, even with every sink disabled.
Counter &counter(std::string_view Name);
Gauge &gauge(std::string_view Name);
Timer &timer(std::string_view Name);
Series &series(std::string_view Name);
/// \p UpperBounds is consulted only on first registration of \p Name.
Histogram &histogram(std::string_view Name, std::vector<double> UpperBounds);

//===----------------------------------------------------------------------===//
// Convenience entry points (no-ops when telemetry is disabled)
//===----------------------------------------------------------------------===//

inline void count(std::string_view Name, uint64_t Delta = 1) {
  if (enabled())
    counter(Name).add(Delta);
}
inline void gaugeSet(std::string_view Name, double X) {
  if (enabled())
    gauge(Name).set(X);
}
inline void gaugeAdd(std::string_view Name, double Delta) {
  if (enabled())
    gauge(Name).add(Delta);
}
inline void observe(std::string_view Name, double X,
                    std::vector<double> UpperBounds) {
  if (enabled())
    histogram(Name, std::move(UpperBounds)).observe(X);
}
inline void record(std::string_view Name, double X, double Y) {
  if (enabled())
    series(Name).record(X, Y);
}

//===----------------------------------------------------------------------===//
// Spans and trace contexts
//===----------------------------------------------------------------------===//

/// Monotonic nanoseconds since telemetry initialization.
uint64_t nowNs();

/// Deterministic trace-id derivation from a stable identity (campaign
/// name, artifact id, input path...) plus a salt (seed, request ordinal).
/// Never returns 0 (0 means "no trace").
uint64_t deriveTraceId(std::string_view Identity, uint64_t Salt);

/// The causal coordinates a span hands to its children: which trace it
/// belongs to and its own span id (the child's parent id). Copyable across
/// threads; re-established on the destination thread with a ContextGuard.
struct TraceContext {
  uint64_t TraceId = 0; ///< 0 = no active trace.
  uint64_t SpanId = 0;  ///< Parent span id for children (0 = root).
  bool Sampled = true;  ///< Whether this trace's spans are buffered.

  bool valid() const { return TraceId != 0; }
};

/// The innermost live span's context on the current thread (or the adopted
/// cross-thread context established by a ContextGuard; invalid context when
/// neither exists).
TraceContext currentContext();

/// Fills \p Out with up to \p Max C-string pointers naming the calling
/// thread's live span chain, innermost first; returns the count. The
/// pointers alias the live ScopedTimer objects and are valid only while
/// those spans are open -- which is guaranteed inside a signal handler
/// interrupting this thread, the intended caller (the sampling profiler).
/// Async-signal-safe: no locks, no allocation, thread-local reads only.
size_t currentSpanNames(const char **Out, size_t Max);

/// Number of ScopedTimer spans currently open across all threads (relaxed
/// counter; /statusz reporting).
size_t activeSpanCount();

/// Number of completed spans buffered for the trace/events sinks.
size_t bufferedSpanCount();

/// RAII adoption of a trace context captured on another thread (or earlier
/// on this one). While alive, spans created on this thread parent to
/// \p Ctx.SpanId. ThreadPool wraps every parallel iteration in one, so
/// spans inside pool tasks join the enqueuing span's tree. Restores the
/// previous context (adopted or natural) on destruction.
class ContextGuard {
public:
  explicit ContextGuard(const TraceContext &Ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard &) = delete;
  ContextGuard &operator=(const ContextGuard &) = delete;

private:
  TraceContext SavedCtx;
  void *SavedSpan = nullptr;
};

/// RAII wall-time span. Accumulates into timer(Name) and, when a span sink
/// is active and the trace is sampled, buffers a SpanEvent carrying its
/// deterministic (trace, span, parent) ids. Costs one atomic load when
/// telemetry is disabled.
///
/// Identity rules (all FNV-64 derived, no wall-clock):
///   - ScopedTimer(Name, TraceRoot{Id}) starts a new trace with the given
///     id; use deriveTraceId() on stable job/request identity.
///   - ScopedTimer(Name, Key) is a keyed child: its span id mixes the
///     explicit key, so siblings created in any order (parallel regions)
///     have order-independent identity. Key should be the iteration index
///     or another stable per-sibling value.
///   - ScopedTimer(Name) is an ordinal child: its span id mixes a sibling
///     ordinal taken from the parent span on the same thread (deterministic
///     for sequential code). Under an adopted (cross-thread) context the
///     ordinal is always 0 -- same-named unkeyed siblings share identity
///     there, so parallel regions should use keyed spans.
///   - With no surrounding context at all the span roots its own trace,
///     with the id derived from the name (and key, if any).
class ScopedTimer {
public:
  /// Tag type selecting the root-span constructor.
  struct TraceRoot {
    uint64_t Id;
  };

  explicit ScopedTimer(std::string_view Name);
  ScopedTimer(std::string_view Name, uint64_t Key);
  ScopedTimer(std::string_view Name, TraceRoot Root);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  /// Nanoseconds since construction (0 when telemetry was disabled).
  uint64_t elapsedNs() const;

  uint64_t traceId() const { return TraceId; }
  uint64_t spanId() const { return SpanId; }
  uint64_t parentSpanId() const { return ParentSpanId; }

  /// True when this span will be buffered on destruction (span sink active
  /// and trace sampled). Guard expensive detail computation on this.
  bool capturing() const { return Capture; }

  /// Free-form annotation carried into the span event ("detail" field):
  /// the design-point cache key, artifact id, input file...
  void setDetail(std::string_view D);

private:
  friend TraceContext currentContext();
  friend size_t currentSpanNames(const char **Out, size_t Max);

  void init(std::string_view NameIn, bool HasKey, uint64_t Key, bool IsRoot,
            uint64_t RootId);

  std::string Name; ///< Empty when inactive.
  std::string Detail;
  uint64_t StartNs = 0;
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  uint64_t ParentSpanId = 0;
  uint64_t NextChild = 0; ///< Ordinal source for same-thread unkeyed children.
  ScopedTimer *PrevSpan = nullptr;
  bool Active = false;
  bool Capture = false;
  bool Sampled = false;
};

/// A completed span, exposed for tests and custom sinks.
struct SpanEvent {
  std::string Name;
  std::string Detail;      ///< Optional annotation ("" when unset).
  uint64_t TraceId = 0;    ///< Deterministic trace identity.
  uint64_t SpanId = 0;     ///< Deterministic span identity.
  uint64_t ParentSpanId = 0; ///< 0 for trace roots.
  uint64_t StartNs = 0;
  uint64_t DurationNs = 0;
  uint32_t ThreadId = 0; ///< Small dense index, not the OS tid.
};

/// Snapshot of all completed spans (span sink active only).
std::vector<SpanEvent> spans();

//===----------------------------------------------------------------------===//
// Metrics snapshot (for exposition formats and tests)
//===----------------------------------------------------------------------===//

/// A consistent copy of every registered metric, decoupled from the live
/// registry. Input to the OpenMetrics renderer and msem_report.
struct MetricsSnapshot {
  struct CounterValue {
    std::string Name;
    uint64_t Value;
  };
  struct GaugeValue {
    std::string Name;
    double Value;
  };
  struct TimerValue {
    std::string Name;
    uint64_t Count;
    uint64_t TotalNs;
  };
  struct HistogramValue {
    std::string Name;
    std::vector<double> Bounds;
    std::vector<uint64_t> Counts; ///< Bounds.size() + 1 (overflow last).
    double Sum;
    double Max;
  };
  struct SeriesValue {
    std::string Name;
    std::vector<Series::Point> Points;
  };

  std::vector<CounterValue> Counters;
  std::vector<GaugeValue> Gauges;
  std::vector<TimerValue> Timers;
  std::vector<HistogramValue> Histograms;
  std::vector<SeriesValue> SeriesList;
};

/// Snapshots every registered metric (sorted by name, deterministic).
MetricsSnapshot snapshotMetrics();

//===----------------------------------------------------------------------===//
// Output
//===----------------------------------------------------------------------===//

/// Renders the summary tables (counters, gauges, timers sorted by total
/// time, histograms with p50/p95/p99/max, series) regardless of configured
/// sinks.
std::string renderSummary();

/// Renders every metric as one JSON object per line.
std::string renderMetricsJsonl();

/// Renders buffered spans and series as a Chrome trace-event JSON document.
/// Spans are emitted in canonical (id-sorted) order and carry their trace /
/// span / parent ids in args.
std::string renderTraceJson();

/// Renders the structured event log: a "meta" line (schema version + build
/// stamp) followed by one "span" object per buffered span, sorted into
/// canonical order so the file is byte-comparable across runs with
/// identical timing. Schema: "msem.events.v1" (see telemetry/EventLog.h).
std::string renderEventsJsonl();

/// The timing-free projection of the span tree: one line per span with its
/// ids, name and detail, sorted canonically. Identical across MSEM_THREADS
/// settings for a deterministic workload -- the determinism oracle used by
/// tests.
std::string renderCanonicalSpans();

/// Writes all configured sinks: summary to stderr, metrics (JSONL or
/// OpenMetrics per Config::MetricsFormat) / trace / events to their
/// configured files. Also registered via atexit on first initialization
/// with any sink active, so programs need no explicit call.
void flush();

/// Writes the events sink now (the same bytes flush() would write), so
/// live readers -- the campaign coordinator's fleet /tracez view tails
/// each worker's events file -- see spans before the process exits.
/// No-op when the events sink is not configured.
void dumpEvents();

/// Requests an on-demand metrics snapshot: the next maybeDumpMetrics()
/// call writes the metrics file. Also triggered by SIGUSR1 (the handler
/// only sets a flag; the write happens at the next instrumentation point).
void requestMetricsDump();

/// Writes the metrics snapshot now if a dump was requested (SIGUSR1 or
/// requestMetricsDump). Polled from span completion and thread-pool region
/// boundaries; cheap (one relaxed load) when no dump is pending.
void maybeDumpMetrics();

/// Drops all metrics, spans and the latched configuration (tests).
void reset();

} // namespace telemetry
} // namespace msem

#endif // MSEM_TELEMETRY_TELEMETRY_H
