//===- telemetry/Telemetry.cpp - Counters, timers, trace export ---------------===//

#include "telemetry/Telemetry.h"

#include "support/Env.h"
#include "support/Format.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace msem;
using namespace msem::telemetry;

//===----------------------------------------------------------------------===//
// Global state
//===----------------------------------------------------------------------===//

namespace {

/// Fast-path flags, readable without the registry mutex.
std::atomic<bool> AnyEnabled{false};
std::atomic<bool> TraceOn{false};
std::atomic<bool> ConfigLatched{false};

struct Registry {
  std::mutex Mutex;
  Config Cfg;
  bool AtExitRegistered = false;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();

  // Ordered maps give deterministic sink output. Metric objects are
  // heap-allocated so references survive rehash-free forever.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> Timers;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> Series_;

  std::vector<SpanEvent> Spans;
};

Registry &registry() {
  static Registry *R = new Registry; // Intentionally leaked: atexit-safe.
  return *R;
}

void applyConfigLocked(Registry &R, const Config &C) {
  R.Cfg = C;
  AnyEnabled.store(C.Sinks != SinkNone, std::memory_order_relaxed);
  TraceOn.store((C.Sinks & SinkTrace) != 0, std::memory_order_relaxed);
  ConfigLatched.store(true, std::memory_order_release);
  if (C.Sinks != SinkNone && !R.AtExitRegistered) {
    R.AtExitRegistered = true;
    std::atexit([] { telemetry::flush(); });
  }
}

/// Latches the env-derived config on first use.
void ensureLatched() {
  if (ConfigLatched.load(std::memory_order_acquire))
    return;
  Config C = configFromEnv();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  if (!ConfigLatched.load(std::memory_order_relaxed))
    applyConfigLocked(R, C);
}

/// Small dense per-thread id for trace events.
uint32_t threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

std::string escapeJson(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void writeFileOrWarn(const std::string &Path, const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "msem telemetry: cannot write %s\n", Path.c_str());
    return;
  }
  std::fwrite(Content.data(), 1, Content.size(), F);
  std::fclose(F);
}

} // namespace

//===----------------------------------------------------------------------===//
// Configuration
//===----------------------------------------------------------------------===//

Config telemetry::configFromEnv() {
  Config C;
  // A fresh parse, not the process-wide env() snapshot: this function's
  // contract is "what does the environment say right now" (tests setenv
  // mid-process and re-read), and it only runs at configuration time.
  EnvConfig E = parseEnv();
  if (!E.Telemetry.empty()) {
    for (const std::string &Raw : splitString(E.Telemetry, ',')) {
      std::string Name = trimString(Raw);
      if (Name == "summary")
        C.Sinks |= SinkSummary;
      else if (Name == "jsonl")
        C.Sinks |= SinkJsonl;
      else if (Name == "trace")
        C.Sinks |= SinkTrace;
      else if (Name == "all")
        C.Sinks |= SinkSummary | SinkJsonl | SinkTrace;
      else if (!Name.empty())
        std::fprintf(stderr,
                     "msem telemetry: unknown sink '%s' in MSEM_TELEMETRY "
                     "(expected summary, jsonl, trace, all)\n",
                     Name.c_str());
    }
  }
  if (!E.TraceFile.empty())
    C.TraceFile = E.TraceFile;
  if (!E.MetricsFile.empty())
    C.MetricsFile = E.MetricsFile;
  return C;
}

void telemetry::configure(const Config &C) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  applyConfigLocked(R, C);
}

Config telemetry::currentConfig() {
  ensureLatched();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Cfg;
}

bool telemetry::enabled() {
  ensureLatched();
  return AnyEnabled.load(std::memory_order_relaxed);
}

bool telemetry::traceEnabled() {
  ensureLatched();
  return TraceOn.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Metric types
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)) {
  std::sort(Bounds.begin(), Bounds.end());
  Bounds.erase(std::unique(Bounds.begin(), Bounds.end()), Bounds.end());
  Buckets = std::make_unique<std::atomic<uint64_t>[]>(Bounds.size() + 1);
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double X) {
  size_t I =
      std::lower_bound(Bounds.begin(), Bounds.end(), X) - Bounds.begin();
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::totalCount() const {
  uint64_t Total = 0;
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Total += Buckets[I].load(std::memory_order_relaxed);
  return Total;
}

void Series::record(double X, double Y) {
  uint64_t Ts = traceEnabled() ? nowNs() : 0;
  std::lock_guard<std::mutex> Lock(Mutex);
  Points.push_back({X, Y, Ts});
}

std::vector<Series::Point> Series::points() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Points;
}

size_t Series::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Points.size();
}

//===----------------------------------------------------------------------===//
// Registry access
//===----------------------------------------------------------------------===//

namespace {

template <typename MapT, typename... Args>
auto &findOrCreate(MapT &Map, std::string_view Name, Args &&...CtorArgs) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = Map.find(Name);
  if (It == Map.end())
    It = Map.emplace(std::string(Name),
                     std::make_unique<typename MapT::mapped_type::element_type>(
                         std::forward<Args>(CtorArgs)...))
             .first;
  return *It->second;
}

} // namespace

Counter &telemetry::counter(std::string_view Name) {
  return findOrCreate(registry().Counters, Name);
}

Gauge &telemetry::gauge(std::string_view Name) {
  return findOrCreate(registry().Gauges, Name);
}

Timer &telemetry::timer(std::string_view Name) {
  return findOrCreate(registry().Timers, Name);
}

Series &telemetry::series(std::string_view Name) {
  return findOrCreate(registry().Series_, Name);
}

Histogram &telemetry::histogram(std::string_view Name,
                                std::vector<double> UpperBounds) {
  return findOrCreate(registry().Histograms, Name, std::move(UpperBounds));
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

uint64_t telemetry::nowNs() {
  Registry &R = registry();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - R.Epoch)
          .count());
}

ScopedTimer::ScopedTimer(std::string_view Name) {
  if (!enabled())
    return;
  Active = true;
  this->Name = std::string(Name);
  StartNs = nowNs();
}

ScopedTimer::~ScopedTimer() {
  if (!Active)
    return;
  uint64_t End = nowNs();
  uint64_t Dur = End > StartNs ? End - StartNs : 0;
  timer(Name).add(Dur);
  if (traceEnabled()) {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Spans.push_back({std::move(Name), StartNs, Dur, threadId()});
  }
}

uint64_t ScopedTimer::elapsedNs() const {
  return Active ? nowNs() - StartNs : 0;
}

std::vector<SpanEvent> telemetry::spans() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Spans;
}

//===----------------------------------------------------------------------===//
// Sinks
//===----------------------------------------------------------------------===//

std::string telemetry::renderSummary() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;

  if (!R.Counters.empty()) {
    TablePrinter T({"Counter", "Value"});
    for (const auto &[Name, C] : R.Counters)
      T.addRow({Name, formatString("%llu", (unsigned long long)C->value())});
    Out += "-- telemetry: counters --\n" + T.render();
  }
  if (!R.Gauges.empty()) {
    TablePrinter T({"Gauge", "Value"});
    for (const auto &[Name, G] : R.Gauges)
      T.addRow({Name, formatString("%.6g", G->value())});
    Out += "-- telemetry: gauges --\n" + T.render();
  }
  if (!R.Timers.empty()) {
    // Sorted by total time descending, the -time-passes convention.
    std::vector<std::pair<std::string, const Timer *>> Sorted;
    for (const auto &[Name, T] : R.Timers)
      Sorted.emplace_back(Name, T.get());
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const auto &A, const auto &B) {
                       return A.second->totalNs() > B.second->totalNs();
                     });
    TablePrinter T({"Timer", "Calls", "Total ms", "Mean ms"});
    for (const auto &[Name, Tm] : Sorted) {
      double TotalMs = Tm->totalNs() / 1e6;
      uint64_t N = Tm->count();
      T.addRow({Name, formatString("%llu", (unsigned long long)N),
                formatString("%.3f", TotalMs),
                formatString("%.3f", N ? TotalMs / N : 0.0)});
    }
    Out += "-- telemetry: timers --\n" + T.render();
  }
  if (!R.Histograms.empty()) {
    TablePrinter T({"Histogram", "Count", "Buckets (<=bound: n)"});
    for (const auto &[Name, H] : R.Histograms) {
      std::vector<std::string> Parts;
      for (size_t I = 0; I < H->bounds().size(); ++I)
        if (uint64_t N = H->bucketCount(I))
          Parts.push_back(formatString("<=%g: %llu", H->bounds()[I],
                                       (unsigned long long)N));
      if (uint64_t N = H->bucketCount(H->bounds().size()))
        Parts.push_back(formatString(">: %llu", (unsigned long long)N));
      T.addRow({Name,
                formatString("%llu", (unsigned long long)H->totalCount()),
                joinStrings(Parts, "  ")});
    }
    Out += "-- telemetry: histograms --\n" + T.render();
  }
  if (!R.Series_.empty()) {
    TablePrinter T({"Series", "Points", "First (x, y)", "Last (x, y)"});
    for (const auto &[Name, S] : R.Series_) {
      auto Pts = S->points();
      std::string First =
          Pts.empty() ? "-"
                      : formatString("(%g, %g)", Pts.front().X, Pts.front().Y);
      std::string Last =
          Pts.empty() ? "-"
                      : formatString("(%g, %g)", Pts.back().X, Pts.back().Y);
      T.addRow({Name, formatString("%zu", Pts.size()), First, Last});
    }
    Out += "-- telemetry: series --\n" + T.render();
  }
  return Out;
}

std::string telemetry::renderMetricsJsonl() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;

  for (const auto &[Name, C] : R.Counters)
    Out += formatString("{\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                        escapeJson(Name).c_str(),
                        (unsigned long long)C->value());
  for (const auto &[Name, G] : R.Gauges)
    Out += formatString("{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.17g}\n",
                        escapeJson(Name).c_str(), G->value());
  for (const auto &[Name, T] : R.Timers)
    Out += formatString("{\"type\":\"timer\",\"name\":\"%s\",\"count\":%llu,"
                        "\"total_ns\":%llu}\n",
                        escapeJson(Name).c_str(),
                        (unsigned long long)T->count(),
                        (unsigned long long)T->totalNs());
  for (const auto &[Name, H] : R.Histograms) {
    std::vector<std::string> BoundStrs, CountStrs;
    for (double B : H->bounds())
      BoundStrs.push_back(formatString("%.17g", B));
    for (size_t I = 0; I <= H->bounds().size(); ++I)
      CountStrs.push_back(
          formatString("%llu", (unsigned long long)H->bucketCount(I)));
    Out += formatString(
        "{\"type\":\"histogram\",\"name\":\"%s\",\"bounds\":[%s],"
        "\"counts\":[%s]}\n",
        escapeJson(Name).c_str(), joinStrings(BoundStrs, ",").c_str(),
        joinStrings(CountStrs, ",").c_str());
  }
  for (const auto &[Name, S] : R.Series_) {
    std::vector<std::string> PointStrs;
    for (const Series::Point &P : S->points())
      PointStrs.push_back(formatString("[%.17g,%.17g]", P.X, P.Y));
    Out += formatString("{\"type\":\"series\",\"name\":\"%s\",\"points\":[%s]}\n",
                        escapeJson(Name).c_str(),
                        joinStrings(PointStrs, ",").c_str());
  }
  return Out;
}

std::string telemetry::renderTraceJson() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::string> Events;

  // Complete ("X") events: ts/dur in microseconds per the trace format.
  for (const SpanEvent &S : R.Spans)
    Events.push_back(formatString(
        "{\"name\":\"%s\",\"cat\":\"msem\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
        escapeJson(S.Name).c_str(), S.StartNs / 1e3, S.DurationNs / 1e3,
        S.ThreadId));

  // Series with timestamps export as counter ("C") tracks.
  for (const auto &[Name, S] : R.Series_)
    for (const Series::Point &P : S->points())
      if (P.TsNs)
        Events.push_back(formatString(
            "{\"name\":\"%s\",\"cat\":\"msem\",\"ph\":\"C\",\"ts\":%.3f,"
            "\"pid\":1,\"args\":{\"value\":%.17g}}",
            escapeJson(Name).c_str(), P.TsNs / 1e3, P.Y));

  return "{\"traceEvents\":[\n" + joinStrings(Events, ",\n") +
         "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void telemetry::flush() {
  Config C = currentConfig();
  if (C.Sinks & SinkSummary) {
    std::string Summary = renderSummary();
    std::fwrite(Summary.data(), 1, Summary.size(), stderr);
  }
  if (C.Sinks & SinkJsonl)
    writeFileOrWarn(C.MetricsFile, renderMetricsJsonl());
  if (C.Sinks & SinkTrace)
    writeFileOrWarn(C.TraceFile, renderTraceJson());
}

void telemetry::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Counters.clear();
  R.Gauges.clear();
  R.Timers.clear();
  R.Histograms.clear();
  R.Series_.clear();
  R.Spans.clear();
  R.Cfg = Config();
  AnyEnabled.store(false, std::memory_order_relaxed);
  TraceOn.store(false, std::memory_order_relaxed);
  // Leave ConfigLatched set: a reset configuration means "disabled", not
  // "re-read the environment".
  ConfigLatched.store(true, std::memory_order_release);
}
