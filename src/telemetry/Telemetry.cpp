//===- telemetry/Telemetry.cpp - Counters, timers, trace export ---------------===//

#include "telemetry/Telemetry.h"

#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "telemetry/OpenMetrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <tuple>

using namespace msem;
using namespace msem::telemetry;

//===----------------------------------------------------------------------===//
// Global state
//===----------------------------------------------------------------------===//

namespace {

/// Fast-path flags, readable without the registry mutex.
std::atomic<bool> AnyEnabled{false};
std::atomic<bool> TraceOn{false};
std::atomic<bool> ConfigLatched{false};
std::atomic<double> SampleRate{1.0};
/// setMetricsForced: record metrics/spans even with every sink off.
std::atomic<bool> MetricsForced{false};
/// Live ScopedTimer spans across all threads (/statusz reporting).
std::atomic<size_t> LiveSpans{0};
/// Set by SIGUSR1 / requestMetricsDump, drained by maybeDumpMetrics.
/// Async-signal-safety: the handler performs exactly one lock-free store
/// on this flag -- no allocation, no locks, no IO -- and the snapshot is
/// rendered later from normal (instrumentation-point) context.
std::atomic<bool> DumpRequested{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "the SIGUSR1 handler stores this flag from signal context");

struct Registry {
  std::mutex Mutex;
  Config Cfg;
  bool AtExitRegistered = false;
  bool SignalInstalled = false;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();

  // Ordered maps give deterministic sink output. Metric objects are
  // heap-allocated so references survive rehash-free forever.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> Timers;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> Series_;

  std::vector<SpanEvent> Spans;
};

Registry &registry() {
  static Registry *R = new Registry; // Intentionally leaked: atexit-safe.
  return *R;
}

extern "C" void msemDumpSignalHandler(int) {
  // Async-signal-safe: one lock-free atomic store; the actual snapshot is
  // written at the next instrumentation point (maybeDumpMetrics).
  DumpRequested.store(true, std::memory_order_relaxed);
}

void applyConfigLocked(Registry &R, const Config &C) {
  R.Cfg = C;
  AnyEnabled.store(C.Sinks != SinkNone ||
                       MetricsForced.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  TraceOn.store((C.Sinks & (SinkTrace | SinkEvents)) != 0,
                std::memory_order_relaxed);
  SampleRate.store(std::clamp(C.TraceSample, 0.0, 1.0),
                   std::memory_order_relaxed);
  ConfigLatched.store(true, std::memory_order_release);
  if (C.Sinks != SinkNone && !R.AtExitRegistered) {
    R.AtExitRegistered = true;
    std::atexit([] { telemetry::flush(); });
  }
#ifdef SIGUSR1
  if (C.Sinks != SinkNone && !R.SignalInstalled) {
    R.SignalInstalled = true;
    // sigaction over std::signal: SA_RESTART keeps a SIGUSR1 arriving
    // mid-syscall from surfacing EINTR to code that never expected it,
    // and the disposition is installed exactly once with known flags.
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = msemDumpSignalHandler;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = SA_RESTART;
    sigaction(SIGUSR1, &SA, nullptr);
  }
#endif
}

/// Latches the env-derived config on first use.
void ensureLatched() {
  if (ConfigLatched.load(std::memory_order_acquire))
    return;
  Config C = configFromEnv();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  if (!ConfigLatched.load(std::memory_order_relaxed))
    applyConfigLocked(R, C);
}

/// Small dense per-thread id for trace events.
uint32_t threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

//===----------------------------------------------------------------------===//
// Deterministic span identity
//===----------------------------------------------------------------------===//

// All span/trace ids are FNV-64 derived from names, explicit keys and
// sibling ordinals -- never wall-clock or thread identity -- so the span
// tree is reproducible across thread counts and process restarts.

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
/// Domain tags keeping root / keyed-child / ordinal-child ids disjoint.
constexpr uint64_t kTagRoot = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kTagKeyed = 0xc2b2ae3d27d4eb4full;
constexpr uint64_t kTagOrdinal = 0x165667b19e3779f9ull;

uint64_t fnv64(std::string_view S) {
  uint64_t H = kFnvOffset;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= kFnvPrime;
  }
  return H;
}

uint64_t mix64(uint64_t H, uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= (V >> (I * 8)) & 0xff;
    H *= kFnvPrime;
  }
  return H;
}

uint64_t nonZero(uint64_t H) { return H ? H : 1; }

/// Whole-trace sampling: a pure function of the trace id, so a trace is
/// either fully buffered or fully dropped, identically on every run.
bool sampleKeep(uint64_t TraceId) {
  double Rate = SampleRate.load(std::memory_order_relaxed);
  if (Rate >= 1.0)
    return true;
  if (Rate <= 0.0)
    return false;
  uint64_t H = mix64(kFnvOffset, TraceId);
  return static_cast<double>(H % 1000000) < Rate * 1e6;
}

/// The innermost live span on this thread (implicit parent for children).
thread_local ScopedTimer *CurrentSpan = nullptr;
/// Cross-thread context adopted via ContextGuard (consulted only when no
/// span object is live on this thread).
thread_local TraceContext AdoptedCtx;

/// Canonical span order: ids first, timing last, so sorting is stable
/// across runs and the timing-free projection is thread-count invariant.
bool spanLessCanonical(const SpanEvent &A, const SpanEvent &B) {
  auto Key = [](const SpanEvent &S) {
    return std::tie(S.TraceId, S.ParentSpanId, S.SpanId, S.Name, S.Detail,
                    S.StartNs, S.DurationNs, S.ThreadId);
  };
  return Key(A) < Key(B);
}

std::string escapeJson(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void writeFileOrWarn(const std::string &Path, const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "msem telemetry: cannot write %s\n", Path.c_str());
    return;
  }
  std::fwrite(Content.data(), 1, Content.size(), F);
  std::fclose(F);
}

std::string renderMetricsSnapshotFile(const Config &C) {
  if (C.MetricsFormat == "openmetrics")
    return renderOpenMetrics(snapshotMetrics());
  return renderMetricsJsonl();
}

} // namespace

//===----------------------------------------------------------------------===//
// Configuration
//===----------------------------------------------------------------------===//

Config telemetry::configFromEnv() {
  Config C;
  // A fresh parse, not the process-wide env() snapshot: this function's
  // contract is "what does the environment say right now" (tests setenv
  // mid-process and re-read), and it only runs at configuration time.
  EnvConfig E = parseEnv();
  if (!E.Telemetry.empty()) {
    for (const std::string &Raw : splitString(E.Telemetry, ',')) {
      std::string Name = trimString(Raw);
      if (Name == "summary")
        C.Sinks |= SinkSummary;
      else if (Name == "jsonl")
        C.Sinks |= SinkJsonl;
      else if (Name == "trace")
        C.Sinks |= SinkTrace;
      else if (Name == "events")
        C.Sinks |= SinkEvents;
      else if (Name == "all")
        C.Sinks |= SinkSummary | SinkJsonl | SinkTrace | SinkEvents;
      else if (!Name.empty())
        std::fprintf(stderr,
                     "msem telemetry: unknown sink '%s' in MSEM_TELEMETRY "
                     "(expected summary, jsonl, trace, events, all)\n",
                     Name.c_str());
    }
  }
  if (!E.TraceFile.empty())
    C.TraceFile = E.TraceFile;
  if (!E.MetricsFile.empty())
    C.MetricsFile = E.MetricsFile;
  if (!E.EventsFile.empty())
    C.EventsFile = E.EventsFile;
  if (E.MetricsFormat == "jsonl" || E.MetricsFormat == "openmetrics") {
    C.MetricsFormat = E.MetricsFormat;
  } else if (!E.MetricsFormat.empty()) {
    std::fprintf(stderr,
                 "msem telemetry: unknown MSEM_METRICS_FORMAT '%s' "
                 "(expected jsonl or openmetrics)\n",
                 E.MetricsFormat.c_str());
  }
  C.TraceSample = E.TraceSample;
  return C;
}

void telemetry::configure(const Config &C) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  applyConfigLocked(R, C);
}

Config telemetry::currentConfig() {
  ensureLatched();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Cfg;
}

bool telemetry::enabled() {
  ensureLatched();
  return AnyEnabled.load(std::memory_order_relaxed);
}

bool telemetry::traceEnabled() {
  ensureLatched();
  return TraceOn.load(std::memory_order_relaxed);
}

void telemetry::setMetricsForced(bool Forced) {
  ensureLatched();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  MetricsForced.store(Forced, std::memory_order_relaxed);
  AnyEnabled.store(R.Cfg.Sinks != SinkNone || Forced,
                   std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Metric types
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)) {
  std::sort(Bounds.begin(), Bounds.end());
  Bounds.erase(std::unique(Bounds.begin(), Bounds.end()), Bounds.end());
  Buckets = std::make_unique<std::atomic<uint64_t>[]>(Bounds.size() + 1);
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double X) {
  size_t I =
      std::lower_bound(Bounds.begin(), Bounds.end(), X) - Bounds.begin();
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  double Cur = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Cur, Cur + X,
                                    std::memory_order_relaxed)) {
  }
  double CurMax = Max.load(std::memory_order_relaxed);
  while (X > CurMax && !Max.compare_exchange_weak(
                           CurMax, X, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::totalCount() const {
  uint64_t Total = 0;
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Total += Buckets[I].load(std::memory_order_relaxed);
  return Total;
}

double Histogram::quantile(double Q) const {
  uint64_t Total = totalCount();
  if (Total == 0)
    return 0.0;
  double ObservedMax = max();
  double Rank = std::clamp(Q, 0.0, 1.0) * static_cast<double>(Total);
  uint64_t Cum = 0;
  for (size_t I = 0; I < numBuckets(); ++I) {
    uint64_t N = bucketCount(I);
    if (N == 0)
      continue;
    if (static_cast<double>(Cum + N) < Rank) {
      Cum += N;
      continue;
    }
    // Rank falls inside bucket I: interpolate linearly between its edges
    // (lower edge 0 for the first bucket, the observed max for the
    // overflow bucket) and clamp to the observed maximum.
    double Lo = I == 0 ? 0.0 : Bounds[I - 1];
    double Hi = I < Bounds.size() ? Bounds[I] : ObservedMax;
    if (Hi < Lo)
      Hi = Lo;
    double Frac =
        std::clamp((Rank - static_cast<double>(Cum)) / static_cast<double>(N),
                   0.0, 1.0);
    return std::min(Lo + (Hi - Lo) * Frac, ObservedMax);
  }
  return ObservedMax;
}

std::string_view telemetry::unitForMetricName(std::string_view Name) {
  auto EndsWith = [&](std::string_view Suffix) {
    return Name.size() >= Suffix.size() &&
           Name.substr(Name.size() - Suffix.size()) == Suffix;
  };
  if (EndsWith("_us"))
    return "us";
  if (EndsWith("_ns"))
    return "ns";
  if (EndsWith("_ms"))
    return "ms";
  return "";
}

void Series::record(double X, double Y) {
  uint64_t Ts = traceEnabled() ? nowNs() : 0;
  std::lock_guard<std::mutex> Lock(Mutex);
  Points.push_back({X, Y, Ts});
}

std::vector<Series::Point> Series::points() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Points;
}

size_t Series::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Points.size();
}

//===----------------------------------------------------------------------===//
// Registry access
//===----------------------------------------------------------------------===//

namespace {

template <typename MapT, typename... Args>
auto &findOrCreate(MapT &Map, std::string_view Name, Args &&...CtorArgs) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = Map.find(Name);
  if (It == Map.end())
    It = Map.emplace(std::string(Name),
                     std::make_unique<typename MapT::mapped_type::element_type>(
                         std::forward<Args>(CtorArgs)...))
             .first;
  return *It->second;
}

} // namespace

Counter &telemetry::counter(std::string_view Name) {
  return findOrCreate(registry().Counters, Name);
}

Gauge &telemetry::gauge(std::string_view Name) {
  return findOrCreate(registry().Gauges, Name);
}

Timer &telemetry::timer(std::string_view Name) {
  return findOrCreate(registry().Timers, Name);
}

Series &telemetry::series(std::string_view Name) {
  return findOrCreate(registry().Series_, Name);
}

Histogram &telemetry::histogram(std::string_view Name,
                                std::vector<double> UpperBounds) {
  return findOrCreate(registry().Histograms, Name, std::move(UpperBounds));
}

//===----------------------------------------------------------------------===//
// Spans and trace contexts
//===----------------------------------------------------------------------===//

uint64_t telemetry::nowNs() {
  Registry &R = registry();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - R.Epoch)
          .count());
}

uint64_t telemetry::deriveTraceId(std::string_view Identity, uint64_t Salt) {
  return nonZero(mix64(fnv64(Identity), Salt));
}

TraceContext telemetry::currentContext() {
  if (CurrentSpan)
    return {CurrentSpan->TraceId, CurrentSpan->SpanId, CurrentSpan->Sampled};
  return AdoptedCtx;
}

size_t telemetry::currentSpanNames(const char **Out, size_t Max) {
  // Async-signal-safe by construction: walks this thread's own span chain
  // (plain thread_local pointer reads; the interrupted thread cannot be
  // mid-way through a chain update that matters -- init() links a span
  // only after its Name is assigned, and ~ScopedTimer unlinks before the
  // name is moved out).
  size_t N = 0;
  for (ScopedTimer *S = CurrentSpan; S && N < Max; S = S->PrevSpan)
    Out[N++] = S->Name.c_str();
  return N;
}

size_t telemetry::activeSpanCount() {
  return LiveSpans.load(std::memory_order_relaxed);
}

size_t telemetry::bufferedSpanCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Spans.size();
}

ContextGuard::ContextGuard(const TraceContext &Ctx) {
  SavedSpan = CurrentSpan;
  SavedCtx = AdoptedCtx;
  CurrentSpan = nullptr;
  AdoptedCtx = Ctx;
}

ContextGuard::~ContextGuard() {
  AdoptedCtx = SavedCtx;
  CurrentSpan = static_cast<ScopedTimer *>(SavedSpan);
}

void ScopedTimer::init(std::string_view NameIn, bool HasKey, uint64_t Key,
                       bool IsRoot, uint64_t RootId) {
  if (!enabled())
    return;
  Active = true;
  Name = std::string(NameIn);
  uint64_t NameHash = fnv64(NameIn);
  TraceContext Ctx = currentContext();
  if (IsRoot) {
    TraceId = nonZero(RootId);
    ParentSpanId = 0;
    SpanId = nonZero(mix64(mix64(TraceId, kTagRoot), NameHash));
    Sampled = sampleKeep(TraceId);
  } else if (Ctx.valid()) {
    TraceId = Ctx.TraceId;
    ParentSpanId = Ctx.SpanId;
    Sampled = Ctx.Sampled;
    uint64_t Tag, Sibling;
    if (HasKey) {
      Tag = kTagKeyed;
      Sibling = Key;
    } else {
      // Same-thread sibling ordinal: deterministic for sequential code.
      // Under an adopted context there is no parent object on this thread,
      // so every unkeyed child gets ordinal 0 -- parallel regions must use
      // keyed spans for per-sibling identity.
      Tag = kTagOrdinal;
      Sibling = CurrentSpan ? CurrentSpan->NextChild++ : 0;
    }
    SpanId = nonZero(mix64(
        mix64(mix64(mix64(TraceId, ParentSpanId), NameHash), Tag), Sibling));
  } else {
    // No surrounding context: the span roots its own trace.
    TraceId = nonZero(
        mix64(NameHash, HasKey ? mix64(kTagKeyed, Key) : kTagRoot));
    ParentSpanId = 0;
    SpanId = nonZero(mix64(mix64(TraceId, kTagRoot), NameHash));
    Sampled = sampleKeep(TraceId);
  }
  Capture = traceEnabled() && Sampled;
  PrevSpan = CurrentSpan;
  CurrentSpan = this;
  LiveSpans.fetch_add(1, std::memory_order_relaxed);
  StartNs = nowNs();
}

ScopedTimer::ScopedTimer(std::string_view Name) {
  init(Name, /*HasKey=*/false, 0, /*IsRoot=*/false, 0);
}

ScopedTimer::ScopedTimer(std::string_view Name, uint64_t Key) {
  init(Name, /*HasKey=*/true, Key, /*IsRoot=*/false, 0);
}

ScopedTimer::ScopedTimer(std::string_view Name, TraceRoot Root) {
  init(Name, /*HasKey=*/false, 0, /*IsRoot=*/true, Root.Id);
}

ScopedTimer::~ScopedTimer() {
  if (!Active)
    return;
  CurrentSpan = PrevSpan;
  LiveSpans.fetch_sub(1, std::memory_order_relaxed);
  uint64_t End = nowNs();
  uint64_t Dur = End > StartNs ? End - StartNs : 0;
  timer(Name).add(Dur);
  if (Capture) {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Spans.push_back({std::move(Name), std::move(Detail), TraceId, SpanId,
                       ParentSpanId, StartNs, Dur, threadId()});
  }
  maybeDumpMetrics();
}

uint64_t ScopedTimer::elapsedNs() const {
  return Active ? nowNs() - StartNs : 0;
}

void ScopedTimer::setDetail(std::string_view D) {
  if (Capture)
    Detail = std::string(D);
}

std::vector<SpanEvent> telemetry::spans() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Spans;
}

//===----------------------------------------------------------------------===//
// Metrics snapshot
//===----------------------------------------------------------------------===//

MetricsSnapshot telemetry::snapshotMetrics() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  MetricsSnapshot S;
  for (const auto &[Name, C] : R.Counters)
    S.Counters.push_back({Name, C->value()});
  for (const auto &[Name, G] : R.Gauges)
    S.Gauges.push_back({Name, G->value()});
  for (const auto &[Name, T] : R.Timers)
    S.Timers.push_back({Name, T->count(), T->totalNs()});
  for (const auto &[Name, H] : R.Histograms) {
    MetricsSnapshot::HistogramValue V;
    V.Name = Name;
    V.Bounds = H->bounds();
    for (size_t I = 0; I <= H->bounds().size(); ++I)
      V.Counts.push_back(H->bucketCount(I));
    V.Sum = H->sum();
    V.Max = H->max();
    S.Histograms.push_back(std::move(V));
  }
  for (const auto &[Name, Sr] : R.Series_)
    S.SeriesList.push_back({Name, Sr->points()});
  return S;
}

//===----------------------------------------------------------------------===//
// Sinks
//===----------------------------------------------------------------------===//

std::string telemetry::renderSummary() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;

  if (!R.Counters.empty()) {
    TablePrinter T({"Counter", "Value"});
    for (const auto &[Name, C] : R.Counters)
      T.addRow({Name, formatString("%llu", (unsigned long long)C->value())});
    Out += "-- telemetry: counters --\n" + T.render();
  }
  if (!R.Gauges.empty()) {
    TablePrinter T({"Gauge", "Value"});
    for (const auto &[Name, G] : R.Gauges)
      T.addRow({Name, formatString("%.6g", G->value())});
    Out += "-- telemetry: gauges --\n" + T.render();
  }
  if (!R.Timers.empty()) {
    // Sorted by total time descending, the -time-passes convention.
    std::vector<std::pair<std::string, const Timer *>> Sorted;
    for (const auto &[Name, T] : R.Timers)
      Sorted.emplace_back(Name, T.get());
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const auto &A, const auto &B) {
                       return A.second->totalNs() > B.second->totalNs();
                     });
    TablePrinter T({"Timer", "Calls", "Total ms", "Mean ms"});
    for (const auto &[Name, Tm] : Sorted) {
      double TotalMs = Tm->totalNs() / 1e6;
      uint64_t N = Tm->count();
      T.addRow({Name, formatString("%llu", (unsigned long long)N),
                formatString("%.3f", TotalMs),
                formatString("%.3f", N ? TotalMs / N : 0.0)});
    }
    Out += "-- telemetry: timers --\n" + T.render();
  }
  if (!R.Histograms.empty()) {
    TablePrinter T({"Histogram", "Count", "p50", "p95", "p99", "Max", "Unit",
                    "Buckets (<=bound: n)"});
    for (const auto &[Name, H] : R.Histograms) {
      std::vector<std::string> Parts;
      for (size_t I = 0; I < H->bounds().size(); ++I)
        if (uint64_t N = H->bucketCount(I))
          Parts.push_back(formatString("<=%g: %llu", H->bounds()[I],
                                       (unsigned long long)N));
      if (uint64_t N = H->bucketCount(H->bounds().size()))
        Parts.push_back(formatString(">: %llu", (unsigned long long)N));
      std::string_view Unit = unitForMetricName(Name);
      T.addRow({Name,
                formatString("%llu", (unsigned long long)H->totalCount()),
                formatString("%.4g", H->quantile(0.50)),
                formatString("%.4g", H->quantile(0.95)),
                formatString("%.4g", H->quantile(0.99)),
                formatString("%.4g", H->max()),
                Unit.empty() ? "-" : std::string(Unit),
                joinStrings(Parts, "  ")});
    }
    Out += "-- telemetry: histograms --\n" + T.render();
  }
  if (!R.Series_.empty()) {
    TablePrinter T({"Series", "Points", "First (x, y)", "Last (x, y)"});
    for (const auto &[Name, S] : R.Series_) {
      auto Pts = S->points();
      std::string First =
          Pts.empty() ? "-"
                      : formatString("(%g, %g)", Pts.front().X, Pts.front().Y);
      std::string Last =
          Pts.empty() ? "-"
                      : formatString("(%g, %g)", Pts.back().X, Pts.back().Y);
      T.addRow({Name, formatString("%zu", Pts.size()), First, Last});
    }
    Out += "-- telemetry: series --\n" + T.render();
  }
  return Out;
}

std::string telemetry::renderMetricsJsonl() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;

  for (const auto &[Name, C] : R.Counters)
    Out += formatString("{\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                        escapeJson(Name).c_str(),
                        (unsigned long long)C->value());
  for (const auto &[Name, G] : R.Gauges)
    Out += formatString("{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.17g}\n",
                        escapeJson(Name).c_str(), G->value());
  for (const auto &[Name, T] : R.Timers)
    Out += formatString("{\"type\":\"timer\",\"name\":\"%s\",\"count\":%llu,"
                        "\"total_ns\":%llu}\n",
                        escapeJson(Name).c_str(),
                        (unsigned long long)T->count(),
                        (unsigned long long)T->totalNs());
  for (const auto &[Name, H] : R.Histograms) {
    std::vector<std::string> BoundStrs, CountStrs;
    for (double B : H->bounds())
      BoundStrs.push_back(formatString("%.17g", B));
    for (size_t I = 0; I <= H->bounds().size(); ++I)
      CountStrs.push_back(
          formatString("%llu", (unsigned long long)H->bucketCount(I)));
    Out += formatString(
        "{\"type\":\"histogram\",\"name\":\"%s\",\"bounds\":[%s],"
        "\"counts\":[%s],\"sum\":%.17g,\"max\":%.17g}\n",
        escapeJson(Name).c_str(), joinStrings(BoundStrs, ",").c_str(),
        joinStrings(CountStrs, ",").c_str(), H->sum(), H->max());
  }
  for (const auto &[Name, S] : R.Series_) {
    std::vector<std::string> PointStrs;
    for (const Series::Point &P : S->points())
      PointStrs.push_back(formatString("[%.17g,%.17g]", P.X, P.Y));
    Out += formatString("{\"type\":\"series\",\"name\":\"%s\",\"points\":[%s]}\n",
                        escapeJson(Name).c_str(),
                        joinStrings(PointStrs, ",").c_str());
  }
  return Out;
}

namespace {

std::vector<SpanEvent> sortedSpansCopy() {
  Registry &R = registry();
  std::vector<SpanEvent> Sorted;
  {
    std::lock_guard<std::mutex> Lock(R.Mutex);
    Sorted = R.Spans;
  }
  std::stable_sort(Sorted.begin(), Sorted.end(), spanLessCanonical);
  return Sorted;
}

} // namespace

std::string telemetry::renderTraceJson() {
  std::vector<SpanEvent> Sorted = sortedSpansCopy();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::string> Events;

  // Complete ("X") events: ts/dur in microseconds per the trace format.
  // args carries the causal ids so the tree survives the format.
  for (const SpanEvent &S : Sorted)
    Events.push_back(formatString(
        "{\"name\":\"%s\",\"cat\":\"msem\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"trace\":\"%016llx\","
        "\"span\":\"%016llx\",\"parent\":\"%016llx\",\"detail\":\"%s\"}}",
        escapeJson(S.Name).c_str(), S.StartNs / 1e3, S.DurationNs / 1e3,
        S.ThreadId, (unsigned long long)S.TraceId,
        (unsigned long long)S.SpanId, (unsigned long long)S.ParentSpanId,
        escapeJson(S.Detail).c_str()));

  // Series with timestamps export as counter ("C") tracks.
  for (const auto &[Name, S] : R.Series_)
    for (const Series::Point &P : S->points())
      if (P.TsNs)
        Events.push_back(formatString(
            "{\"name\":\"%s\",\"cat\":\"msem\",\"ph\":\"C\",\"ts\":%.3f,"
            "\"pid\":1,\"args\":{\"value\":%.17g}}",
            escapeJson(Name).c_str(), P.TsNs / 1e3, P.Y));

  return "{\"traceEvents\":[\n" + joinStrings(Events, ",\n") +
         "\n],\"displayTimeUnit\":\"ms\"}\n";
}

namespace {

/// Wall-clock time of telemetry initialization, in Unix nanoseconds:
/// span StartNs values are monotonic offsets from the registry epoch, so
/// wall time = anchor + StartNs. This is what lets a cross-process reader
/// (msem_report --merge-traces) place each process's spans on one shared
/// timeline. Cached so every render from one process carries the same
/// anchor.
uint64_t unixAnchorNs() {
  static const uint64_t Anchor = [] {
    uint64_t Wall = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    uint64_t Mono = nowNs();
    return Wall > Mono ? Wall - Mono : 0;
  }();
  return Anchor;
}

} // namespace

std::string telemetry::renderEventsJsonl() {
  std::vector<SpanEvent> Sorted = sortedSpansCopy();
  std::string Out = formatString(
      "{\"event\":\"meta\",\"schema\":\"msem.events.v1\",\"build\":\"%s\","
      "\"unix_ns\":\"%016llx\"}\n",
      escapeJson(buildStamp()).c_str(),
      (unsigned long long)unixAnchorNs());
  for (const SpanEvent &S : Sorted)
    Out += formatString(
        "{\"event\":\"span\",\"name\":\"%s\",\"detail\":\"%s\","
        "\"trace\":\"%016llx\",\"span\":\"%016llx\",\"parent\":\"%016llx\","
        "\"start_ns\":%llu,\"dur_ns\":%llu,\"tid\":%u}\n",
        escapeJson(S.Name).c_str(), escapeJson(S.Detail).c_str(),
        (unsigned long long)S.TraceId, (unsigned long long)S.SpanId,
        (unsigned long long)S.ParentSpanId,
        (unsigned long long)S.StartNs, (unsigned long long)S.DurationNs,
        S.ThreadId);
  return Out;
}

std::string telemetry::renderCanonicalSpans() {
  std::vector<SpanEvent> Sorted = sortedSpansCopy();
  // Re-sort on the timing-free key only, so the projection is identical
  // across thread counts (where timestamps differ but ids do not).
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const SpanEvent &A, const SpanEvent &B) {
                     return std::tie(A.TraceId, A.ParentSpanId, A.SpanId,
                                     A.Name, A.Detail) <
                            std::tie(B.TraceId, B.ParentSpanId, B.SpanId,
                                     B.Name, B.Detail);
                   });
  std::string Out;
  for (const SpanEvent &S : Sorted)
    Out += formatString("trace=%016llx span=%016llx parent=%016llx "
                        "name=%s detail=%s\n",
                        (unsigned long long)S.TraceId,
                        (unsigned long long)S.SpanId,
                        (unsigned long long)S.ParentSpanId, S.Name.c_str(),
                        S.Detail.c_str());
  return Out;
}

void telemetry::flush() {
  Config C = currentConfig();
  if (C.Sinks & SinkSummary) {
    std::string Summary = renderSummary();
    std::fwrite(Summary.data(), 1, Summary.size(), stderr);
  }
  if (C.Sinks & SinkJsonl)
    writeFileOrWarn(C.MetricsFile, renderMetricsSnapshotFile(C));
  if (C.Sinks & SinkTrace)
    writeFileOrWarn(C.TraceFile, renderTraceJson());
  if (C.Sinks & SinkEvents)
    writeFileOrWarn(C.EventsFile, renderEventsJsonl());
  // A dump requested just before exit is satisfied by this flush.
  DumpRequested.store(false, std::memory_order_relaxed);
}

void telemetry::dumpEvents() {
  Config C = currentConfig();
  if (C.Sinks & SinkEvents)
    writeFileOrWarn(C.EventsFile, renderEventsJsonl());
}

void telemetry::requestMetricsDump() {
  DumpRequested.store(true, std::memory_order_relaxed);
}

void telemetry::maybeDumpMetrics() {
  if (!DumpRequested.load(std::memory_order_relaxed))
    return;
  if (!DumpRequested.exchange(false, std::memory_order_relaxed))
    return;
  Config C = currentConfig();
  writeFileOrWarn(C.MetricsFile, renderMetricsSnapshotFile(C));
}

void telemetry::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Counters.clear();
  R.Gauges.clear();
  R.Timers.clear();
  R.Histograms.clear();
  R.Series_.clear();
  R.Spans.clear();
  R.Cfg = Config();
  MetricsForced.store(false, std::memory_order_relaxed);
  AnyEnabled.store(false, std::memory_order_relaxed);
  TraceOn.store(false, std::memory_order_relaxed);
  SampleRate.store(1.0, std::memory_order_relaxed);
  DumpRequested.store(false, std::memory_order_relaxed);
  // Leave ConfigLatched set: a reset configuration means "disabled", not
  // "re-read the environment".
  ConfigLatched.store(true, std::memory_order_release);
}
