//===- telemetry/Introspection.cpp - Telemetry HTTP endpoints -------------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Introspection.h"

#include "support/Format.h"
#include "support/StatsServer.h"
#include "telemetry/EventLog.h"
#include "telemetry/OpenMetrics.h"
#include "telemetry/SampleProfiler.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <memory>
#include <mutex>

using namespace msem;
using namespace msem::telemetry;

namespace {

/// The coordinator-installed hooks (see setFleetMetricsProvider /
/// setTracezSection). Copied out under the mutex and invoked outside it,
/// so a provider may itself take telemetry locks.
std::mutex HooksMutex;
std::function<std::string()> FleetMetricsProvider;
std::function<std::string()> TracezSection;

std::function<std::string()> copyHook(const std::function<std::string()> &H) {
  std::lock_guard<std::mutex> Lock(HooksMutex);
  return H;
}

StatsResponse handleMetrics(const StatsRequest &) {
  StatsResponse R;
  // The official OpenMetrics media type; curl and Prometheus scrapers key
  // on it.
  R.ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8";
  if (std::function<std::string()> Fleet = copyHook(FleetMetricsProvider))
    R.Body = Fleet();
  else
    R.Body = renderOpenMetrics(snapshotMetrics());
  return R;
}

void renderSpanNode(const std::vector<SpanEvent> &Spans, const SpanTree &Tree,
                    size_t NodeIdx, int Depth, std::string &Out) {
  const SpanEvent &S = Spans[Tree.Nodes[NodeIdx].SpanIndex];
  Out += formatString("%*s%s  %.3f ms", Depth * 2, "", S.Name.c_str(),
                      static_cast<double>(S.DurationNs) / 1e6);
  if (!S.Detail.empty()) {
    Out += "  [";
    Out += S.Detail;
    Out += ']';
  }
  Out += '\n';
  for (size_t Child : Tree.Nodes[NodeIdx].Children)
    renderSpanNode(Spans, Tree, Child, Depth + 1, Out);
}

StatsResponse handleTracez(const StatsRequest &) {
  StatsResponse R;
  // Bound the snapshot: a long campaign buffers many thousands of spans,
  // and /tracez is a glance, not an export (the events sink is the
  // export). Keep the newest spans so the page shows current activity.
  constexpr size_t MaxSpans = 2000;
  std::vector<SpanEvent> All = spans();
  size_t Total = All.size();
  if (All.size() > MaxSpans)
    All.erase(All.begin(), All.end() - static_cast<long>(MaxSpans));
  SpanTree Tree = buildSpanTree(All);

  R.Body = formatString("tracez: %zu buffered spans (%zu shown), "
                        "%zu live, depth %zu\n\n",
                        Total, All.size(), activeSpanCount(), Tree.depth());
  if (All.empty()) {
    R.Body += "no buffered spans -- enable a span sink "
              "(MSEM_TELEMETRY=trace or events) to populate this page\n";
    if (std::function<std::string()> Extra = copyHook(TracezSection))
      R.Body += Extra();
    return R;
  }
  // Newest roots first: the reader wants to see what the process is doing
  // now, not how it booted.
  std::vector<size_t> Roots(Tree.Roots.rbegin(), Tree.Roots.rend());
  for (size_t Root : Roots)
    renderSpanNode(All, Tree, Root, 0, R.Body);
  if (std::function<std::string()> Extra = copyHook(TracezSection))
    R.Body += Extra();
  return R;
}

StatsResponse handleProfilez(const StatsRequest &) {
  StatsResponse R;
  uint64_t Total = SampleProfiler::sampleCount();
  uint64_t Dropped = SampleProfiler::droppedCount();
  R.Body = formatString("profilez: running=%s samples=%llu dropped=%llu\n",
                        SampleProfiler::running() ? "yes" : "no",
                        static_cast<unsigned long long>(Total),
                        static_cast<unsigned long long>(Dropped));
  if (Total == 0) {
    R.Body += "no samples -- set MSEM_PROFILE=<out.collapsed> (and "
              "optionally MSEM_PROFILE_HZ) to arm the sampling profiler\n";
    return R;
  }
  R.Body += "\n";
  R.Body += SampleProfiler::renderCollapsed();
  return R;
}

std::string telemetryStatusSection() {
  Config C = currentConfig();
  std::vector<std::string> Sinks;
  if (C.Sinks & SinkSummary)
    Sinks.push_back("summary");
  if (C.Sinks & SinkJsonl)
    Sinks.push_back("jsonl(" + C.MetricsFormat + ")");
  if (C.Sinks & SinkTrace)
    Sinks.push_back("trace");
  if (C.Sinks & SinkEvents)
    Sinks.push_back("events");
  return formatString(
      "sinks: %s\nenabled: %s\nactive spans: %zu\nbuffered spans: %zu\n"
      "trace sample: %.3f\nprofiler: %s (%llu samples, %llu dropped)",
      Sinks.empty() ? "(none)" : joinStrings(Sinks, ",").c_str(),
      enabled() ? "yes" : "no", activeSpanCount(), bufferedSpanCount(),
      C.TraceSample, SampleProfiler::running() ? "running" : "stopped",
      static_cast<unsigned long long>(SampleProfiler::sampleCount()),
      static_cast<unsigned long long>(SampleProfiler::droppedCount()));
}

} // namespace

bool telemetry::ensureIntrospection() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    StatsServer::registerHandler("/metrics", handleMetrics);
    StatsServer::registerHandler("/tracez", handleTracez);
    StatsServer::registerHandler("/profilez", handleProfilez);
    // Leaked on purpose: the telemetry section is process-lifetime, and a
    // static ScopedStatusProvider would race provider-registry teardown
    // order at exit.
    static ScopedStatusProvider *TelemetrySection =
        new ScopedStatusProvider("telemetry", telemetryStatusSection);
    (void)TelemetrySection;
    SampleProfiler::autoStartFromEnv();
  });
  return StatsServer::maybeStartFromEnv();
}

void telemetry::setFleetMetricsProvider(
    std::function<std::string()> Provider) {
  std::lock_guard<std::mutex> Lock(HooksMutex);
  FleetMetricsProvider = std::move(Provider);
}

void telemetry::setTracezSection(std::function<std::string()> Section) {
  std::lock_guard<std::mutex> Lock(HooksMutex);
  TracezSection = std::move(Section);
}
