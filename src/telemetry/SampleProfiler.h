//===- telemetry/SampleProfiler.h - Signal-based sampling profiler -*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-hosted sampling profiler: ITIMER_PROF fires SIGPROF against the
/// process CPU clock (the kernel delivers it to a currently-running
/// thread), and the handler attributes the sample to that thread's live
/// telemetry-span chain -- so profiles speak the same vocabulary as the
/// trace ("campaign.run;campaign.build;sim.smarts;smarts.window"), and the
/// simulator hot loop gets ground-truth self-time data before anyone
/// optimizes it.
///
/// The handler is async-signal-safe by construction: it walks the
/// interrupted thread's own span chain (telemetry::currentSpanNames -- no
/// locks, no allocation), folds the names into a collapsed-stack string in
/// a stack buffer, and aggregates into a preallocated lock-free
/// open-addressing table keyed by stack hash (CAS claims a slot, atomic
/// counters accumulate). Samples that lose a claim race or overflow the
/// probe window are counted as dropped, never blocked on.
///
/// Because attribution needs live spans, start() forces metric recording
/// on (telemetry::setMetricsForced) -- a profiled run does not need any
/// telemetry sink configured, and no sink means nothing extra is written.
/// Sampling never perturbs results: simulated cycle counts are a pure
/// function of the design point, and the profiler only reads.
///
/// Output is the classic collapsed flamegraph format, one
/// "stack;frames;innermost count" line per distinct stack -- directly
/// consumable by flamegraph.pl and rendered by `msem_report --profile`.
/// Samples with no live span fold into the "(no span)" bucket, so
/// coverage (the fraction of samples landing in named spans) is visible.
///
/// Environment wiring (support/Env): MSEM_PROFILE names the output file
/// and arms autoStartFromEnv(); MSEM_PROFILE_HZ sets the sampling rate
/// (per CPU-second, default 500).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_TELEMETRY_SAMPLEPROFILER_H
#define MSEM_TELEMETRY_SAMPLEPROFILER_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace msem {
namespace telemetry {

/// Process-wide sampling profiler (SIGPROF has one disposition, so there
/// is exactly one). All methods are static and thread-safe.
class SampleProfiler {
public:
  struct Options {
    /// Samples per CPU-second (ITIMER_PROF interval = 1e6/Hz micros).
    int Hz = 500;
  };

  /// Arms ITIMER_PROF and installs the SIGPROF handler. Forces telemetry
  /// metric recording on so span attribution works sinkless. No-op when
  /// already running.
  static void start(Options O);

  /// Disarms the timer and restores the previous SIGPROF disposition.
  /// Collected samples survive stop() (and further start() calls append).
  static void stop();

  static bool running();

  /// Starts with MSEM_PROFILE_HZ when MSEM_PROFILE is set, and registers
  /// an atexit hook writing the collapsed profile there. Idempotent; the
  /// call-sites are the same long-running entry points that start the
  /// stats server. Returns whether the profiler is running afterwards.
  static bool autoStartFromEnv();

  /// Total samples taken (including dropped and unattributed).
  static uint64_t sampleCount();

  /// Samples lost to claim races / probe overflow (diagnostic; expected
  /// ~0 in practice).
  static uint64_t droppedCount();

  /// Snapshot of the aggregated profile: (collapsed stack, samples),
  /// sorted by sample count descending then stack name. Unattributed
  /// samples appear under "(no span)".
  static std::vector<std::pair<std::string, uint64_t>> collapsedStacks();

  /// The flamegraph.pl input document: "stack count\n" per entry, in
  /// collapsedStacks() order.
  static std::string renderCollapsed();

  /// Writes renderCollapsed() to \p Path atomically. Returns false with a
  /// diagnostic on IO failure.
  static bool dump(const std::string &Path, std::string *Error = nullptr);

  /// Clears accumulated samples (tests).
  static void resetSamples();
};

} // namespace telemetry
} // namespace msem

#endif // MSEM_TELEMETRY_SAMPLEPROFILER_H
