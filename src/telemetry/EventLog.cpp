//===- telemetry/EventLog.cpp - Structured event-log ingestion ------------===//

#include "telemetry/EventLog.h"

#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>
#include <unordered_map>

using namespace msem;
using namespace msem::telemetry;

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

bool parseHex64(const Json &V, uint64_t &Out) {
  const std::string &S = V.asString();
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 16);
  return End && *End == '\0';
}

} // namespace

bool telemetry::parseEventsJsonl(std::string_view Text, EventLog &Out,
                                 std::string *Error) {
  size_t LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = formatString("events line %zu: %s", LineNo, Msg.c_str());
    return false;
  };

  Out = EventLog();
  size_t Pos = 0;
  bool SawMeta = false;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string Line(Nl == std::string_view::npos
                         ? Text.substr(Pos)
                         : Text.substr(Pos, Nl - Pos));
    Pos = Nl == std::string_view::npos ? Text.size() : Nl + 1;
    if (Line.empty())
      continue;
    ++LineNo;

    std::string JsonError;
    Json V = Json::parse(Line, &JsonError);
    if (V.isNull() && !JsonError.empty())
      return Fail("malformed JSON (" + JsonError + ")");
    if (V.kind() != Json::Kind::Object)
      return Fail("expected a JSON object");
    const std::string &Event = V["event"].asString();
    if (Event == "meta") {
      if (SawMeta)
        return Fail("duplicate meta line");
      if (LineNo != 1)
        return Fail("meta line must come first");
      SawMeta = true;
      Out.Schema = V["schema"].asString();
      Out.Build = V["build"].asString();
      if (Out.Schema != "msem.events.v1")
        return Fail("unknown schema '" + Out.Schema + "'");
      // Optional wall-clock anchor (absent in older logs).
      if (V["unix_ns"].kind() == Json::Kind::String)
        parseHex64(V["unix_ns"], Out.UnixNs);
      continue;
    }
    if (!SawMeta)
      return Fail("first line must be the meta record");
    if (Event != "span")
      return Fail("unknown event kind '" + Event + "'");

    SpanEvent S;
    if (V["name"].kind() != Json::Kind::String)
      return Fail("span without name");
    S.Name = V["name"].asString();
    S.Detail = V["detail"].asString();
    if (!parseHex64(V["trace"], S.TraceId) ||
        !parseHex64(V["span"], S.SpanId) ||
        !parseHex64(V["parent"], S.ParentSpanId))
      return Fail("span with malformed trace/span/parent id");
    if (S.TraceId == 0 || S.SpanId == 0)
      return Fail("span with zero trace or span id");
    if (V["start_ns"].kind() != Json::Kind::Number ||
        V["dur_ns"].kind() != Json::Kind::Number)
      return Fail("span without start_ns/dur_ns");
    S.StartNs = static_cast<uint64_t>(V["start_ns"].asDouble());
    S.DurationNs = static_cast<uint64_t>(V["dur_ns"].asDouble());
    S.ThreadId = static_cast<uint32_t>(V["tid"].asInt());
    Out.Spans.push_back(std::move(S));
  }
  if (!SawMeta)
    return Fail("empty document (no meta line)");
  return true;
}

//===----------------------------------------------------------------------===//
// Span forest
//===----------------------------------------------------------------------===//

SpanTree telemetry::buildSpanTree(const std::vector<SpanEvent> &Spans) {
  SpanTree Tree;
  Tree.Nodes.resize(Spans.size());
  // First occurrence wins for duplicate span ids (same-named ordinal-0
  // siblings under an adopted context share identity by design).
  std::unordered_map<uint64_t, size_t> ById;
  ById.reserve(Spans.size());
  for (size_t I = 0; I < Spans.size(); ++I) {
    Tree.Nodes[I].SpanIndex = I;
    ById.emplace(Spans[I].SpanId, I);
  }
  for (size_t I = 0; I < Spans.size(); ++I) {
    uint64_t Parent = Spans[I].ParentSpanId;
    auto It = Parent ? ById.find(Parent) : ById.end();
    if (It != ById.end() && It->second != I)
      Tree.Nodes[It->second].Children.push_back(I);
    else
      Tree.Roots.push_back(I);
  }
  return Tree;
}

size_t SpanTree::depth() const {
  size_t Max = 0;
  // Explicit stack; the visit cap guards against pathological id cycles
  // from a corrupted log.
  std::vector<std::pair<size_t, size_t>> Stack; // (node, depth)
  for (size_t R : Roots)
    Stack.push_back({R, 1});
  size_t Visited = 0;
  while (!Stack.empty() && Visited <= Nodes.size()) {
    auto [N, D] = Stack.back();
    Stack.pop_back();
    ++Visited;
    Max = std::max(Max, D);
    for (size_t C : Nodes[N].Children)
      Stack.push_back({C, D + 1});
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// Aggregation
//===----------------------------------------------------------------------===//

namespace {

/// Duration minus child-covered time (clamped: clock jitter can make the
/// child sum slightly exceed the parent).
uint64_t selfNs(const std::vector<SpanEvent> &Spans, const SpanTree &Tree,
                size_t Node) {
  uint64_t ChildNs = 0;
  for (size_t C : Tree.Nodes[Node].Children)
    ChildNs += Spans[C].DurationNs;
  uint64_t Dur = Spans[Node].DurationNs;
  return ChildNs >= Dur ? 0 : Dur - ChildNs;
}

} // namespace

std::vector<PhaseStat>
telemetry::aggregatePhases(const std::vector<SpanEvent> &Spans,
                           const SpanTree &Tree) {
  std::map<std::string, PhaseStat> ByName;
  for (size_t I = 0; I < Spans.size(); ++I) {
    PhaseStat &P = ByName[Spans[I].Name];
    P.Name = Spans[I].Name;
    P.Count += 1;
    P.TotalNs += Spans[I].DurationNs;
    P.SelfNs += selfNs(Spans, Tree, I);
    P.MaxNs = std::max(P.MaxNs, Spans[I].DurationNs);
  }
  std::vector<PhaseStat> Out;
  for (auto &[Name, P] : ByName)
    Out.push_back(std::move(P));
  std::stable_sort(Out.begin(), Out.end(),
                   [](const PhaseStat &A, const PhaseStat &B) {
                     if (A.SelfNs != B.SelfNs)
                       return A.SelfNs > B.SelfNs;
                     return A.Name < B.Name;
                   });
  return Out;
}

std::vector<std::pair<std::string, uint64_t>>
telemetry::collapseStacks(const std::vector<SpanEvent> &Spans,
                          const SpanTree &Tree) {
  std::map<std::string, uint64_t> Stacks;
  // DFS with the running name path; self time accumulates at each frame.
  struct Frame {
    size_t Node;
    std::string Path;
  };
  std::vector<Frame> Stack;
  for (size_t R : Tree.Roots)
    Stack.push_back({R, Spans[R].Name});
  size_t Visited = 0;
  while (!Stack.empty() && Visited <= Tree.Nodes.size()) {
    Frame F = std::move(Stack.back());
    Stack.pop_back();
    ++Visited;
    Stacks[F.Path] += selfNs(Spans, Tree, F.Node);
    for (size_t C : Tree.Nodes[F.Node].Children)
      Stack.push_back({C, F.Path + ";" + Spans[C].Name});
  }
  std::vector<std::pair<std::string, uint64_t>> Out(Stacks.begin(),
                                                    Stacks.end());
  std::stable_sort(Out.begin(), Out.end(),
                   [](const auto &A, const auto &B) {
                     if (A.second != B.second)
                       return A.second > B.second;
                     return A.first < B.first;
                   });
  return Out;
}

std::vector<SpanEvent>
telemetry::slowestSpans(const std::vector<SpanEvent> &Spans,
                        std::string_view Name, size_t N) {
  std::vector<SpanEvent> Matching;
  for (const SpanEvent &S : Spans)
    if (S.Name == Name)
      Matching.push_back(S);
  std::stable_sort(Matching.begin(), Matching.end(),
                   [](const SpanEvent &A, const SpanEvent &B) {
                     if (A.DurationNs != B.DurationNs)
                       return A.DurationNs > B.DurationNs;
                     return std::tie(A.TraceId, A.SpanId, A.Detail) <
                            std::tie(B.TraceId, B.SpanId, B.Detail);
                   });
  if (Matching.size() > N)
    Matching.resize(N);
  return Matching;
}

//===----------------------------------------------------------------------===//
// Metrics snapshot ingestion
//===----------------------------------------------------------------------===//

bool telemetry::parseMetricsJsonl(std::string_view Text, MetricsSnapshot &Out,
                                  std::string *Error) {
  size_t LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = formatString("metrics line %zu: %s", LineNo, Msg.c_str());
    return false;
  };

  Out = MetricsSnapshot();
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string Line(Nl == std::string_view::npos
                         ? Text.substr(Pos)
                         : Text.substr(Pos, Nl - Pos));
    Pos = Nl == std::string_view::npos ? Text.size() : Nl + 1;
    if (Line.empty())
      continue;
    ++LineNo;

    std::string JsonError;
    Json V = Json::parse(Line, &JsonError);
    if (V.kind() != Json::Kind::Object)
      return Fail("malformed JSON (" + JsonError + ")");
    const std::string &Type = V["type"].asString();
    const std::string &Name = V["name"].asString();
    if (Name.empty())
      return Fail("metric without name");
    if (Type == "counter") {
      Out.Counters.push_back(
          {Name, static_cast<uint64_t>(V["value"].asDouble())});
    } else if (Type == "gauge") {
      Out.Gauges.push_back({Name, V["value"].asDouble()});
    } else if (Type == "timer") {
      Out.Timers.push_back({Name,
                            static_cast<uint64_t>(V["count"].asDouble()),
                            static_cast<uint64_t>(V["total_ns"].asDouble())});
    } else if (Type == "histogram") {
      MetricsSnapshot::HistogramValue H;
      H.Name = Name;
      H.Bounds = V["bounds"].toDoubleVector();
      for (const Json &C : V["counts"].items())
        H.Counts.push_back(static_cast<uint64_t>(C.asDouble()));
      if (H.Counts.size() != H.Bounds.size() + 1)
        return Fail("histogram counts/bounds size mismatch");
      H.Sum = V["sum"].asDouble();
      H.Max = V["max"].asDouble();
      Out.Histograms.push_back(std::move(H));
    } else if (Type == "series") {
      MetricsSnapshot::SeriesValue S;
      S.Name = Name;
      for (const Json &P : V["points"].items())
        S.Points.push_back({P.at(0).asDouble(), P.at(1).asDouble(), 0});
      Out.SeriesList.push_back(std::move(S));
    } else {
      return Fail("unknown metric type '" + Type + "'");
    }
  }
  return true;
}
