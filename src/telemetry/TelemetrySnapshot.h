//===- telemetry/TelemetrySnapshot.h - Mergeable snapshot wire doc -*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-process telemetry wire document ("msem.telemetry.v1"): a
/// MetricsSnapshot serialized as JSON so worker processes can embed their
/// metric state in heartbeat writes and the campaign coordinator can fold
/// every worker's snapshot into one fleet view.
///
/// The document is designed around *mergeability*:
///
///   - counters sum (each process observed disjoint events),
///   - gauges are last-write-wins (the merge order is the deterministic
///     worker order, so "last" is well defined: the highest-indexed worker
///     reporting the gauge wins),
///   - timers sum both count and total time,
///   - histograms add bucket-by-bucket when their bounds agree (the
///     instrumentation sites use fixed bound sets, so they do); on a
///     bounds mismatch the destination is kept unchanged -- merging
///     incompatible buckets would fabricate quantiles. Sums add and
///     maxima max, so merged p-quantile estimates stay exact at the
///     bucket resolution.
///
/// Series are deliberately NOT carried: they are unbounded trajectories
/// whose points are only meaningful against their producing process's
/// monotonic clock, and the fleet plane reads rates and distributions,
/// not raw trajectories.
///
/// All integer state (counter values, bucket counts, timer totals) rides
/// as hex strings (Json::hexU64) so 64-bit values survive the
/// doubles-only JSON number space bitwise. Merge output is sorted by
/// metric name, making fleet rendering deterministic for a fixed input
/// set regardless of arrival interleavings.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_TELEMETRY_TELEMETRYSNAPSHOT_H
#define MSEM_TELEMETRY_TELEMETRYSNAPSHOT_H

#include "support/Json.h"
#include "telemetry/Telemetry.h"

#include <string>

namespace msem {
namespace telemetry {

/// Schema tag stamped into (and required from) every snapshot document.
inline constexpr const char *kTelemetrySchema = "msem.telemetry.v1";

/// Serializes \p S as a msem.telemetry.v1 JSON document. Series are
/// omitted (see file comment). Deterministic: object members are
/// map-ordered and snapshotMetrics() is name-sorted.
Json telemetrySnapshotToJson(const MetricsSnapshot &S);

/// Parses a msem.telemetry.v1 document into \p Out (replacing it).
/// Returns false with a diagnostic in \p Error on a missing/foreign
/// schema tag or a structurally malformed document (histogram count
/// arity, non-object sections).
bool telemetrySnapshotFromJson(const Json &Doc, MetricsSnapshot &Out,
                               std::string *Error = nullptr);

/// Folds \p Src into \p Dst under the merge rules above. Metrics present
/// only in one side are kept as-is; every output section ends sorted by
/// metric name. Associative over a fixed merge order, which is how the
/// coordinator guarantees a deterministic fleet view: workers are always
/// folded in worker-index order.
void mergeTelemetrySnapshot(MetricsSnapshot &Dst, const MetricsSnapshot &Src);

} // namespace telemetry
} // namespace msem

#endif // MSEM_TELEMETRY_TELEMETRYSNAPSHOT_H
