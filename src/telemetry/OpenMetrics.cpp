//===- telemetry/OpenMetrics.cpp - Prometheus text exposition -------------===//

#include "telemetry/OpenMetrics.h"

#include "support/Format.h"
#include "telemetry/TelemetrySnapshot.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

using namespace msem;
using namespace msem::telemetry;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

/// "pool.tasks.measure" -> family "msem_pool_tasks" + label stage="measure".
struct LabelRule {
  std::string_view Prefix; ///< Includes the trailing dot.
  std::string_view Label;
  /// When set, only the remainder up to its first '.' becomes the label
  /// value; anything after it folds into the family name. This keeps
  /// "pass.dce" (timer), "pass.dce.changed" (counter) and
  /// "pass.dce.ir_delta" (gauge) in three distinct same-typed families
  /// (msem_pass / msem_pass_changed / msem_pass_ir_delta), all labeled
  /// pass="dce". Off for serving rules, whose model ids may contain dots.
  bool SplitRest = false;
};

constexpr LabelRule kLabelRules[] = {
    {"pool.tasks.", "stage"},
    {"pool.region.", "stage"},
    {"serving.latency_us.", "model"},
    {"serving.requests.", "model"},
    {"serving.errors.", "model"},
    {"serving.residuals.", "model"},
    {"serving.rolling_mape.", "model"},
    {"serving.rolling_rmse.", "model"},
    {"serving.drift_ratio.", "model"},
    {"serving.drift_flag.", "model"},
    {"pass.", "pass", true},
};

std::string sanitizeFamily(std::string_view Name) {
  std::string Out = "msem_";
  for (char C : Name)
    Out += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
  return Out;
}

std::string escapeLabelValue(std::string_view V) {
  std::string Out;
  for (char C : V) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

/// The serving RED metrics ("red.<what>.<endpoint>:<model>[:<class>]")
/// carry several label dimensions in one name, ':'-separated -- endpoint
/// paths contain '/' and '.' and model ids contain ',' and '.', so the
/// single-label prefix rules cannot split them. Order is fixed by the
/// SloTracker encoder: endpoint, model, then (errors only) status class.
constexpr std::string_view kRedLabelNames[] = {"endpoint", "model", "class"};

bool mapRedMetricName(const std::string &Name, std::string &Family,
                      std::string &Labels) {
  constexpr std::string_view Prefix = "red.";
  if (Name.size() <= Prefix.size() ||
      std::string_view(Name).substr(0, Prefix.size()) != Prefix)
    return false;
  std::string Rest = Name.substr(Prefix.size());
  size_t Dot = Rest.find('.');
  if (Dot == std::string::npos || Dot + 1 >= Rest.size())
    return false;
  std::string What = Rest.substr(0, Dot); // "requests", "errors", ...
  std::string Values = Rest.substr(Dot + 1);
  Family = "red_" + What; // sanitizeFamily applied by the caller.
  Labels.clear();
  size_t LabelIdx = 0, Start = 0;
  while (LabelIdx < 3) {
    size_t Colon = LabelIdx + 1 < 3 ? Values.find(':', Start)
                                    : std::string::npos;
    std::string Value =
        Colon == std::string::npos ? Values.substr(Start)
                                   : Values.substr(Start, Colon - Start);
    if (!Labels.empty())
      Labels += ",";
    Labels += std::string(kRedLabelNames[LabelIdx]) + "=\"" +
              escapeLabelValue(Value) + "\"";
    if (Colon == std::string::npos)
      break;
    Start = Colon + 1;
    ++LabelIdx;
  }
  return true;
}

/// Splits a metric name into (family, label string without braces). The
/// label string is "" for unlabeled metrics, else comma-joined
/// `key="value"` pairs.
std::pair<std::string, std::string> mapMetricName(const std::string &Name) {
  std::string RedFamily, RedLabels;
  if (mapRedMetricName(Name, RedFamily, RedLabels))
    return {sanitizeFamily(RedFamily), RedLabels};
  for (const LabelRule &R : kLabelRules) {
    if (Name.size() > R.Prefix.size() &&
        std::string_view(Name).substr(0, R.Prefix.size()) == R.Prefix) {
      // Drop the prefix's trailing dot for the family base.
      std::string FamilyBase(R.Prefix.substr(0, R.Prefix.size() - 1));
      std::string Value = Name.substr(R.Prefix.size());
      if (R.SplitRest) {
        size_t Dot = Value.find('.');
        if (Dot != std::string::npos) {
          FamilyBase += "_" + Value.substr(Dot + 1);
          Value.resize(Dot);
        }
      }
      return {sanitizeFamily(FamilyBase), std::string(R.Label) + "=\"" +
                                              escapeLabelValue(Value) + "\""};
    }
  }
  return {sanitizeFamily(Name), ""};
}

std::string formatOmDouble(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "+Inf" : "-Inf";
  return formatString("%.17g", V);
}

std::string withLabels(const std::string &Sample, const std::string &Labels) {
  if (Labels.empty())
    return Sample;
  return Sample + "{" + Labels + "}";
}

/// One metric family being assembled: its OpenMetrics type plus the sample
/// lines, grouped so a single # TYPE header covers every label set.
struct FamilyOut {
  std::string Type;
  std::vector<std::string> Lines;
};

/// Appends every sample of \p S to \p Families, tagging each with
/// \p ExtraLabel (e.g. `worker="1"`; "" for no tag). Shared by the
/// single-process renderer and the fleet renderer -- the fleet document
/// must keep every label set of a family under one # TYPE header (the
/// validator forbids interleaving), so rendering accumulates into a
/// family map first and serializes once at the end.
void appendSnapshot(std::map<std::string, FamilyOut> &Families,
                    const MetricsSnapshot &S, const std::string &ExtraLabel) {
  auto Family = [&](const std::string &Name,
                    const char *Type) -> FamilyOut & {
    FamilyOut &F = Families[Name];
    if (F.Type.empty())
      F.Type = Type;
    return F;
  };
  auto Tagged = [&](const std::string &Labels) {
    if (ExtraLabel.empty())
      return Labels;
    return Labels.empty() ? ExtraLabel : Labels + "," + ExtraLabel;
  };

  for (const auto &C : S.Counters) {
    auto [Fam, Labels] = mapMetricName(C.Name);
    Family(Fam, "counter")
        .Lines.push_back(withLabels(Fam + "_total", Tagged(Labels)) + " " +
                         formatString("%llu", (unsigned long long)C.Value));
  }
  for (const auto &G : S.Gauges) {
    auto [Fam, Labels] = mapMetricName(G.Name);
    Family(Fam, "gauge").Lines.push_back(
        withLabels(Fam, Tagged(Labels)) + " " + formatOmDouble(G.Value));
  }
  for (const auto &T : S.Timers) {
    auto [Fam, Labels] = mapMetricName(T.Name);
    FamilyOut &F = Family(Fam, "summary");
    F.Lines.push_back(withLabels(Fam + "_count", Tagged(Labels)) + " " +
                      formatString("%llu", (unsigned long long)T.Count));
    F.Lines.push_back(withLabels(Fam + "_sum", Tagged(Labels)) + " " +
                      formatOmDouble(T.TotalNs / 1e9));
  }
  for (const auto &H : S.Histograms) {
    auto [Fam, Labels] = mapMetricName(H.Name);
    Labels = Tagged(Labels);
    FamilyOut &F = Family(Fam, "histogram");
    uint64_t Cum = 0;
    for (size_t I = 0; I < H.Bounds.size(); ++I) {
      Cum += H.Counts[I];
      std::string Le = "le=\"" + formatOmDouble(H.Bounds[I]) + "\"";
      std::string All = Labels.empty() ? Le : Labels + "," + Le;
      F.Lines.push_back(Fam + "_bucket{" + All + "} " +
                        formatString("%llu", (unsigned long long)Cum));
    }
    Cum += H.Counts.empty() ? 0 : H.Counts.back();
    std::string Le = "le=\"+Inf\"";
    std::string All = Labels.empty() ? Le : Labels + "," + Le;
    F.Lines.push_back(Fam + "_bucket{" + All + "} " +
                      formatString("%llu", (unsigned long long)Cum));
    F.Lines.push_back(withLabels(Fam + "_sum", Labels) + " " +
                      formatOmDouble(H.Sum));
    F.Lines.push_back(withLabels(Fam + "_count", Labels) + " " +
                      formatString("%llu", (unsigned long long)Cum));
  }
  // Series have no OpenMetrics equivalent and are deliberately omitted
  // (they remain available in the JSONL snapshot and the trace sink).
}

std::string renderFamilies(const std::map<std::string, FamilyOut> &Families) {
  std::string Out;
  for (const auto &[Name, F] : Families) {
    Out += "# TYPE " + Name + " " + F.Type + "\n";
    for (const std::string &Line : F.Lines)
      Out += Line + "\n";
  }
  Out += "# EOF\n";
  return Out;
}

} // namespace

std::string telemetry::renderOpenMetrics(const MetricsSnapshot &S) {
  // std::map keys keep families sorted; within a family, samples arrive in
  // snapshot (name-sorted) order, so the document is deterministic.
  std::map<std::string, FamilyOut> Families;
  appendSnapshot(Families, S, "");
  return renderFamilies(Families);
}

std::string
telemetry::renderOpenMetricsFleet(const MetricsSnapshot &Local,
                                  const std::vector<FleetMember> &Members) {
  // The rollup: the coordinator's own metrics folded with every member
  // snapshot in the given (worker-index) order, so the unlabeled series
  // are deterministic for a fixed member set. Gauges are last-write-wins
  // across the fold -- the highest-indexed member reporting a gauge wins,
  // which is as meaningful as any other single value for a fleet gauge.
  MetricsSnapshot Rollup = Local;
  for (const FleetMember &M : Members)
    mergeTelemetrySnapshot(Rollup, M.Snapshot);

  std::map<std::string, FamilyOut> Families;
  appendSnapshot(Families, Rollup, "");
  appendSnapshot(Families, Local, "worker=\"coordinator\"");
  for (const FleetMember &M : Members)
    appendSnapshot(Families, M.Snapshot,
                   "worker=\"" + escapeLabelValue(M.Worker) + "\"");
  return renderFamilies(Families);
}

//===----------------------------------------------------------------------===//
// Validation (promtool-check-metrics style)
//===----------------------------------------------------------------------===//

namespace {

bool validMetricName(std::string_view Name) {
  if (Name.empty())
    return false;
  auto Head = [](char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == ':';
  };
  auto Tail = [&](char C) {
    return Head(C) || std::isdigit(static_cast<unsigned char>(C));
  };
  if (!Head(Name[0]))
    return false;
  for (char C : Name.substr(1))
    if (!Tail(C))
      return false;
  return true;
}

bool validLabelName(std::string_view Name) {
  if (Name.empty())
    return false;
  auto Head = [](char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
  };
  if (!Head(Name[0]))
    return false;
  for (char C : Name.substr(1))
    if (!Head(C) && !std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

bool parseOmValue(std::string_view S, double &Out) {
  if (S.empty())
    return false;
  std::string Buf(S);
  char *End = nullptr;
  Out = std::strtod(Buf.c_str(), &End);
  return End && *End == '\0' && End != Buf.c_str();
}

/// Per-(family, label-set) histogram bookkeeping for cumulativity checks.
struct HistSeries {
  double LastLe = -HUGE_VAL;
  uint64_t LastCum = 0;
  bool SawInf = false;
  uint64_t InfValue = 0;
  bool SawCount = false;
  uint64_t CountValue = 0;
};

} // namespace

bool telemetry::validateOpenMetrics(std::string_view Text,
                                    std::string *Error) {
  size_t LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = formatString("line %zu: %s", LineNo, Msg.c_str());
    return false;
  };

  std::map<std::string, std::string> Types; ///< family -> type
  std::set<std::string> Closed;
  std::string CurFamily;
  std::map<std::string, HistSeries> CurHist; ///< label-set -> bookkeeping
  bool SawEof = false;

  auto CloseFamily = [&]() -> bool {
    if (CurFamily.empty())
      return true;
    if (Types[CurFamily] == "histogram") {
      for (const auto &[Labels, H] : CurHist) {
        if (!H.SawInf)
          return Fail("histogram " + CurFamily + "{" + Labels +
                      "} missing le=\"+Inf\" bucket");
        if (H.SawCount && H.CountValue != H.InfValue)
          return Fail("histogram " + CurFamily + "{" + Labels +
                      "} _count != +Inf bucket");
      }
    }
    Closed.insert(CurFamily);
    CurFamily.clear();
    CurHist.clear();
    return true;
  };

  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string_view Line = Nl == std::string_view::npos
                                ? Text.substr(Pos)
                                : Text.substr(Pos, Nl - Pos);
    Pos = Nl == std::string_view::npos ? Text.size() + 1 : Nl + 1;
    if (Line.empty() && Pos > Text.size())
      break; // Trailing newline.
    ++LineNo;

    if (SawEof)
      return Fail("content after # EOF");
    if (Line.empty())
      return Fail("empty line");

    if (Line[0] == '#') {
      if (Line == "# EOF") {
        if (!CloseFamily())
          return false;
        SawEof = true;
        continue;
      }
      // "# TYPE <name> <type>" / "# HELP <name> <text>" / "# UNIT ...".
      std::vector<std::string> Parts = splitString(std::string(Line), ' ');
      if (Parts.size() < 3 || Parts[0] != "#")
        return Fail("malformed comment line (expected TYPE/HELP/UNIT/EOF)");
      const std::string &Directive = Parts[1];
      const std::string &Name = Parts[2];
      if (Directive == "TYPE") {
        if (Parts.size() != 4)
          return Fail("malformed TYPE line");
        const std::string &Type = Parts[3];
        static const std::set<std::string> KnownTypes = {
            "counter", "gauge",   "histogram", "summary",
            "unknown", "info",    "stateset",  "gaugehistogram"};
        if (!validMetricName(Name))
          return Fail("invalid metric family name '" + Name + "'");
        if (!KnownTypes.count(Type))
          return Fail("unknown metric type '" + Type + "'");
        if (Types.count(Name))
          return Fail("family '" + Name + "' redeclared");
        if (Closed.count(Name))
          return Fail("family '" + Name + "' declared after its samples");
        if (!CloseFamily())
          return false;
        Types[Name] = Type;
        CurFamily = Name;
      } else if (Directive == "HELP" || Directive == "UNIT") {
        if (!validMetricName(Name))
          return Fail("invalid metric family name '" + Name + "'");
      } else {
        return Fail("unknown directive '# " + Directive + "'");
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp].
    size_t NameEnd = 0;
    while (NameEnd < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[NameEnd])) ||
            Line[NameEnd] == '_' || Line[NameEnd] == ':'))
      ++NameEnd;
    std::string SampleName(Line.substr(0, NameEnd));
    if (!validMetricName(SampleName))
      return Fail("invalid sample name");
    std::string_view Rest = Line.substr(NameEnd);

    // Labels.
    std::map<std::string, std::string> Labels;
    if (!Rest.empty() && Rest[0] == '{') {
      size_t I = 1;
      bool First = true;
      while (true) {
        if (I >= Rest.size())
          return Fail("unterminated label set");
        if (Rest[I] == '}') {
          ++I;
          break;
        }
        if (!First) {
          if (Rest[I] != ',')
            return Fail("expected ',' between labels");
          ++I;
        }
        First = false;
        size_t KeyStart = I;
        while (I < Rest.size() && Rest[I] != '=')
          ++I;
        if (I >= Rest.size())
          return Fail("label without '='");
        std::string Key(Rest.substr(KeyStart, I - KeyStart));
        if (!validLabelName(Key))
          return Fail("invalid label name '" + Key + "'");
        ++I; // '='
        if (I >= Rest.size() || Rest[I] != '"')
          return Fail("label value must be quoted");
        ++I;
        std::string Value;
        while (I < Rest.size() && Rest[I] != '"') {
          if (Rest[I] == '\\') {
            ++I;
            if (I >= Rest.size())
              return Fail("dangling escape in label value");
            char E = Rest[I];
            if (E == 'n')
              Value += '\n';
            else if (E == '\\' || E == '"')
              Value += E;
            else
              return Fail("invalid escape in label value");
          } else {
            Value += Rest[I];
          }
          ++I;
        }
        if (I >= Rest.size())
          return Fail("unterminated label value");
        ++I; // closing quote
        if (Labels.count(Key))
          return Fail("duplicate label '" + Key + "'");
        Labels[Key] = Value;
      }
      Rest = Rest.substr(I);
    }

    if (Rest.empty() || Rest[0] != ' ')
      return Fail("missing value");
    Rest = Rest.substr(1);
    // Optional timestamp after the value.
    size_t Space = Rest.find(' ');
    std::string_view ValueStr =
        Space == std::string_view::npos ? Rest : Rest.substr(0, Space);
    double Value;
    if (!parseOmValue(ValueStr, Value))
      return Fail("unparsable sample value '" + std::string(ValueStr) + "'");
    if (Space != std::string_view::npos) {
      double Ts;
      if (!parseOmValue(Rest.substr(Space + 1), Ts))
        return Fail("unparsable timestamp");
    }

    // Resolve the sample to its declared family via the per-type suffix
    // rules, and forbid interleaving.
    std::string Family;
    std::string Suffix;
    for (std::string_view Cand :
         {std::string_view("_total"), std::string_view("_bucket"),
          std::string_view("_sum"), std::string_view("_count"),
          std::string_view("_created"), std::string_view("")}) {
      if (SampleName.size() > Cand.size() &&
          std::string_view(SampleName)
                  .substr(SampleName.size() - Cand.size()) == Cand) {
        std::string Base =
            SampleName.substr(0, SampleName.size() - Cand.size());
        if (Types.count(Base)) {
          Family = Base;
          Suffix = std::string(Cand);
          break;
        }
      }
    }
    if (Family.empty())
      return Fail("sample '" + SampleName + "' has no preceding # TYPE");
    if (Family != CurFamily)
      return Fail("sample for family '" + Family +
                  "' interleaved with family '" + CurFamily + "'");

    const std::string &Type = Types[Family];
    auto SuffixOk = [&]() {
      if (Type == "counter")
        return Suffix == "_total" || Suffix == "_created";
      if (Type == "gauge")
        return Suffix.empty();
      if (Type == "summary")
        return Suffix == "_count" || Suffix == "_sum" || Suffix.empty() ||
               Suffix == "_created";
      if (Type == "histogram")
        return Suffix == "_bucket" || Suffix == "_sum" ||
               Suffix == "_count" || Suffix == "_created";
      return true; // unknown/info/...: lenient.
    };
    if (!SuffixOk())
      return Fail("sample '" + SampleName + "' invalid for " + Type +
                  " family '" + Family + "'");

    if (Type == "histogram") {
      // Canonical label set without 'le' keys the bucket series.
      std::string Key;
      for (const auto &[K, V] : Labels)
        if (K != "le")
          Key += K + "=\"" + V + "\",";
      HistSeries &H = CurHist[Key];
      if (Suffix == "_bucket") {
        auto It = Labels.find("le");
        if (It == Labels.end())
          return Fail("histogram bucket without le label");
        double Le;
        if (It->second == "+Inf")
          Le = HUGE_VAL;
        else if (!parseOmValue(It->second, Le))
          return Fail("unparsable le value '" + It->second + "'");
        uint64_t Cum = static_cast<uint64_t>(Value);
        if (Le <= H.LastLe)
          return Fail("histogram buckets not in increasing le order");
        if (Cum < H.LastCum)
          return Fail("histogram bucket counts not cumulative");
        H.LastLe = Le;
        H.LastCum = Cum;
        if (It->second == "+Inf") {
          H.SawInf = true;
          H.InfValue = Cum;
        }
      } else if (Suffix == "_count") {
        H.SawCount = true;
        H.CountValue = static_cast<uint64_t>(Value);
      }
    }
    if (Type == "counter" && Value < 0)
      return Fail("negative counter value");
  }

  if (!SawEof)
    return Fail("missing # EOF terminator");
  return true;
}
