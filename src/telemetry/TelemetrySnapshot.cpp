//===- telemetry/TelemetrySnapshot.cpp - Mergeable snapshot wire doc --------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/TelemetrySnapshot.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace msem;
using namespace msem::telemetry;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

Json telemetry::telemetrySnapshotToJson(const MetricsSnapshot &S) {
  Json Doc = Json::object();
  Doc.set("schema", Json::string(kTelemetrySchema));

  Json Counters = Json::object();
  for (const MetricsSnapshot::CounterValue &C : S.Counters)
    Counters.set(C.Name, Json::hexU64(C.Value));
  Doc.set("counters", std::move(Counters));

  Json Gauges = Json::object();
  for (const MetricsSnapshot::GaugeValue &G : S.Gauges)
    Gauges.set(G.Name, Json::number(G.Value));
  Doc.set("gauges", std::move(Gauges));

  Json Timers = Json::object();
  for (const MetricsSnapshot::TimerValue &T : S.Timers) {
    Json Entry = Json::object();
    Entry.set("count", Json::hexU64(T.Count));
    Entry.set("total_ns", Json::hexU64(T.TotalNs));
    Timers.set(T.Name, std::move(Entry));
  }
  Doc.set("timers", std::move(Timers));

  Json Histograms = Json::object();
  for (const MetricsSnapshot::HistogramValue &H : S.Histograms) {
    Json Entry = Json::object();
    Entry.set("bounds", Json::numberArray(H.Bounds));
    Json Counts = Json::array();
    for (uint64_t C : H.Counts)
      Counts.push(Json::hexU64(C));
    Entry.set("counts", std::move(Counts));
    Entry.set("sum", Json::number(H.Sum));
    Entry.set("max", Json::number(H.Max));
    Histograms.set(H.Name, std::move(Entry));
  }
  Doc.set("histograms", std::move(Histograms));

  return Doc;
}

bool telemetry::telemetrySnapshotFromJson(const Json &Doc,
                                          MetricsSnapshot &Out,
                                          std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = "telemetry snapshot: " + Msg;
    return false;
  };

  if (Doc.kind() != Json::Kind::Object)
    return Fail("document is not an object");
  std::string Schema = Doc["schema"].asString();
  if (Schema != kTelemetrySchema)
    return Fail(Schema.empty() ? "missing schema tag"
                               : "foreign schema '" + Schema + "'");

  MetricsSnapshot S;

  for (const auto &[Name, V] : Doc["counters"].members())
    S.Counters.push_back({Name, V.asHexU64()});

  for (const auto &[Name, V] : Doc["gauges"].members())
    S.Gauges.push_back({Name, V.asDouble()});

  for (const auto &[Name, V] : Doc["timers"].members())
    S.Timers.push_back({Name, V["count"].asHexU64(),
                        V["total_ns"].asHexU64()});

  for (const auto &[Name, V] : Doc["histograms"].members()) {
    MetricsSnapshot::HistogramValue H;
    H.Name = Name;
    H.Bounds = V["bounds"].toDoubleVector();
    for (const Json &C : V["counts"].items())
      H.Counts.push_back(C.asHexU64());
    if (H.Counts.size() != H.Bounds.size() + 1)
      return Fail(formatString("histogram '%s': %zu counts for %zu bounds",
                               Name.c_str(), H.Counts.size(),
                               H.Bounds.size()));
    H.Sum = V["sum"].asDouble();
    H.Max = V["max"].asDouble();
    S.Histograms.push_back(std::move(H));
  }

  Out = std::move(S);
  return true;
}

//===----------------------------------------------------------------------===//
// Merge
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds a name-keyed section as a sorted vector. The by-name map is
/// what makes the merge order-insensitive for disjoint names and gives
/// deterministic (sorted) output.
template <typename V, typename Fold>
void mergeSection(std::vector<V> &Dst, const std::vector<V> &Src,
                  Fold FoldInto) {
  std::map<std::string, V> ByName;
  for (V &D : Dst)
    ByName.emplace(D.Name, std::move(D));
  for (const V &S : Src) {
    auto [It, Inserted] = ByName.emplace(S.Name, S);
    if (!Inserted)
      FoldInto(It->second, S);
  }
  Dst.clear();
  for (auto &[Name, V2] : ByName)
    Dst.push_back(std::move(V2));
}

} // namespace

void telemetry::mergeTelemetrySnapshot(MetricsSnapshot &Dst,
                                       const MetricsSnapshot &Src) {
  mergeSection(Dst.Counters, Src.Counters,
               [](MetricsSnapshot::CounterValue &D,
                  const MetricsSnapshot::CounterValue &S) {
                 D.Value += S.Value;
               });
  mergeSection(Dst.Gauges, Src.Gauges,
               [](MetricsSnapshot::GaugeValue &D,
                  const MetricsSnapshot::GaugeValue &S) {
                 D.Value = S.Value; // Last write wins (merge order).
               });
  mergeSection(Dst.Timers, Src.Timers,
               [](MetricsSnapshot::TimerValue &D,
                  const MetricsSnapshot::TimerValue &S) {
                 D.Count += S.Count;
                 D.TotalNs += S.TotalNs;
               });
  mergeSection(Dst.Histograms, Src.Histograms,
               [](MetricsSnapshot::HistogramValue &D,
                  const MetricsSnapshot::HistogramValue &S) {
                 if (D.Bounds != S.Bounds || D.Counts.size() != S.Counts.size())
                   return; // Incompatible buckets: keep the destination.
                 for (size_t I = 0; I < D.Counts.size(); ++I)
                   D.Counts[I] += S.Counts[I];
                 D.Sum += S.Sum;
                 D.Max = std::max(D.Max, S.Max);
               });
  // Series never ride the wire doc; whatever the destination holds
  // locally (typically nothing on the fleet path) stays untouched.
}
