//===- telemetry/Introspection.h - Telemetry HTTP endpoints -----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers the telemetry-backed endpoints into the support-layer stats
/// server (support/StatsServer.h) and starts it from the environment. The
/// dependency arrow requires this split: msem_support cannot link
/// msem_telemetry, so the server is routing-only and this file -- living in
/// the telemetry layer, which *can* see both -- plugs the content in:
///
///   /metrics   live OpenMetrics exposition of the metric registry
///              (renderOpenMetrics over snapshotMetrics; same bytes the
///              jsonl sink's openmetrics format writes at exit, but now)
///   /tracez    recent-span snapshot: the buffered span forest rendered as
///              an indented tree, newest roots first
///   /profilez  the sampling profiler's collapsed stacks plus coverage
///              counters (live flamegraph input)
///
/// plus a "telemetry" /statusz section (sink configuration, active span
/// count, span-buffer depth) -- so every binary that calls
/// ensureIntrospection() exposes the full plane with zero per-binary code.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_TELEMETRY_INTROSPECTION_H
#define MSEM_TELEMETRY_INTROSPECTION_H

#include <functional>
#include <string>

namespace msem {
namespace telemetry {

/// Idempotently registers /metrics, /tracez, /profilez and the "telemetry"
/// status section, starts the stats server when MSEM_STATS_PORT is set
/// (StatsServer::maybeStartFromEnv) and arms the sampling profiler when
/// MSEM_PROFILE is set (SampleProfiler::autoStartFromEnv). Cheap after the
/// first call. Returns whether the global stats server is running.
///
/// Call sites: every long-running entry point -- Campaign::run, the
/// msem_predict serving loop, the bench harnesses (BenchReport).
bool ensureIntrospection();

/// Installs (nullptr clears) the process-wide fleet metrics provider:
/// while set, /metrics serves its return value instead of the local-only
/// exposition. The campaign coordinator installs one for the lifetime of
/// a distributed run (renderOpenMetricsFleet over the local registry plus
/// every worker's heartbeat snapshot); everything else leaves it unset
/// and /metrics behaves exactly as before. Thread-safe.
void setFleetMetricsProvider(std::function<std::string()> Provider);

/// Installs (nullptr clears) an extra /tracez section appended after the
/// local span tree -- the coordinator's per-worker recent-span view,
/// stitched from the workers' events files. Thread-safe.
void setTracezSection(std::function<std::string()> Section);

} // namespace telemetry
} // namespace msem

#endif // MSEM_TELEMETRY_INTROSPECTION_H
