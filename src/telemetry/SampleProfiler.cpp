//===- telemetry/SampleProfiler.cpp - Signal-based sampling profiler ------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/SampleProfiler.h"

#include "support/Env.h"
#include "support/FileSystem.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <signal.h>
#include <sys/time.h>

using namespace msem;
using namespace msem::telemetry;

namespace {

//===----------------------------------------------------------------------===//
// Lock-free sample table
//
// Everything the SIGPROF handler touches lives here: preallocated storage,
// lock-free atomics, no library calls beyond memcpy/strcmp semantics
// implemented by hand-safe loops. The table is a power-of-two
// open-addressing map from collapsed-stack string to sample count. Slots
// move empty -> writing -> ready exactly once; counts only grow; readers
// (snapshot) see a ready slot's stack bytes because the state store is a
// release and their load an acquire.
//===----------------------------------------------------------------------===//

constexpr size_t NumSlots = 4096;      // Power of two (mask probing).
constexpr size_t MaxProbes = 16;       // Give up (drop) after this many.
constexpr size_t StackCap = 192;       // Collapsed-stack byte budget.
constexpr size_t MaxFrames = 32;       // Span-chain depth we attribute.

constexpr uint32_t SlotEmpty = 0;
constexpr uint32_t SlotWriting = 1;
constexpr uint32_t SlotReady = 2;

struct Slot {
  std::atomic<uint32_t> State{SlotEmpty};
  std::atomic<uint64_t> Hash{0};
  std::atomic<uint64_t> Count{0};
  char Stack[StackCap] = {};
};

static_assert(std::atomic<uint32_t>::is_always_lock_free &&
                  std::atomic<uint64_t>::is_always_lock_free,
              "the SIGPROF handler may not block on these");

Slot Table[NumSlots];
std::atomic<uint64_t> TotalSamples{0};
std::atomic<uint64_t> DroppedSamples{0};

/// Appends \p Src to Buf[*Len] within StackCap-1, FNV-1a-mixing each byte
/// into \p Hash. Truncation keeps the stack valid, just shorter.
void appendFrame(char *Buf, size_t *Len, uint64_t *Hash, const char *Src) {
  while (*Src && *Len < StackCap - 1) {
    char C = *Src++;
    Buf[(*Len)++] = C;
    *Hash = (*Hash ^ static_cast<unsigned char>(C)) * 1099511628211ull;
  }
}

/// The SIGPROF handler: attribute the interrupted thread's live span chain
/// and bump its bucket. Async-signal-safe: stack buffers, relaxed/acq-rel
/// atomics, no allocation, no locks.
void profSignalHandler(int) {
  int SavedErrno = errno; // Library-safe hygiene: restore on exit.
  TotalSamples.fetch_add(1, std::memory_order_relaxed);

  const char *Names[MaxFrames];
  size_t N = currentSpanNames(Names, MaxFrames);

  char Buf[StackCap];
  size_t Len = 0;
  uint64_t Hash = 14695981039346656037ull;
  if (N == 0) {
    appendFrame(Buf, &Len, &Hash, "(no span)");
  } else {
    // currentSpanNames walks innermost-first; flamegraph stacks read
    // root-first.
    for (size_t I = N; I-- > 0;) {
      if (Len)
        appendFrame(Buf, &Len, &Hash, ";");
      appendFrame(Buf, &Len, &Hash, Names[I]);
    }
  }
  Buf[Len] = '\0';

  size_t Idx = Hash & (NumSlots - 1);
  for (size_t Probe = 0; Probe < MaxProbes; ++Probe) {
    Slot &S = Table[(Idx + Probe) & (NumSlots - 1)];
    uint32_t State = S.State.load(std::memory_order_acquire);
    if (State == SlotReady) {
      if (S.Hash.load(std::memory_order_relaxed) == Hash) {
        // Hash collisions across distinct stacks are possible but
        // vanishingly rare for FNV-64 over a handful of span names;
        // verify bytes to keep the profile exact.
        bool Same = true;
        for (size_t I = 0; I <= Len; ++I)
          if (S.Stack[I] != Buf[I]) {
            Same = false;
            break;
          }
        if (Same) {
          S.Count.fetch_add(1, std::memory_order_relaxed);
          errno = SavedErrno;
          return;
        }
      }
      continue; // Occupied by a different stack; next probe.
    }
    if (State == SlotWriting)
      continue; // Another thread mid-claim; next probe.
    uint32_t Expected = SlotEmpty;
    if (S.State.compare_exchange_strong(Expected, SlotWriting,
                                        std::memory_order_acq_rel)) {
      for (size_t I = 0; I <= Len; ++I)
        S.Stack[I] = Buf[I];
      S.Hash.store(Hash, std::memory_order_relaxed);
      S.Count.fetch_add(1, std::memory_order_relaxed);
      S.State.store(SlotReady, std::memory_order_release);
      errno = SavedErrno;
      return;
    }
    // Lost the claim race; re-examine this slot (it may now hold our
    // stack) by not advancing past it -- simplest is to retry the probe.
    --Probe;
    continue;
  }
  DroppedSamples.fetch_add(1, std::memory_order_relaxed);
  errno = SavedErrno;
}

//===----------------------------------------------------------------------===//
// Control plane (normal thread context only)
//===----------------------------------------------------------------------===//

std::mutex ControlMutex;
bool RunningFlag = false;
struct sigaction PrevAction;
bool HavePrevAction = false;

/// atexit writer for autoStartFromEnv (plain function: atexit takes no
/// closures).
std::string &autoDumpPath() {
  static std::string Path;
  return Path;
}

void autoDumpAtExit() {
  SampleProfiler::stop();
  std::string Error;
  if (!SampleProfiler::dump(autoDumpPath(), &Error))
    std::fprintf(stderr, "profiler: %s\n", Error.c_str());
}

} // namespace

void SampleProfiler::start(Options O) {
  std::lock_guard<std::mutex> Lock(ControlMutex);
  if (RunningFlag)
    return;
  // Span attribution requires live ScopedTimers even when no telemetry
  // sink is configured.
  setMetricsForced(true);

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = profSignalHandler;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &SA, &PrevAction) != 0)
    return;
  HavePrevAction = true;

  int Hz = std::clamp(O.Hz, 1, 10000);
  struct itimerval TV;
  TV.it_interval.tv_sec = 0;
  TV.it_interval.tv_usec = std::max(1l, 1000000l / Hz);
  TV.it_value = TV.it_interval;
  if (setitimer(ITIMER_PROF, &TV, nullptr) != 0) {
    sigaction(SIGPROF, &PrevAction, nullptr);
    HavePrevAction = false;
    return;
  }
  RunningFlag = true;
}

void SampleProfiler::stop() {
  std::lock_guard<std::mutex> Lock(ControlMutex);
  if (!RunningFlag)
    return;
  struct itimerval Off;
  std::memset(&Off, 0, sizeof(Off));
  setitimer(ITIMER_PROF, &Off, nullptr);
  if (HavePrevAction) {
    sigaction(SIGPROF, &PrevAction, nullptr);
    HavePrevAction = false;
  }
  RunningFlag = false;
}

bool SampleProfiler::running() {
  std::lock_guard<std::mutex> Lock(ControlMutex);
  return RunningFlag;
}

bool SampleProfiler::autoStartFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const EnvConfig &E = env();
    if (E.ProfilePath.empty())
      return;
    autoDumpPath() = E.ProfilePath;
    start({static_cast<int>(E.ProfileHz)});
    std::atexit(autoDumpAtExit);
  });
  return running();
}

uint64_t SampleProfiler::sampleCount() {
  return TotalSamples.load(std::memory_order_relaxed);
}

uint64_t SampleProfiler::droppedCount() {
  return DroppedSamples.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> SampleProfiler::collapsedStacks() {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (Slot &S : Table) {
    if (S.State.load(std::memory_order_acquire) != SlotReady)
      continue;
    uint64_t Count = S.Count.load(std::memory_order_relaxed);
    if (Count)
      Out.emplace_back(S.Stack, Count);
  }
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return A.second != B.second ? A.second > B.second : A.first < B.first;
  });
  return Out;
}

std::string SampleProfiler::renderCollapsed() {
  std::string Out;
  for (const auto &[Stack, Count] : collapsedStacks()) {
    Out += Stack;
    Out += ' ';
    Out += std::to_string(Count);
    Out += '\n';
  }
  return Out;
}

bool SampleProfiler::dump(const std::string &Path, std::string *Error) {
  return writeFileAtomic(Path, renderCollapsed(), Error);
}

void SampleProfiler::resetSamples() {
  // Tests only; callers must stop() first -- clearing under live SIGPROF
  // delivery would race the handler's claim protocol.
  for (Slot &S : Table) {
    S.Count.store(0, std::memory_order_relaxed);
    S.Hash.store(0, std::memory_order_relaxed);
    S.Stack[0] = '\0';
    S.State.store(SlotEmpty, std::memory_order_relaxed);
  }
  TotalSamples.store(0, std::memory_order_relaxed);
  DroppedSamples.store(0, std::memory_order_relaxed);
}
