//===- telemetry/EventLog.h - Structured event-log ingestion ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read side of the "events" sink: parses and validates the
/// "msem.events.v1" JSONL schema written by renderEventsJsonl(), rebuilds
/// the span forest, and aggregates it into the views tools/msem_report
/// renders -- per-phase time breakdown with self-time attribution,
/// collapsed flamegraph stacks, and the slowest spans of a given name.
///
/// Schema (one JSON object per line, stable field names):
///   {"event":"meta","schema":"msem.events.v1","build":"<stamp>"}
///   {"event":"span","name":...,"detail":...,"trace":"<hex64>",
///    "span":"<hex64>","parent":"<hex64>","start_ns":N,"dur_ns":N,"tid":N}
///
/// The meta line must come first; unknown "event" kinds are rejected (the
/// schema is versioned -- new kinds belong in a v2).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_TELEMETRY_EVENTLOG_H
#define MSEM_TELEMETRY_EVENTLOG_H

#include "telemetry/Telemetry.h"

#include <string>
#include <string_view>
#include <vector>

namespace msem {
namespace telemetry {

/// A parsed events file: header plus the span list in file order.
struct EventLog {
  std::string Schema; ///< "msem.events.v1".
  std::string Build;  ///< buildStamp() of the producing binary.
  /// Wall-clock anchor (Unix ns at the producer's telemetry init; span
  /// StartNs values are offsets from it). 0 for logs written before the
  /// field existed -- cross-file merges then fall back to raw offsets.
  uint64_t UnixNs = 0;
  std::vector<SpanEvent> Spans;
};

/// Parses and validates an events JSONL document. Returns false with a
/// line-numbered diagnostic in \p Error (when non-null) on malformed JSON,
/// a missing/misplaced meta line, an unknown schema version or missing
/// span fields.
bool parseEventsJsonl(std::string_view Text, EventLog &Out,
                      std::string *Error);

/// The span forest reassembled from parent ids. Spans whose parent is 0 or
/// absent from the log (sampled-out or cross-file) are roots.
struct SpanTree {
  struct Node {
    size_t SpanIndex;             ///< Into the originating span vector.
    std::vector<size_t> Children; ///< Node indices, canonical order.
  };
  std::vector<Node> Nodes; ///< Node I describes span I.
  std::vector<size_t> Roots;

  /// Maximum nesting depth (0 for an empty forest, 1 for flat spans).
  size_t depth() const;
};

SpanTree buildSpanTree(const std::vector<SpanEvent> &Spans);

/// Per-name aggregation over a span forest. SelfNs excludes time covered
/// by child spans, so phases sum to (roughly) the traced wall time.
struct PhaseStat {
  std::string Name;
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t SelfNs = 0;
  uint64_t MaxNs = 0;
};

/// Phases sorted by SelfNs descending (the report's time breakdown).
std::vector<PhaseStat> aggregatePhases(const std::vector<SpanEvent> &Spans,
                                       const SpanTree &Tree);

/// Collapsed flamegraph stacks: "root;child;leaf" -> self nanoseconds,
/// sorted by self time descending. The classic flamegraph.pl input shape.
std::vector<std::pair<std::string, uint64_t>>
collapseStacks(const std::vector<SpanEvent> &Spans, const SpanTree &Tree);

/// The N slowest spans named \p Name (by duration), descending.
std::vector<SpanEvent> slowestSpans(const std::vector<SpanEvent> &Spans,
                                    std::string_view Name, size_t N);

/// Parses a JSONL metrics snapshot (renderMetricsJsonl output) back into a
/// MetricsSnapshot. Returns false with a diagnostic on malformed input.
bool parseMetricsJsonl(std::string_view Text, MetricsSnapshot &Out,
                       std::string *Error);

} // namespace telemetry
} // namespace msem

#endif // MSEM_TELEMETRY_EVENTLOG_H
