//===- telemetry/OpenMetrics.h - Prometheus text exposition -----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpenMetrics / Prometheus text exposition for the telemetry registry:
/// renders a MetricsSnapshot as a typed text document, and validates such
/// documents the way `promtool check metrics` would (the validator is the
/// acceptance test for the format -- no external tooling is required).
///
/// Mapping from msem metric names:
///   - counters    -> `# TYPE msem_x counter`, sample `msem_x_total`
///   - gauges      -> `# TYPE msem_x gauge`
///   - timers      -> `# TYPE msem_x summary` (_count, _sum in seconds)
///   - histograms  -> `# TYPE msem_x histogram` (cumulative _bucket{le=},
///                    +Inf bucket, _sum, _count)
///   - series      -> omitted (no OpenMetrics equivalent; they live in the
///                    JSONL snapshot and the trace sink)
///
/// Dynamic name suffixes become labels so cardinality lives in labels, not
/// metric families: "pool.tasks.<stage>" -> msem_pool_tasks{stage="..."},
/// "pool.region.<stage>" -> msem_pool_region{stage="..."},
/// "serving.<what>.<model>" -> msem_serving_<what>{model="..."},
/// "pass.<name>" -> msem_pass{pass="..."}. Everything else maps 1:1 with
/// non-alphanumerics folded to '_' and an "msem_" prefix.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_TELEMETRY_OPENMETRICS_H
#define MSEM_TELEMETRY_OPENMETRICS_H

#include "telemetry/Telemetry.h"

#include <string>
#include <string_view>
#include <vector>

namespace msem {
namespace telemetry {

/// Renders \p S as an OpenMetrics text document (terminated by "# EOF").
/// Deterministic: families and label sets are emitted in sorted order.
std::string renderOpenMetrics(const MetricsSnapshot &S);

/// One fleet member's snapshot plus the value its samples carry in the
/// `worker` label (the campaign coordinator uses worker indices "0",
/// "1", ...).
struct FleetMember {
  std::string Worker;
  MetricsSnapshot Snapshot;
};

/// Renders the fleet view of a distributed campaign: for every family,
/// first the unlabeled rollup samples (\p Local merged with every member
/// snapshot in the given order, per the msem.telemetry.v1 merge rules),
/// then the same samples tagged worker="coordinator" for \p Local and
/// worker="<name>" per member -- all under a single # TYPE header, as the
/// no-interleaving rule requires. Deterministic for a fixed member list.
std::string renderOpenMetricsFleet(const MetricsSnapshot &Local,
                                   const std::vector<FleetMember> &Members);

/// Validates an OpenMetrics text document: TYPE declarations precede their
/// samples, sample names follow the per-type suffix rules, label syntax
/// and float values parse, histogram buckets are cumulative and end in
/// +Inf, families are not interleaved or redeclared, and the document ends
/// with "# EOF". Returns true when valid; otherwise false with a
/// line-numbered diagnostic in \p Error (when non-null).
bool validateOpenMetrics(std::string_view Text, std::string *Error);

} // namespace telemetry
} // namespace msem

#endif // MSEM_TELEMETRY_OPENMETRICS_H
