//===- ir/Function.h - IR functions ------------------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function owns its arguments and basic blocks (entry block first) and
/// provides whole-function utilities used by the optimizer: use counting,
/// bulk operand rewriting and block manipulation.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_FUNCTION_H
#define MSEM_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace msem {

class Module;

/// A function: signature, arguments and a CFG of basic blocks.
class Function {
public:
  Function(std::string Name, Type ReturnType, std::vector<Type> ArgTypes,
           std::vector<std::string> ArgNames = {});
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }
  Type returnType() const { return ReturnType; }

  Module *parent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  // Arguments -----------------------------------------------------------
  unsigned numArgs() const { return Args.size(); }
  Argument *arg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }

  // Blocks ---------------------------------------------------------------
  using BlockList = std::vector<std::unique_ptr<BasicBlock>>;
  BlockList &blocks() { return Blocks; }
  const BlockList &blocks() const { return Blocks; }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  /// Creates a block appended to the function.
  BasicBlock *createBlock(const std::string &BlockName);

  /// Inserts an externally created block (takes ownership).
  BasicBlock *adoptBlock(std::unique_ptr<BasicBlock> BB);

  /// Removes and destroys \p BB. Instructions must already be unused.
  void eraseBlock(BasicBlock *BB);

  /// Index of \p BB in the block list; asserts if absent.
  size_t indexOfBlock(const BasicBlock *BB) const;

  /// Reorders blocks to the given permutation (must contain each block
  /// exactly once and keep the entry block first).
  void reorderBlocks(const std::vector<BasicBlock *> &NewOrder);

  // Whole-function utilities ---------------------------------------------
  /// Rewrites every operand V to Map[V] where present. Phi incoming blocks
  /// are rewritten via \p BlockMap where present.
  void rewriteOperands(
      const std::unordered_map<Value *, Value *> &Map,
      const std::unordered_map<BasicBlock *, BasicBlock *> &BlockMap = {});

  /// Replaces every use of \p Old with \p New.
  void replaceAllUses(Value *Old, Value *New);

  /// Counts uses of each instruction/argument across the function.
  std::unordered_map<const Value *, unsigned> countUses() const;

  /// Total instruction count over all blocks (the "size" used by the
  /// inlining heuristics, mirroring gcc's insns estimate).
  unsigned instructionCount() const;

  /// Renumbers blocks and instructions for stable printing.
  void renumber();

private:
  std::string Name;
  Type ReturnType;
  Module *Parent = nullptr;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockList Blocks;
};

} // namespace msem

#endif // MSEM_IR_FUNCTION_H
