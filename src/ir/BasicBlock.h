//===- ir/BasicBlock.h - IR basic blocks -------------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block owns an ordered list of instructions ending in exactly one
/// terminator (enforced by the verifier, not the type system, so that passes
/// can stage partial rewrites).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_BASICBLOCK_H
#define MSEM_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace msem {

class Function;

/// A straight-line sequence of instructions with a single terminator.
class BasicBlock {
public:
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  Function *parent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  uint32_t id() const { return Id; }
  void setId(uint32_t NewId) { Id = NewId; }

  // Instruction list ----------------------------------------------------
  using InstrList = std::vector<std::unique_ptr<Instruction>>;
  InstrList &instructions() { return Instrs; }
  const InstrList &instructions() const { return Instrs; }
  bool empty() const { return Instrs.empty(); }
  size_t size() const { return Instrs.size(); }

  /// Appends \p I to the end of the block (after any terminator; callers
  /// building blocks append the terminator last).
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I at position \p Index.
  Instruction *insertAt(size_t Index, std::unique_ptr<Instruction> I);

  /// Inserts \p I immediately before the terminator (which must exist).
  Instruction *insertBeforeTerminator(std::unique_ptr<Instruction> I);

  /// Removes and destroys the instruction at \p Index. The caller must have
  /// already rewritten all uses.
  void eraseAt(size_t Index);

  /// Removes the instruction at \p Index and returns ownership.
  std::unique_ptr<Instruction> detachAt(size_t Index);

  /// The terminator, or null if the block is still being built.
  Instruction *terminator() const;

  /// Index of instruction \p I within this block; asserts if absent.
  size_t indexOf(const Instruction *I) const;

  /// Successor blocks derived from the terminator (empty if none).
  std::vector<BasicBlock *> successors() const;

private:
  std::string Name;
  Function *Parent = nullptr;
  uint32_t Id = 0;
  InstrList Instrs;
};

} // namespace msem

#endif // MSEM_IR_BASICBLOCK_H
