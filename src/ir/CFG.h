//===- ir/CFG.h - Control-flow graph utilities -------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predecessor maps and traversal orders over a Function's CFG. These are
/// computed on demand (analyses are not cached across mutations; passes
/// recompute after structural changes).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_CFG_H
#define MSEM_IR_CFG_H

#include "ir/Function.h"

#include <unordered_map>
#include <vector>

namespace msem {

/// Predecessor lists for every block of \p F (unreachable blocks included
/// with empty lists).
std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
computePredecessors(const Function &F);

/// Blocks of \p F in reverse post-order from the entry. Unreachable blocks
/// are omitted.
std::vector<BasicBlock *> reversePostOrder(const Function &F);

/// True if \p To is reachable from \p From along CFG edges.
bool isReachable(const BasicBlock *From, const BasicBlock *To);

/// Removes blocks unreachable from the entry (verifier-safe: also strips
/// phi incomings that reference removed blocks). Returns the number of
/// removed blocks.
unsigned removeUnreachableBlocks(Function &F);

} // namespace msem

#endif // MSEM_IR_CFG_H
