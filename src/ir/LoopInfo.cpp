//===- ir/LoopInfo.cpp - Natural loop detection ------------------------------===//

#include "ir/LoopInfo.h"

#include "ir/CFG.h"

#include <algorithm>

using namespace msem;

LoopAnalysis::LoopAnalysis(Function &F, const DominatorTree &DT) {
  auto Preds = computePredecessors(F);

  // Find back edges and collect the loop body per header.
  // Multiple back edges to one header form a single natural loop.
  std::unordered_map<BasicBlock *, std::vector<BasicBlock *>> HeaderLatches;
  for (const auto &BB : F.blocks())
    for (BasicBlock *Succ : BB->successors())
      if (DT.dominates(Succ, BB.get()))
        HeaderLatches[Succ].push_back(BB.get());

  for (auto &[Header, Latches] : HeaderLatches) {
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = Latches;

    // Body = header + all blocks that reach a latch without passing through
    // the header (classic natural-loop body computation).
    std::unordered_set<BasicBlock *> Body{Header};
    std::vector<BasicBlock *> Work;
    for (BasicBlock *Latch : Latches)
      if (Body.insert(Latch).second)
        Work.push_back(Latch);
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (BasicBlock *Pred : Preds.at(BB))
        if (Body.insert(Pred).second)
          Work.push_back(Pred);
    }
    // Keep a deterministic function-order block list.
    for (const auto &BB : F.blocks())
      if (Body.count(BB.get()))
        L->Blocks.push_back(BB.get());

    // Preheader: unique out-of-loop predecessor of the header.
    BasicBlock *Pre = nullptr;
    bool Unique = true;
    for (BasicBlock *Pred : Preds.at(Header)) {
      if (Body.count(Pred))
        continue;
      if (Pre && Pre != Pred)
        Unique = false;
      Pre = Pred;
    }
    if (Unique && Pre && Pre->successors().size() == 1)
      L->Preheader = Pre;

    // Exit blocks.
    std::unordered_set<BasicBlock *> Exits;
    for (BasicBlock *BB : L->Blocks)
      for (BasicBlock *Succ : BB->successors())
        if (!Body.count(Succ) && Exits.insert(Succ).second)
          L->ExitBlocks.push_back(Succ);

    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B if B contains A's header and A != B.
  for (auto &A : Loops) {
    for (auto &B : Loops) {
      if (A == B || !B->contains(A->Header))
        continue;
      // Choose the smallest enclosing loop as parent.
      if (!A->ParentLoop || B->Blocks.size() < A->ParentLoop->Blocks.size())
        A->ParentLoop = B.get();
    }
  }
  for (auto &L : Loops) {
    unsigned Depth = 1;
    for (Loop *P = L->ParentLoop; P; P = P->ParentLoop)
      ++Depth;
    L->Depth = Depth;
  }

  // Innermost-loop map: the smallest loop containing each block.
  for (auto &L : Loops) {
    for (BasicBlock *BB : L->Blocks) {
      auto It = InnermostLoop.find(BB);
      if (It == InnermostLoop.end() ||
          L->Blocks.size() < It->second->Blocks.size())
        InnermostLoop[BB] = L.get();
    }
  }

  // Deterministic order: sort outermost first, then by header block index.
  std::sort(Loops.begin(), Loops.end(), [&](const auto &A, const auto &B) {
    if (A->Depth != B->Depth)
      return A->Depth < B->Depth;
    return F.indexOfBlock(A->Header) < F.indexOfBlock(B->Header);
  });
}

Loop *LoopAnalysis::loopFor(const BasicBlock *BB) const {
  auto It = InnermostLoop.find(BB);
  return It == InnermostLoop.end() ? nullptr : It->second;
}

bool LoopAnalysis::matchCountedLoop(const Loop &L, CountedLoop &Out) {
  if (L.Latches.size() != 1)
    return false;
  BasicBlock *Latch = L.Latches.front();
  Instruction *Term = Latch->terminator();
  if (!Term || Term->opcode() != Opcode::Br)
    return false;
  // One side of the branch must re-enter the header.
  if (Term->successor(0) != L.Header && Term->successor(1) != L.Header)
    return false;

  auto *Cond = dyn_cast<Instruction>(Term->operand(0));
  if (!Cond || Cond->opcode() != Opcode::ICmp)
    return false;

  // Find an induction phi in the header: iv = phi [init, pre], [next, latch]
  // where next = add iv, constant-step and the compare reads iv or next.
  for (const auto &I : L.Header->instructions()) {
    if (I->opcode() != Opcode::Phi)
      continue;
    if (I->numOperands() != 2)
      continue;
    Instruction *Phi = I.get();
    // Identify the latch-incoming value.
    Value *FromLatch = nullptr;
    Value *FromPre = nullptr;
    for (size_t Idx = 0; Idx < 2; ++Idx) {
      if (Phi->phiBlocks()[Idx] == Latch)
        FromLatch = Phi->operand(Idx);
      else
        FromPre = Phi->operand(Idx);
    }
    if (!FromLatch || !FromPre)
      continue;
    auto *Next = dyn_cast<Instruction>(FromLatch);
    if (!Next || Next->opcode() != Opcode::Add)
      continue;
    // Step must be add(phi, const) in either operand order.
    Value *Other = nullptr;
    if (Next->operand(0) == Phi)
      Other = Next->operand(1);
    else if (Next->operand(1) == Phi)
      Other = Next->operand(0);
    if (!Other)
      continue;
    auto *StepC = dyn_cast<Constant>(Other);
    if (!StepC || StepC->intValue() == 0)
      continue;
    // Compare must read the phi or the next value against a loop-invariant
    // bound (we only require the other operand not be phi/next here; full
    // invariance is the unroller's job to verify).
    Value *CmpA = Cond->operand(0);
    Value *CmpB = Cond->operand(1);
    bool OnNext = (CmpA == Next || CmpB == Next);
    bool OnPhi = (CmpA == Phi || CmpB == Phi);
    if (!OnNext && !OnPhi)
      continue;
    Value *Bound = nullptr;
    if (CmpA == Next || CmpA == Phi)
      Bound = CmpB;
    else
      Bound = CmpA;

    Out.IndVar = Phi;
    Out.Step = Next;
    Out.Init = FromPre;
    Out.Bound = Bound;
    Out.Cond = Cond;
    Out.LatchBr = Term;
    Out.StepValue = StepC->intValue();
    Out.CondOnNext = OnNext;
    return true;
  }
  return false;
}

BasicBlock *LoopAnalysis::ensurePreheader(Function &F, Loop &L) {
  if (L.Preheader)
    return L.Preheader;
  auto Preds = computePredecessors(F);

  BasicBlock *Pre = F.createBlock(L.Header->name() + ".preheader");
  auto Jump = std::make_unique<Instruction>(Opcode::Jmp, Type::Void);
  Jump->setSuccessor(0, L.Header);
  Pre->append(std::move(Jump));

  // Redirect all out-of-loop entry edges to the new preheader and retarget
  // the header phis' out-of-loop incomings.
  for (BasicBlock *Pred : Preds.at(L.Header)) {
    if (L.contains(Pred))
      continue;
    Instruction *Term = Pred->terminator();
    for (unsigned S = 0; S < Term->numSuccessors(); ++S)
      if (Term->successor(S) == L.Header)
        Term->setSuccessor(S, Pre);
  }
  for (auto &I : L.Header->instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    // Merge all out-of-loop incomings into one via the preheader. The
    // builder-produced loops always have a single entry edge, so a simple
    // retarget suffices; assert that assumption.
    unsigned OutOfLoop = 0;
    for (BasicBlock *&From : I->phiBlocks()) {
      if (!L.contains(From)) {
        From = Pre;
        ++OutOfLoop;
      }
    }
    assert(OutOfLoop <= 1 && "multi-entry loop needs phi merging");
    (void)OutOfLoop;
  }
  L.Preheader = Pre;
  return Pre;
}
