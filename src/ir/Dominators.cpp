//===- ir/Dominators.cpp - Dominator tree -----------------------------------===//

#include "ir/Dominators.h"

#include "ir/CFG.h"

using namespace msem;

DominatorTree::DominatorTree(const Function &F) {
  std::vector<BasicBlock *> RPO = reversePostOrder(F);
  for (size_t I = 0; I < RPO.size(); ++I)
    RpoIndex[RPO[I]] = I;
  auto Preds = computePredecessors(F);

  if (RPO.empty())
    return;
  BasicBlock *Entry = RPO.front();
  IDom[Entry] = Entry; // Sentinel; exposed as null by idom().

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RpoIndex.at(A) > RpoIndex.at(B))
        A = IDom.at(A);
      while (RpoIndex.at(B) > RpoIndex.at(A))
        B = IDom.at(B);
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < RPO.size(); ++I) {
      BasicBlock *BB = RPO[I];
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : Preds.at(BB)) {
        if (!IDom.count(Pred))
          continue; // Unprocessed or unreachable predecessor.
        NewIDom = NewIDom ? Intersect(NewIDom, Pred) : Pred;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  if (It == IDom.end() || It->second == BB)
    return nullptr;
  return It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (!RpoIndex.count(A) || !RpoIndex.count(B))
    return false;
  const BasicBlock *Runner = B;
  for (;;) {
    if (Runner == A)
      return true;
    auto It = IDom.find(Runner);
    if (It == IDom.end() || It->second == Runner)
      return false; // Reached the entry without meeting A.
    Runner = It->second;
  }
}

bool DominatorTree::valueDominatesUse(const Instruction *Def,
                                      const Instruction *User,
                                      unsigned OpIdx) const {
  const BasicBlock *DefBB = Def->parent();
  if (User->opcode() == Opcode::Phi) {
    // A phi use is logically at the end of the incoming edge's source.
    const BasicBlock *Incoming = User->phiBlocks()[OpIdx];
    return dominates(DefBB, Incoming);
  }
  const BasicBlock *UseBB = User->parent();
  if (DefBB != UseBB)
    return dominates(DefBB, UseBB);
  // Same block: the definition must appear strictly before the use.
  return DefBB->indexOf(Def) < UseBB->indexOf(User);
}
