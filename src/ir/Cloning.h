//===- ir/Cloning.h - IR cloning utilities -----------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cloning of instructions and block regions with value remapping; the
/// machinery underneath inlining and loop unrolling.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_CLONING_H
#define MSEM_IR_CLONING_H

#include "ir/Function.h"

#include <unordered_map>
#include <vector>

namespace msem {

/// Maps original values/blocks to their clones during region cloning.
struct CloneMapping {
  std::unordered_map<Value *, Value *> Values;
  std::unordered_map<BasicBlock *, BasicBlock *> Blocks;

  /// Returns the clone of \p V if present, else \p V itself.
  Value *lookup(Value *V) const {
    auto It = Values.find(V);
    return It == Values.end() ? V : It->second;
  }
};

/// Clones a single instruction. Operands, successors and phi blocks still
/// reference the originals; callers remap afterwards.
std::unique_ptr<Instruction> cloneInstruction(const Instruction &I);

/// Clones the blocks \p Region (in order) into \p Dest, appending the new
/// blocks with names suffixed by \p Suffix and filling \p Map. Operand,
/// successor and phi references that point inside the region are remapped;
/// references to values/blocks outside the region are left as-is.
std::vector<BasicBlock *> cloneRegion(const std::vector<BasicBlock *> &Region,
                                      Function &Dest,
                                      const std::string &Suffix,
                                      CloneMapping &Map);

} // namespace msem

#endif // MSEM_IR_CLONING_H
