//===- ir/IRBuilder.cpp - Convenience IR construction ----------------------===//

#include "ir/IRBuilder.h"

using namespace msem;

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> I) {
  assert(Block && "no insertion point set");
  return Block->append(std::move(I));
}

Value *IRBuilder::binary(Opcode Op, Value *A, Value *B) {
  Type Expected = (Op >= Opcode::FAdd && Op <= Opcode::FDiv) ? Type::F64
                                                             : Type::I64;
  assert(A->type() == Expected && B->type() == Expected &&
         "binary operand type mismatch");
  auto I = std::make_unique<Instruction>(Op, Expected);
  I->addOperand(A);
  I->addOperand(B);
  return insert(std::move(I));
}

Value *IRBuilder::icmp(CmpPred Pred, Value *A, Value *B) {
  assert(A->type() == Type::I64 && B->type() == Type::I64 &&
         "icmp requires integer operands");
  auto I = std::make_unique<Instruction>(Opcode::ICmp, Type::I64);
  I->setCmpPred(Pred);
  I->addOperand(A);
  I->addOperand(B);
  return insert(std::move(I));
}

Value *IRBuilder::fcmp(CmpPred Pred, Value *A, Value *B) {
  assert(A->type() == Type::F64 && B->type() == Type::F64 &&
         "fcmp requires float operands");
  auto I = std::make_unique<Instruction>(Opcode::FCmp, Type::I64);
  I->setCmpPred(Pred);
  I->addOperand(A);
  I->addOperand(B);
  return insert(std::move(I));
}

Value *IRBuilder::siToFp(Value *A) {
  assert(A->type() == Type::I64 && "sitofp requires an integer");
  auto I = std::make_unique<Instruction>(Opcode::SIToFP, Type::F64);
  I->addOperand(A);
  return insert(std::move(I));
}

Value *IRBuilder::fpToSi(Value *A) {
  assert(A->type() == Type::F64 && "fptosi requires a float");
  auto I = std::make_unique<Instruction>(Opcode::FPToSI, Type::I64);
  I->addOperand(A);
  return insert(std::move(I));
}

Value *IRBuilder::select(Value *Cond, Value *A, Value *B) {
  assert(Cond->type() == Type::I64 && "select condition must be i64");
  assert(A->type() == B->type() && "select arm type mismatch");
  auto I = std::make_unique<Instruction>(Opcode::Select, A->type());
  I->addOperand(Cond);
  I->addOperand(A);
  I->addOperand(B);
  return insert(std::move(I));
}

Value *IRBuilder::ptrAdd(Value *Base, Value *OffsetBytes) {
  assert(Base->type() == Type::Ptr && "ptradd base must be a pointer");
  assert(OffsetBytes->type() == Type::I64 && "ptradd offset must be i64");
  auto I = std::make_unique<Instruction>(Opcode::PtrAdd, Type::Ptr);
  I->addOperand(Base);
  I->addOperand(OffsetBytes);
  return insert(std::move(I));
}

Value *IRBuilder::elemPtr(Value *Base, Value *Index, MemKind MK) {
  Value *Offset = mul(Index, constInt(memKindSize(MK)));
  return ptrAdd(Base, Offset);
}

Value *IRBuilder::load(Value *Ptr, MemKind MK) {
  assert(Ptr->type() == Type::Ptr && "load address must be a pointer");
  auto I = std::make_unique<Instruction>(Opcode::Load, memKindValueType(MK));
  I->setMemKind(MK);
  I->addOperand(Ptr);
  return insert(std::move(I));
}

void IRBuilder::store(Value *V, Value *Ptr, MemKind MK) {
  assert(Ptr->type() == Type::Ptr && "store address must be a pointer");
  assert(V->type() == memKindValueType(MK) && "store value type mismatch");
  auto I = std::make_unique<Instruction>(Opcode::Store, Type::Void);
  I->setMemKind(MK);
  I->addOperand(V);
  I->addOperand(Ptr);
  insert(std::move(I));
}

void IRBuilder::prefetch(Value *Ptr) {
  assert(Ptr->type() == Type::Ptr && "prefetch address must be a pointer");
  auto I = std::make_unique<Instruction>(Opcode::Prefetch, Type::Void);
  I->addOperand(Ptr);
  insert(std::move(I));
}

Value *IRBuilder::alloca(uint64_t Bytes) {
  auto I = std::make_unique<Instruction>(Opcode::Alloca, Type::Ptr);
  I->setAllocaSize(Bytes);
  return insert(std::move(I));
}

void IRBuilder::br(Value *Cond, BasicBlock *Then, BasicBlock *Else) {
  assert(Cond->type() == Type::I64 && "branch condition must be i64");
  auto I = std::make_unique<Instruction>(Opcode::Br, Type::Void);
  I->addOperand(Cond);
  I->setSuccessor(0, Then);
  I->setSuccessor(1, Else);
  insert(std::move(I));
}

void IRBuilder::jmp(BasicBlock *Dest) {
  auto I = std::make_unique<Instruction>(Opcode::Jmp, Type::Void);
  I->setSuccessor(0, Dest);
  insert(std::move(I));
}

void IRBuilder::ret(Value *V) {
  auto I = std::make_unique<Instruction>(Opcode::Ret, Type::Void);
  if (V)
    I->addOperand(V);
  insert(std::move(I));
}

Value *IRBuilder::call(Function *Callee, std::vector<Value *> Args) {
  assert(Callee && "call requires a callee");
  assert(Args.size() == Callee->numArgs() && "call argument count mismatch");
  for (size_t I = 0; I < Args.size(); ++I) {
    assert(Args[I]->type() == Callee->arg(I)->type() &&
           "call argument type mismatch");
    (void)I;
  }
  auto I = std::make_unique<Instruction>(Opcode::Call, Callee->returnType());
  I->setCallee(Callee);
  for (Value *A : Args)
    I->addOperand(A);
  return insert(std::move(I));
}

Instruction *IRBuilder::phi(Type Ty) {
  auto I = std::make_unique<Instruction>(Opcode::Phi, Ty);
  // Phis must appear at the head of the block, after any existing phis.
  assert(Block && "no insertion point set");
  size_t Pos = 0;
  while (Pos < Block->size() &&
         Block->instructions()[Pos]->opcode() == Opcode::Phi)
    ++Pos;
  return Block->insertAt(Pos, std::move(I));
}

void IRBuilder::emit(Value *V) {
  assert((V->type() == Type::I64 || V->type() == Type::F64) &&
         "emit requires a value");
  auto I = std::make_unique<Instruction>(Opcode::Emit, Type::Void);
  I->addOperand(V);
  insert(std::move(I));
}
