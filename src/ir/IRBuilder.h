//===- ir/IRBuilder.h - Convenience IR construction --------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder constructs instructions at an insertion point with full type
/// checking. The workloads (synthetic SPEC programs) are written against
/// this interface.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_IRBUILDER_H
#define MSEM_IR_IRBUILDER_H

#include "ir/Module.h"

namespace msem {

/// Builds instructions appended to the end of the current block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &module() { return M; }

  /// Sets the insertion block; new instructions are appended to its end.
  void setInsertPoint(BasicBlock *BB) { Block = BB; }
  BasicBlock *insertBlock() const { return Block; }

  // Constants -----------------------------------------------------------
  Constant *constInt(int64_t V) { return M.constInt(V); }
  Constant *constFloat(double V) { return M.constFloat(V); }

  // Integer arithmetic ----------------------------------------------------
  Value *add(Value *A, Value *B) { return binary(Opcode::Add, A, B); }
  Value *sub(Value *A, Value *B) { return binary(Opcode::Sub, A, B); }
  Value *mul(Value *A, Value *B) { return binary(Opcode::Mul, A, B); }
  Value *divS(Value *A, Value *B) { return binary(Opcode::Div, A, B); }
  Value *rem(Value *A, Value *B) { return binary(Opcode::Rem, A, B); }
  Value *andOp(Value *A, Value *B) { return binary(Opcode::And, A, B); }
  Value *orOp(Value *A, Value *B) { return binary(Opcode::Or, A, B); }
  Value *xorOp(Value *A, Value *B) { return binary(Opcode::Xor, A, B); }
  Value *shl(Value *A, Value *B) { return binary(Opcode::Shl, A, B); }
  Value *shr(Value *A, Value *B) { return binary(Opcode::Shr, A, B); }

  // Floating point ---------------------------------------------------------
  Value *fadd(Value *A, Value *B) { return binary(Opcode::FAdd, A, B); }
  Value *fsub(Value *A, Value *B) { return binary(Opcode::FSub, A, B); }
  Value *fmul(Value *A, Value *B) { return binary(Opcode::FMul, A, B); }
  Value *fdiv(Value *A, Value *B) { return binary(Opcode::FDiv, A, B); }

  // Comparisons and conversions --------------------------------------------
  Value *icmp(CmpPred Pred, Value *A, Value *B);
  Value *fcmp(CmpPred Pred, Value *A, Value *B);
  Value *siToFp(Value *A);
  Value *fpToSi(Value *A);
  Value *select(Value *Cond, Value *A, Value *B);

  // Memory -------------------------------------------------------------
  /// Pointer plus byte offset.
  Value *ptrAdd(Value *Base, Value *OffsetBytes);
  /// Pointer to element \p Index of an array of \p MK elements at \p Base.
  Value *elemPtr(Value *Base, Value *Index, MemKind MK);
  Value *load(Value *Ptr, MemKind MK);
  void store(Value *V, Value *Ptr, MemKind MK);
  void prefetch(Value *Ptr);
  Value *alloca(uint64_t Bytes);

  // Array helpers (load/store element Index of array at Base) ------------
  Value *loadElem(Value *Base, Value *Index, MemKind MK) {
    return load(elemPtr(Base, Index, MK), MK);
  }
  void storeElem(Value *V, Value *Base, Value *Index, MemKind MK) {
    store(V, elemPtr(Base, Index, MK), MK);
  }

  // Control flow -----------------------------------------------------------
  void br(Value *Cond, BasicBlock *Then, BasicBlock *Else);
  void jmp(BasicBlock *Dest);
  void ret(Value *V = nullptr);
  Value *call(Function *Callee, std::vector<Value *> Args);
  Instruction *phi(Type Ty);
  void emit(Value *V);

private:
  Value *binary(Opcode Op, Value *A, Value *B);
  Instruction *insert(std::unique_ptr<Instruction> I);

  Module &M;
  BasicBlock *Block = nullptr;
};

} // namespace msem

#endif // MSEM_IR_IRBUILDER_H
