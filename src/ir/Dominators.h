//===- ir/Dominators.h - Dominator tree --------------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree computed with the Cooper-Harvey-Kennedy iterative
/// algorithm over reverse post-order. Used by the verifier (SSA dominance)
/// and the loop analyses (back-edge detection, LICM safety).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_DOMINATORS_H
#define MSEM_IR_DOMINATORS_H

#include "ir/Function.h"

#include <unordered_map>
#include <vector>

namespace msem {

/// Immediate-dominator tree over the reachable blocks of one function.
class DominatorTree {
public:
  /// Builds the tree for \p F. Unreachable blocks have no entry.
  explicit DominatorTree(const Function &F);

  /// Immediate dominator of \p BB; null for the entry block or blocks
  /// unreachable from the entry.
  BasicBlock *idom(const BasicBlock *BB) const;

  /// True if \p A dominates \p B (reflexive). Unreachable blocks dominate
  /// nothing and are dominated by nothing.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// True if instruction \p Def dominates the use of it at instruction
  /// \p User's operand \p OpIdx (phi uses are checked against the incoming
  /// edge's source block).
  bool valueDominatesUse(const Instruction *Def, const Instruction *User,
                         unsigned OpIdx) const;

  /// True if \p BB was reachable when the tree was built.
  bool isReachableBlock(const BasicBlock *BB) const {
    return RpoIndex.count(BB) != 0;
  }

private:
  std::unordered_map<const BasicBlock *, BasicBlock *> IDom;
  std::unordered_map<const BasicBlock *, size_t> RpoIndex;
};

} // namespace msem

#endif // MSEM_IR_DOMINATORS_H
