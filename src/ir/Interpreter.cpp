//===- ir/Interpreter.cpp - Reference IR interpreter -------------------------===//

#include "ir/Interpreter.h"

#include "support/Format.h"

#include <cmath>
#include <cstring>
#include <unordered_map>

using namespace msem;

namespace {

/// A runtime value: both representations are kept; the static type of the
/// producing Value says which one is meaningful.
struct RtValue {
  int64_t I = 0;
  double F = 0.0;

  static RtValue ofInt(int64_t V) {
    RtValue R;
    R.I = V;
    return R;
  }
  static RtValue ofFloat(double V) {
    RtValue R;
    R.F = V;
    return R;
  }
};

class Machine {
public:
  Machine(const Module &M, uint64_t MemoryBytes, uint64_t MaxInstructions)
      : M(M), MaxInstructions(MaxInstructions) {
    Memory.resize(MemoryBytes, 0);
    layoutGlobals();
    // Stack occupies the top of memory and grows down.
    StackPtr = MemoryBytes;
  }

  InterpResult run() {
    const Function *Main = M.mainFunction();
    RtValue Ret = callFunction(*Main, {});
    if (!Result.Trapped)
      Result.ReturnValue = Ret.I;
    return std::move(Result);
  }

private:
  void layoutGlobals() {
    uint64_t Base = 4096; // Keep address 0 unmapped.
    for (const auto &G : M.globals()) {
      GlobalBase[G.get()] = Base;
      const auto &Init = G->initializer();
      if (!Init.empty() && Base + Init.size() <= Memory.size())
        std::memcpy(Memory.data() + Base, Init.data(), Init.size());
      Base += (G->sizeInBytes() + 15) & ~15ull; // 16-byte align each global.
    }
    GlobalsEnd = Base;
  }

  void trap(const std::string &Message) {
    if (Result.Trapped)
      return;
    Result.Trapped = true;
    Result.TrapMessage = Message;
  }

  bool checkAccess(uint64_t Addr, unsigned Size) {
    if (Addr < 4096 || Addr + Size > Memory.size()) {
      trap(formatString("memory access out of bounds: addr=%llu size=%u",
                        (unsigned long long)Addr, Size));
      return false;
    }
    return true;
  }

  RtValue loadMem(uint64_t Addr, MemKind MK) {
    if (!checkAccess(Addr, memKindSize(MK)))
      return RtValue();
    switch (MK) {
    case MemKind::Int8:
      return RtValue::ofInt(Memory[Addr]);
    case MemKind::Int32: {
      int32_t V;
      std::memcpy(&V, Memory.data() + Addr, 4);
      return RtValue::ofInt(V);
    }
    case MemKind::Int64: {
      int64_t V;
      std::memcpy(&V, Memory.data() + Addr, 8);
      return RtValue::ofInt(V);
    }
    case MemKind::Float64: {
      double V;
      std::memcpy(&V, Memory.data() + Addr, 8);
      return RtValue::ofFloat(V);
    }
    }
    return RtValue();
  }

  void storeMem(uint64_t Addr, MemKind MK, RtValue V) {
    if (!checkAccess(Addr, memKindSize(MK)))
      return;
    switch (MK) {
    case MemKind::Int8: {
      uint8_t B = static_cast<uint8_t>(V.I);
      Memory[Addr] = B;
      break;
    }
    case MemKind::Int32: {
      int32_t W = static_cast<int32_t>(V.I);
      std::memcpy(Memory.data() + Addr, &W, 4);
      break;
    }
    case MemKind::Int64:
      std::memcpy(Memory.data() + Addr, &V.I, 8);
      break;
    case MemKind::Float64:
      std::memcpy(Memory.data() + Addr, &V.F, 8);
      break;
    }
  }

  RtValue callFunction(const Function &F, const std::vector<RtValue> &Args) {
    if (Result.Trapped)
      return RtValue();
    if (++CallDepth > 1000) {
      trap("call stack overflow (depth > 1000)");
      --CallDepth;
      return RtValue();
    }
    uint64_t SavedStack = StackPtr;

    std::unordered_map<const Value *, RtValue> Env;
    for (unsigned I = 0; I < F.numArgs(); ++I)
      Env[F.arg(I)] = Args[I];

    auto Eval = [&](const Value *V) -> RtValue {
      switch (V->kind()) {
      case ValueKind::Constant: {
        const auto *C = cast<Constant>(V);
        return C->type() == Type::I64 ? RtValue::ofInt(C->intValue())
                                      : RtValue::ofFloat(C->floatValue());
      }
      case ValueKind::Global:
        return RtValue::ofInt(
            static_cast<int64_t>(GlobalBase.at(cast<GlobalVariable>(V))));
      default: {
        auto It = Env.find(V);
        assert(It != Env.end() && "use of undefined value at run time");
        return It->second;
      }
      }
    };

    const BasicBlock *Block = F.entry();
    const BasicBlock *PrevBlock = nullptr;
    RtValue RetVal;

    while (!Result.Trapped) {
      // Evaluate all phis in parallel against PrevBlock.
      std::vector<std::pair<const Instruction *, RtValue>> PhiUpdates;
      size_t Idx = 0;
      const auto &Instrs = Block->instructions();
      while (Idx < Instrs.size() && Instrs[Idx]->opcode() == Opcode::Phi) {
        const Instruction *Phi = Instrs[Idx].get();
        PhiUpdates.push_back(
            {Phi, Eval(Phi->phiIncomingFor(PrevBlock))});
        ++Idx;
      }
      for (auto &[Phi, V] : PhiUpdates)
        Env[Phi] = V;
      Result.InstructionsExecuted += PhiUpdates.size();

      bool Transferred = false;
      for (; Idx < Instrs.size() && !Result.Trapped; ++Idx) {
        const Instruction &I = *Instrs[Idx];
        if (++Result.InstructionsExecuted > MaxInstructions) {
          trap("instruction budget exhausted");
          break;
        }
        switch (I.opcode()) {
        case Opcode::Add:
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I +
                                   Eval(I.operand(1)).I);
          break;
        case Opcode::Sub:
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I -
                                   Eval(I.operand(1)).I);
          break;
        case Opcode::Mul:
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I *
                                   Eval(I.operand(1)).I);
          break;
        case Opcode::Div: {
          int64_t B = Eval(I.operand(1)).I;
          if (B == 0) {
            trap("integer division by zero");
            break;
          }
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I / B);
          break;
        }
        case Opcode::Rem: {
          int64_t B = Eval(I.operand(1)).I;
          if (B == 0) {
            trap("integer remainder by zero");
            break;
          }
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I % B);
          break;
        }
        case Opcode::And:
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I &
                                   Eval(I.operand(1)).I);
          break;
        case Opcode::Or:
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I |
                                   Eval(I.operand(1)).I);
          break;
        case Opcode::Xor:
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I ^
                                   Eval(I.operand(1)).I);
          break;
        case Opcode::Shl:
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I
                                   << (Eval(I.operand(1)).I & 63));
          break;
        case Opcode::Shr:
          Env[&I] =
              RtValue::ofInt(Eval(I.operand(0)).I >> (Eval(I.operand(1)).I & 63));
          break;
        case Opcode::ICmp: {
          int64_t A = Eval(I.operand(0)).I, B = Eval(I.operand(1)).I;
          Env[&I] = RtValue::ofInt(compareInt(I.cmpPred(), A, B));
          break;
        }
        case Opcode::FAdd:
          Env[&I] = RtValue::ofFloat(Eval(I.operand(0)).F +
                                     Eval(I.operand(1)).F);
          break;
        case Opcode::FSub:
          Env[&I] = RtValue::ofFloat(Eval(I.operand(0)).F -
                                     Eval(I.operand(1)).F);
          break;
        case Opcode::FMul:
          Env[&I] = RtValue::ofFloat(Eval(I.operand(0)).F *
                                     Eval(I.operand(1)).F);
          break;
        case Opcode::FDiv:
          Env[&I] = RtValue::ofFloat(Eval(I.operand(0)).F /
                                     Eval(I.operand(1)).F);
          break;
        case Opcode::FCmp: {
          double A = Eval(I.operand(0)).F, B = Eval(I.operand(1)).F;
          Env[&I] = RtValue::ofInt(compareFloat(I.cmpPred(), A, B));
          break;
        }
        case Opcode::SIToFP:
          Env[&I] =
              RtValue::ofFloat(static_cast<double>(Eval(I.operand(0)).I));
          break;
        case Opcode::FPToSI:
          Env[&I] =
              RtValue::ofInt(static_cast<int64_t>(Eval(I.operand(0)).F));
          break;
        case Opcode::PtrAdd:
          Env[&I] = RtValue::ofInt(Eval(I.operand(0)).I +
                                   Eval(I.operand(1)).I);
          break;
        case Opcode::Load:
          Env[&I] = loadMem(static_cast<uint64_t>(Eval(I.operand(0)).I),
                            I.memKind());
          break;
        case Opcode::Store:
          storeMem(static_cast<uint64_t>(Eval(I.operand(1)).I), I.memKind(),
                   Eval(I.operand(0)));
          break;
        case Opcode::Prefetch:
          break; // Semantically a no-op.
        case Opcode::Alloca: {
          uint64_t Bytes = (I.allocaSize() + 15) & ~15ull;
          if (StackPtr < GlobalsEnd + Bytes) {
            trap("stack overflow in alloca");
            break;
          }
          StackPtr -= Bytes;
          Env[&I] = RtValue::ofInt(static_cast<int64_t>(StackPtr));
          break;
        }
        case Opcode::Select: {
          RtValue C = Eval(I.operand(0));
          Env[&I] = C.I != 0 ? Eval(I.operand(1)) : Eval(I.operand(2));
          break;
        }
        case Opcode::Call: {
          std::vector<RtValue> CallArgs;
          CallArgs.reserve(I.numOperands());
          for (const Value *A : I.operands())
            CallArgs.push_back(Eval(A));
          RtValue R = callFunction(*I.callee(), CallArgs);
          if (I.type() != Type::Void)
            Env[&I] = R;
          break;
        }
        case Opcode::Emit: {
          EmitRecord Rec;
          RtValue V = Eval(I.operand(0));
          if (I.operand(0)->type() == Type::F64) {
            Rec.IsFloat = true;
            Rec.FpVal = V.F;
          } else {
            Rec.IntVal = V.I;
          }
          Result.Output.push_back(Rec);
          break;
        }
        case Opcode::Br: {
          PrevBlock = Block;
          Block = Eval(I.operand(0)).I != 0 ? I.successor(0)
                                            : I.successor(1);
          Transferred = true;
          break;
        }
        case Opcode::Jmp:
          PrevBlock = Block;
          Block = I.successor(0);
          Transferred = true;
          break;
        case Opcode::Ret:
          if (I.numOperands() == 1)
            RetVal = Eval(I.operand(0));
          StackPtr = SavedStack;
          --CallDepth;
          return RetVal;
        case Opcode::Phi:
          assert(false && "phi past the phi prefix");
          break;
        }
        if (Transferred)
          break;
      }
      if (!Transferred && !Result.Trapped) {
        trap("control fell off the end of block " + Block->name());
      }
      if (Result.Trapped)
        break;
    }
    StackPtr = SavedStack;
    --CallDepth;
    return RetVal;
  }

  static int64_t compareInt(CmpPred P, int64_t A, int64_t B) {
    switch (P) {
    case CmpPred::EQ:
      return A == B;
    case CmpPred::NE:
      return A != B;
    case CmpPred::LT:
      return A < B;
    case CmpPred::LE:
      return A <= B;
    case CmpPred::GT:
      return A > B;
    case CmpPred::GE:
      return A >= B;
    }
    return 0;
  }

  static int64_t compareFloat(CmpPred P, double A, double B) {
    switch (P) {
    case CmpPred::EQ:
      return A == B;
    case CmpPred::NE:
      return A != B;
    case CmpPred::LT:
      return A < B;
    case CmpPred::LE:
      return A <= B;
    case CmpPred::GT:
      return A > B;
    case CmpPred::GE:
      return A >= B;
    }
    return 0;
  }

  const Module &M;
  uint64_t MaxInstructions;
  std::vector<uint8_t> Memory;
  std::unordered_map<const GlobalVariable *, uint64_t> GlobalBase;
  uint64_t GlobalsEnd = 4096;
  uint64_t StackPtr = 0;
  unsigned CallDepth = 0;
  InterpResult Result;
};

} // namespace

InterpResult Interpreter::run(const Module &M) {
  Machine Mach(M, MemoryBytes, MaxInstructions);
  return Mach.run();
}
