//===- ir/Cloning.cpp - IR cloning utilities ---------------------------------===//

#include "ir/Cloning.h"

using namespace msem;

std::unique_ptr<Instruction> msem::cloneInstruction(const Instruction &I) {
  auto Clone = std::make_unique<Instruction>(I.opcode(), I.type());
  Clone->setCmpPred(I.cmpPred());
  Clone->setMemKind(I.memKind());
  Clone->setAllocaSize(I.allocaSize());
  Clone->setCallee(I.callee());
  for (Value *Op : I.operands())
    Clone->addOperand(Op);
  for (unsigned S = 0; S < I.numSuccessors(); ++S)
    Clone->setSuccessor(S, I.successor(S));
  Clone->phiBlocks() = I.phiBlocks();
  return Clone;
}

std::vector<BasicBlock *>
msem::cloneRegion(const std::vector<BasicBlock *> &Region, Function &Dest,
                  const std::string &Suffix, CloneMapping &Map) {
  std::vector<BasicBlock *> NewBlocks;
  NewBlocks.reserve(Region.size());

  // First pass: create blocks and clone instructions, recording the map.
  for (BasicBlock *BB : Region) {
    BasicBlock *NewBB = Dest.createBlock(BB->name() + Suffix);
    Map.Blocks[BB] = NewBB;
    NewBlocks.push_back(NewBB);
    for (const auto &I : BB->instructions()) {
      Instruction *NewI = NewBB->append(cloneInstruction(*I));
      Map.Values[I.get()] = NewI;
    }
  }

  // Second pass: remap intra-region references.
  for (BasicBlock *NewBB : NewBlocks) {
    for (auto &I : NewBB->instructions()) {
      for (unsigned OpIdx = 0; OpIdx < I->numOperands(); ++OpIdx) {
        auto It = Map.Values.find(I->operand(OpIdx));
        if (It != Map.Values.end())
          I->setOperand(OpIdx, It->second);
      }
      for (unsigned S = 0; S < I->numSuccessors(); ++S) {
        auto It = Map.Blocks.find(I->successor(S));
        if (It != Map.Blocks.end())
          I->setSuccessor(S, It->second);
      }
      for (BasicBlock *&From : I->phiBlocks()) {
        auto It = Map.Blocks.find(From);
        if (It != Map.Blocks.end())
          From = It->second;
      }
    }
  }
  return NewBlocks;
}
