//===- ir/LoopBuilder.cpp - Canonical counted-loop construction --------------===//

#include "ir/LoopBuilder.h"

#include "support/Error.h"

using namespace msem;

LoopBuilder::LoopBuilder(IRBuilder &B, Value *Init, Value *Bound,
                         int64_t Step, const std::string &Name)
    : B(B), Init(Init), Bound(Bound), Step(Step) {
  assert(Step != 0 && "loop step must be non-zero");
  assert(Init->type() == Type::I64 && Bound->type() == Type::I64 &&
         "loop bounds must be i64");
  Function *F = B.insertBlock()->parent();
  GuardBlock = B.insertBlock();
  Preheader = F->createBlock(Name + ".preheader");
  Body = F->createBlock(Name + ".body");
  Exit = F->createBlock(Name + ".exit");
  Join = F->createBlock(Name + ".join");

  // Guard: enter the loop only if it runs at least once.
  Value *Enter = Step > 0 ? B.icmp(CmpPred::LT, Init, Bound)
                          : B.icmp(CmpPred::GT, Init, Bound);
  B.br(Enter, Preheader, Join);

  B.setInsertPoint(Preheader);
  B.jmp(Body);

  B.setInsertPoint(Body);
  IndVar = B.phi(Type::I64);
  IndVar->addPhiIncoming(Init, Preheader);
  IvRecord.Phi = IndVar;
  IvRecord.InitVal = Init;
}

Value *LoopBuilder::carried(Value *InitVal) {
  assert(!Finished && "loop already finished");
  BasicBlock *Saved = B.insertBlock();
  B.setInsertPoint(Body);
  Instruction *Phi = B.phi(InitVal->type());
  Phi->addPhiIncoming(InitVal, Preheader);
  B.setInsertPoint(Saved);
  CarriedVals.push_back({Phi, InitVal, nullptr, nullptr});
  return Phi;
}

void LoopBuilder::setNext(Value *Phi, Value *Next) {
  for (Carried &C : CarriedVals) {
    if (C.Phi == Phi) {
      C.NextVal = Next;
      return;
    }
  }
  MSEM_UNREACHABLE("setNext on a value not declared as carried");
}

void LoopBuilder::finish() {
  assert(!Finished && "loop already finished");
  Finished = true;
  BasicBlock *Latch = B.insertBlock();

  Value *Next = B.add(IndVar, B.constInt(Step));
  IvRecord.NextVal = Next;
  Value *Again = Step > 0 ? B.icmp(CmpPred::LT, Next, Bound)
                          : B.icmp(CmpPred::GT, Next, Bound);
  B.br(Again, Body, Exit);

  IndVar->addPhiIncoming(Next, Latch);
  for (Carried &C : CarriedVals) {
    assert(C.NextVal && "carried value missing its next-iteration value");
    C.Phi->addPhiIncoming(C.NextVal, Latch);
  }

  B.setInsertPoint(Exit);
  // LCSSA-style join phis: merge the init value (guard skipped the loop)
  // with the final value (latch exit).
  B.jmp(Join);
  B.setInsertPoint(Join);
  auto MakeJoinPhi = [&](Carried &C) {
    Instruction *P = B.phi(C.Phi->type());
    P->addPhiIncoming(C.InitVal, GuardBlock);
    P->addPhiIncoming(C.NextVal, Exit);
    C.JoinPhi = P;
  };
  MakeJoinPhi(IvRecord);
  for (Carried &C : CarriedVals)
    MakeJoinPhi(C);
}

Value *LoopBuilder::exitValue(Value *Phi) {
  assert(Finished && "exitValue before finish");
  if (Phi == IvRecord.Phi)
    return IvRecord.JoinPhi;
  for (Carried &C : CarriedVals)
    if (C.Phi == Phi)
      return C.JoinPhi;
  MSEM_UNREACHABLE("exitValue of a value not declared as carried");
}
