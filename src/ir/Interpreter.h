//===- ir/Interpreter.h - Reference IR interpreter ---------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for the IR. It defines the reference semantics of a
/// program: tests compare its observable behaviour (return value and Emit
/// stream) against the optimizer's output and against compiled machine code
/// to prove transformations are semantics-preserving.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_INTERPRETER_H
#define MSEM_IR_INTERPRETER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace msem {

/// One value appended by an Emit instruction.
struct EmitRecord {
  bool IsFloat = false;
  int64_t IntVal = 0;
  double FpVal = 0.0;

  bool operator==(const EmitRecord &Other) const {
    if (IsFloat != Other.IsFloat)
      return false;
    return IsFloat ? FpVal == Other.FpVal : IntVal == Other.IntVal;
  }
};

/// Outcome of interpreting a program.
struct InterpResult {
  bool Trapped = false;        ///< Out-of-bounds access, div by zero, ...
  std::string TrapMessage;     ///< Human-readable trap description.
  int64_t ReturnValue = 0;     ///< main's return value.
  uint64_t InstructionsExecuted = 0;
  std::vector<EmitRecord> Output; ///< Emit stream in program order.
};

/// Interprets IR modules against a flat byte-addressed memory image.
class Interpreter {
public:
  /// \p MemoryBytes bounds the address space (globals + stack).
  /// \p MaxInstructions guards against runaway programs.
  explicit Interpreter(uint64_t MemoryBytes = 64ull << 20,
                       uint64_t MaxInstructions = 2'000'000'000ull)
      : MemoryBytes(MemoryBytes), MaxInstructions(MaxInstructions) {}

  /// Runs \p M's main function to completion.
  InterpResult run(const Module &M);

private:
  uint64_t MemoryBytes;
  uint64_t MaxInstructions;
};

} // namespace msem

#endif // MSEM_IR_INTERPRETER_H
