//===- ir/IRPrinter.cpp - Textual IR dumping --------------------------------===//

#include "ir/IRPrinter.h"

#include "support/Format.h"

using namespace msem;

std::string msem::printValueRef(const Value *V) {
  switch (V->kind()) {
  case ValueKind::Constant: {
    const auto *C = cast<Constant>(V);
    if (C->type() == Type::I64)
      return formatString("%lld", static_cast<long long>(C->intValue()));
    return formatString("%g", C->floatValue());
  }
  case ValueKind::Argument:
    return "%" + cast<Argument>(V)->name();
  case ValueKind::Global:
    return "@" + cast<GlobalVariable>(V)->name();
  case ValueKind::Instruction:
    return formatString("%%%u", V->id());
  }
  return "?";
}

std::string msem::printInstruction(const Instruction &I) {
  std::string Text;
  if (I.type() != Type::Void)
    Text += formatString("%%%u = ", I.id());
  Text += opcodeName(I.opcode());

  switch (I.opcode()) {
  case Opcode::ICmp:
  case Opcode::FCmp:
    Text += std::string(".") + cmpPredName(I.cmpPred());
    break;
  case Opcode::Load:
  case Opcode::Store:
    Text += std::string(".") + memKindName(I.memKind());
    break;
  case Opcode::Alloca:
    Text += formatString(" %llu", (unsigned long long)I.allocaSize());
    break;
  case Opcode::Call:
    Text += " @" + I.callee()->name();
    break;
  default:
    break;
  }

  if (I.opcode() == Opcode::Phi) {
    for (size_t Idx = 0; Idx < I.numOperands(); ++Idx) {
      Text += Idx ? ", " : " ";
      Text += "[" + printValueRef(I.operand(Idx)) + ", " +
              I.phiBlocks()[Idx]->name() + "]";
    }
  } else {
    for (size_t Idx = 0; Idx < I.numOperands(); ++Idx) {
      Text += Idx ? ", " : " ";
      Text += printValueRef(I.operand(Idx));
    }
  }

  if (I.opcode() == Opcode::Br)
    Text += " -> " + I.successor(0)->name() + ", " + I.successor(1)->name();
  else if (I.opcode() == Opcode::Jmp)
    Text += " -> " + I.successor(0)->name();
  return Text;
}

std::string msem::printFunction(Function &F) {
  F.renumber();
  std::string Text = "func @" + F.name() + "(";
  for (unsigned I = 0; I < F.numArgs(); ++I) {
    if (I)
      Text += ", ";
    Text += std::string(typeName(F.arg(I)->type())) + " %" +
            F.arg(I)->name();
  }
  Text += std::string(") -> ") + typeName(F.returnType()) + " {\n";
  for (const auto &BB : F.blocks()) {
    Text += BB->name() + ":\n";
    for (const auto &I : BB->instructions())
      Text += "  " + printInstruction(*I) + "\n";
  }
  Text += "}\n";
  return Text;
}

std::string msem::printModule(Module &M) {
  std::string Text = "module " + M.name() + "\n";
  for (const auto &G : M.globals())
    Text += formatString("global @%s[%llu]\n", G->name().c_str(),
                         (unsigned long long)G->sizeInBytes());
  for (const auto &F : M.functions())
    Text += "\n" + printFunction(*F);
  return Text;
}
