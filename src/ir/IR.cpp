//===- ir/IR.cpp - Core IR implementation ----------------------------------===//
//
// Implements Value, Instruction, BasicBlock, Function and Module.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/Error.h"

#include <algorithm>
#include <cstring>

using namespace msem;

Value::~Value() = default;

const char *msem::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::SIToFP:
    return "sitofp";
  case Opcode::FPToSI:
    return "fptosi";
  case Opcode::PtrAdd:
    return "ptradd";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Prefetch:
    return "prefetch";
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Br:
    return "br";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  case Opcode::Phi:
    return "phi";
  case Opcode::Select:
    return "select";
  case Opcode::Emit:
    return "emit";
  }
  return "?";
}

const char *msem::cmpPredName(CmpPred Pred) {
  switch (Pred) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::LT:
    return "lt";
  case CmpPred::LE:
    return "le";
  case CmpPred::GT:
    return "gt";
  case CmpPred::GE:
    return "ge";
  }
  return "?";
}

Value *Instruction::phiIncomingFor(const BasicBlock *From) const {
  assert(Op == Opcode::Phi && "not a phi");
  for (size_t I = 0; I < PhiBlocks.size(); ++I)
    if (PhiBlocks[I] == From)
      return Operands[I];
  MSEM_UNREACHABLE("phi has no incoming value for predecessor");
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  I->setParent(this);
  Instrs.push_back(std::move(I));
  return Instrs.back().get();
}

Instruction *BasicBlock::insertAt(size_t Index,
                                  std::unique_ptr<Instruction> I) {
  assert(Index <= Instrs.size() && "insert position out of range");
  I->setParent(this);
  auto It = Instrs.insert(Instrs.begin() + Index, std::move(I));
  return It->get();
}

Instruction *BasicBlock::insertBeforeTerminator(
    std::unique_ptr<Instruction> I) {
  assert(!Instrs.empty() && Instrs.back()->isTerminator() &&
         "block has no terminator");
  return insertAt(Instrs.size() - 1, std::move(I));
}

void BasicBlock::eraseAt(size_t Index) {
  assert(Index < Instrs.size() && "erase position out of range");
  Instrs.erase(Instrs.begin() + Index);
}

std::unique_ptr<Instruction> BasicBlock::detachAt(size_t Index) {
  assert(Index < Instrs.size() && "detach position out of range");
  std::unique_ptr<Instruction> I = std::move(Instrs[Index]);
  Instrs.erase(Instrs.begin() + Index);
  I->setParent(nullptr);
  return I;
}

Instruction *BasicBlock::terminator() const {
  if (Instrs.empty())
    return nullptr;
  Instruction *Last = Instrs.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
    if (Instrs[Idx].get() == I)
      return Idx;
  MSEM_UNREACHABLE("instruction not in block");
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  if (const Instruction *Term = terminator())
    for (unsigned I = 0, E = Term->numSuccessors(); I < E; ++I)
      Result.push_back(Term->successor(I));
  return Result;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(std::string Name, Type ReturnType,
                   std::vector<Type> ArgTypes,
                   std::vector<std::string> ArgNames)
    : Name(std::move(Name)), ReturnType(ReturnType) {
  for (size_t I = 0; I < ArgTypes.size(); ++I) {
    std::string ArgName =
        I < ArgNames.size() ? ArgNames[I] : ("arg" + std::to_string(I));
    Args.push_back(std::make_unique<Argument>(ArgTypes[I],
                                              static_cast<unsigned>(I),
                                              std::move(ArgName)));
  }
}

BasicBlock *Function::createBlock(const std::string &BlockName) {
  Blocks.push_back(std::make_unique<BasicBlock>(BlockName));
  Blocks.back()->setParent(this);
  return Blocks.back().get();
}

BasicBlock *Function::adoptBlock(std::unique_ptr<BasicBlock> BB) {
  BB->setParent(this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

void Function::eraseBlock(BasicBlock *BB) {
  size_t Index = indexOfBlock(BB);
  Blocks.erase(Blocks.begin() + Index);
}

size_t Function::indexOfBlock(const BasicBlock *BB) const {
  for (size_t I = 0; I < Blocks.size(); ++I)
    if (Blocks[I].get() == BB)
      return I;
  MSEM_UNREACHABLE("block not in function");
}

void Function::reorderBlocks(const std::vector<BasicBlock *> &NewOrder) {
  assert(NewOrder.size() == Blocks.size() && "reorder must be a permutation");
  assert(!NewOrder.empty() && NewOrder.front() == entry() &&
         "entry block must stay first");
  BlockList Reordered;
  Reordered.reserve(Blocks.size());
  for (BasicBlock *Wanted : NewOrder) {
    bool Found = false;
    for (auto &Slot : Blocks) {
      if (Slot.get() == Wanted) {
        assert(Slot && "block listed twice in reorder");
        Reordered.push_back(std::move(Slot));
        Found = true;
        break;
      }
    }
    assert(Found && "reorder names a foreign block");
    (void)Found;
  }
  Blocks = std::move(Reordered);
}

void Function::rewriteOperands(
    const std::unordered_map<Value *, Value *> &Map,
    const std::unordered_map<BasicBlock *, BasicBlock *> &BlockMap) {
  for (auto &BB : Blocks) {
    for (auto &I : BB->instructions()) {
      for (unsigned OpIdx = 0; OpIdx < I->numOperands(); ++OpIdx) {
        auto It = Map.find(I->operand(OpIdx));
        if (It != Map.end())
          I->setOperand(OpIdx, It->second);
      }
      if (!BlockMap.empty()) {
        for (unsigned S = 0; S < I->numSuccessors(); ++S) {
          auto It = BlockMap.find(I->successor(S));
          if (It != BlockMap.end())
            I->setSuccessor(S, It->second);
        }
        for (BasicBlock *&Incoming : I->phiBlocks()) {
          auto It = BlockMap.find(Incoming);
          if (It != BlockMap.end())
            Incoming = It->second;
        }
      }
    }
  }
}

void Function::replaceAllUses(Value *Old, Value *New) {
  std::unordered_map<Value *, Value *> Map{{Old, New}};
  rewriteOperands(Map);
}

std::unordered_map<const Value *, unsigned> Function::countUses() const {
  std::unordered_map<const Value *, unsigned> Uses;
  for (const auto &BB : Blocks)
    for (const auto &I : BB->instructions())
      for (const Value *Op : I->operands())
        ++Uses[Op];
  return Uses;
}

unsigned Function::instructionCount() const {
  unsigned Count = 0;
  for (const auto &BB : Blocks)
    Count += BB->size();
  return Count;
}

void Function::renumber() {
  uint32_t NextId = 1;
  for (auto &A : Args)
    A->setId(NextId++);
  uint32_t BlockId = 0;
  for (auto &BB : Blocks) {
    BB->setId(BlockId++);
    for (auto &I : BB->instructions())
      I->setId(NextId++);
  }
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::createFunction(const std::string &FnName, Type ReturnType,
                                 std::vector<Type> ArgTypes,
                                 std::vector<std::string> ArgNames) {
  assert(!findFunction(FnName) && "duplicate function name");
  Functions.push_back(std::make_unique<Function>(
      FnName, ReturnType, std::move(ArgTypes), std::move(ArgNames)));
  Functions.back()->setParent(this);
  return Functions.back().get();
}

Function *Module::findFunction(const std::string &FnName) const {
  for (const auto &F : Functions)
    if (F->name() == FnName)
      return F.get();
  return nullptr;
}

Function *Module::mainFunction() const {
  Function *Main = findFunction("main");
  assert(Main && "module has no main function");
  return Main;
}

GlobalVariable *Module::createGlobal(const std::string &GlobalName,
                                     uint64_t SizeBytes) {
  assert(!findGlobal(GlobalName) && "duplicate global name");
  Globals.push_back(std::make_unique<GlobalVariable>(GlobalName, SizeBytes));
  return Globals.back().get();
}

GlobalVariable *Module::findGlobal(const std::string &GlobalName) const {
  for (const auto &G : Globals)
    if (G->name() == GlobalName)
      return G.get();
  return nullptr;
}

Constant *Module::constInt(int64_t V) {
  auto It = IntConstants.find(V);
  if (It != IntConstants.end())
    return It->second.get();
  auto C = std::make_unique<Constant>(Type::I64, V, 0.0);
  Constant *Ptr = C.get();
  IntConstants.emplace(V, std::move(C));
  return Ptr;
}

Constant *Module::constFloat(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  auto It = FloatConstants.find(Bits);
  if (It != FloatConstants.end())
    return It->second.get();
  auto C = std::make_unique<Constant>(Type::F64, 0, V);
  Constant *Ptr = C.get();
  FloatConstants.emplace(Bits, std::move(C));
  return Ptr;
}

void Module::renumber() {
  for (auto &F : Functions)
    F->renumber();
}

unsigned Module::instructionCount() const {
  unsigned Count = 0;
  for (const auto &F : Functions)
    Count += F->instructionCount();
  return Count;
}
