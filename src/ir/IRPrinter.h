//===- ir/IRPrinter.h - Textual IR dumping -----------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders modules/functions as human-readable text for debugging and test
/// golden-output checks.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_IRPRINTER_H
#define MSEM_IR_IRPRINTER_H

#include "ir/Module.h"

#include <string>

namespace msem {

/// Renders one value reference (e.g. "%5", "42", "@table").
std::string printValueRef(const Value *V);

/// Renders one instruction (without trailing newline).
std::string printInstruction(const Instruction &I);

/// Renders a function. Calls Function::renumber() for stable ids.
std::string printFunction(Function &F);

/// Renders a whole module.
std::string printModule(Module &M);

} // namespace msem

#endif // MSEM_IR_IRPRINTER_H
