//===- ir/Type.h - IR value and memory access types -------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiny type system of the MSEM IR: 64-bit integers, 64-bit floats,
/// byte-addressed pointers and void. Memory accesses additionally carry an
/// access width so that workloads can build realistically sized data
/// structures (byte buffers, 32-bit arrays) that exercise the caches.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_TYPE_H
#define MSEM_IR_TYPE_H

#include <cstdint>

namespace msem {

/// Value types of the IR.
enum class Type : uint8_t {
  Void, ///< No value (stores, branches, returns).
  I64,  ///< 64-bit signed integer.
  F64,  ///< IEEE double.
  Ptr,  ///< Byte-addressed pointer (64-bit).
};

/// Width/interpretation of a memory access.
enum class MemKind : uint8_t {
  Int8,    ///< 1 byte, zero-extended on load.
  Int32,   ///< 4 bytes, sign-extended on load.
  Int64,   ///< 8 bytes.
  Float64, ///< 8-byte IEEE double.
};

/// Size in bytes of one element accessed with \p MK.
inline unsigned memKindSize(MemKind MK) {
  switch (MK) {
  case MemKind::Int8:
    return 1;
  case MemKind::Int32:
    return 4;
  case MemKind::Int64:
    return 8;
  case MemKind::Float64:
    return 8;
  }
  return 8;
}

/// Value type produced by loading with \p MK.
inline Type memKindValueType(MemKind MK) {
  return MK == MemKind::Float64 ? Type::F64 : Type::I64;
}

/// Printable name of a type.
inline const char *typeName(Type Ty) {
  switch (Ty) {
  case Type::Void:
    return "void";
  case Type::I64:
    return "i64";
  case Type::F64:
    return "f64";
  case Type::Ptr:
    return "ptr";
  }
  return "?";
}

/// Printable name of a memory access kind.
inline const char *memKindName(MemKind MK) {
  switch (MK) {
  case MemKind::Int8:
    return "i8";
  case MemKind::Int32:
    return "i32";
  case MemKind::Int64:
    return "i64";
  case MemKind::Float64:
    return "f64";
  }
  return "?";
}

} // namespace msem

#endif // MSEM_IR_TYPE_H
