//===- ir/CFG.cpp - Control-flow graph utilities ---------------------------===//

#include "ir/CFG.h"

#include <algorithm>
#include <unordered_set>

using namespace msem;

std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
msem::computePredecessors(const Function &F) {
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Preds;
  for (const auto &BB : F.blocks())
    Preds[BB.get()]; // Ensure every block has an entry.
  for (const auto &BB : F.blocks())
    for (BasicBlock *Succ : BB->successors())
      Preds[Succ].push_back(BB.get());
  return Preds;
}

static void postOrderVisit(BasicBlock *BB,
                           std::unordered_set<const BasicBlock *> &Visited,
                           std::vector<BasicBlock *> &Order) {
  if (!Visited.insert(BB).second)
    return;
  for (BasicBlock *Succ : BB->successors())
    postOrderVisit(Succ, Visited, Order);
  Order.push_back(BB);
}

std::vector<BasicBlock *> msem::reversePostOrder(const Function &F) {
  std::vector<BasicBlock *> Order;
  std::unordered_set<const BasicBlock *> Visited;
  if (!F.blocks().empty())
    postOrderVisit(F.entry(), Visited, Order);
  std::reverse(Order.begin(), Order.end());
  return Order;
}

bool msem::isReachable(const BasicBlock *From, const BasicBlock *To) {
  std::unordered_set<const BasicBlock *> Visited;
  std::vector<const BasicBlock *> Work{From};
  while (!Work.empty()) {
    const BasicBlock *BB = Work.back();
    Work.pop_back();
    if (BB == To)
      return true;
    if (!Visited.insert(BB).second)
      continue;
    for (BasicBlock *Succ : BB->successors())
      Work.push_back(Succ);
  }
  return false;
}

unsigned msem::removeUnreachableBlocks(Function &F) {
  std::unordered_set<const BasicBlock *> Live;
  for (BasicBlock *BB : reversePostOrder(F))
    Live.insert(BB);

  // Strip phi incomings that reference dead blocks.
  for (const auto &BB : F.blocks()) {
    if (!Live.count(BB.get()))
      continue;
    for (auto &I : BB->instructions()) {
      if (I->opcode() != Opcode::Phi)
        continue;
      auto &Blocks = I->phiBlocks();
      auto &Ops = I->operands();
      for (size_t Idx = Blocks.size(); Idx-- > 0;) {
        if (!Live.count(Blocks[Idx])) {
          Blocks.erase(Blocks.begin() + Idx);
          Ops.erase(Ops.begin() + Idx);
        }
      }
    }
  }

  unsigned Removed = 0;
  auto &Blocks = F.blocks();
  for (size_t Idx = Blocks.size(); Idx-- > 0;) {
    if (!Live.count(Blocks[Idx].get())) {
      Blocks.erase(Blocks.begin() + Idx);
      ++Removed;
    }
  }
  return Removed;
}
