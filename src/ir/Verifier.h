//===- ir/Verifier.h - IR structural validation ------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates modules after construction and after every optimization pass:
/// terminator discipline, operand typing, phi/predecessor agreement and SSA
/// dominance. Tests run the verifier around every pass application.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_VERIFIER_H
#define MSEM_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace msem {

/// Verifies \p M; returns all violations found (empty = valid).
std::vector<std::string> verifyModule(const Module &M);

/// Verifies one function.
std::vector<std::string> verifyFunction(const Function &F);

/// Convenience: asserts that \p M verifies, printing violations on failure.
void assertValid(const Module &M);

} // namespace msem

#endif // MSEM_IR_VERIFIER_H
