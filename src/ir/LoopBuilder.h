//===- ir/LoopBuilder.h - Canonical counted-loop construction ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the canonical guarded, bottom-test counted loop the optimizer's
/// loop passes recognize:
///
///   guard:      if (init < bound) goto preheader else goto join
///   preheader:  goto body
///   body:       iv = phi [init, preheader], [iv.next, latch]
///               <carried-value phis>
///               ... caller-emitted body (may create inner blocks) ...
///   latch:      iv.next = iv + step
///               if (iv.next < bound) goto body else goto exit
///   exit:       goto join
///   join:       <phis merging guard-skip and loop-exit values>
///
/// The workloads use this for every loop, which keeps them unrollable,
/// strength-reducible and prefetchable exactly when the corresponding flags
/// are enabled.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_LOOPBUILDER_H
#define MSEM_IR_LOOPBUILDER_H

#include "ir/IRBuilder.h"

#include <unordered_map>
#include <vector>

namespace msem {

/// Incrementally builds one counted loop. Construction positions the
/// IRBuilder inside the loop body; finish() positions it in the join block.
class LoopBuilder {
public:
  /// Starts the loop. \p Init and \p Bound are i64 values valid at the
  /// current insert point; \p Step must be a non-zero constant.
  LoopBuilder(IRBuilder &B, Value *Init, Value *Bound, int64_t Step,
              const std::string &Name);

  /// The induction variable phi, valid inside the body.
  Value *indVar() const { return IndVar; }

  /// Declares a loop-carried value initialized to \p InitVal (valid at the
  /// loop's entry); returns the phi to use inside the body. Every carried
  /// value must receive its next-iteration value via setNext() before
  /// finish().
  Value *carried(Value *InitVal);

  /// Sets the next-iteration value of a carried phi.
  void setNext(Value *Phi, Value *Next);

  /// The body's first block (where the phis live).
  BasicBlock *bodyBlock() const { return Body; }

  /// Closes the loop: the *current* insert block becomes the latch.
  /// Afterwards the builder is positioned in the join block.
  void finish();

  /// After finish(): the value of a carried phi (or the induction
  /// variable) at the join point, merging the guard-skip and loop-exit
  /// paths.
  Value *exitValue(Value *Phi);

private:
  IRBuilder &B;
  Value *Init;
  Value *Bound;
  int64_t Step;
  BasicBlock *Preheader = nullptr;
  BasicBlock *Body = nullptr;
  BasicBlock *Exit = nullptr;
  BasicBlock *Join = nullptr;
  BasicBlock *GuardBlock = nullptr;
  Instruction *IndVar = nullptr;
  bool Finished = false;

  struct Carried {
    Instruction *Phi;
    Value *InitVal;
    Value *NextVal = nullptr;
    Value *JoinPhi = nullptr;
  };
  std::vector<Carried> CarriedVals;
  Carried IvRecord{nullptr, nullptr, nullptr, nullptr};
};

} // namespace msem

#endif // MSEM_IR_LOOPBUILDER_H
