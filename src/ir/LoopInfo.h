//===- ir/LoopInfo.h - Natural loop detection --------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop analysis: back edges (latch -> header where the header
/// dominates the latch), loop bodies, nesting depth, preheaders and the
/// canonical induction-variable/trip-count pattern used by the unroller and
/// prefetcher.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_LOOPINFO_H
#define MSEM_IR_LOOPINFO_H

#include "ir/Dominators.h"

#include <memory>
#include <unordered_set>
#include <vector>

namespace msem {

/// One natural loop.
struct Loop {
  BasicBlock *Header = nullptr;
  /// All blocks in the loop, header included.
  std::vector<BasicBlock *> Blocks;
  /// Latches: in-loop predecessors of the header.
  std::vector<BasicBlock *> Latches;
  /// Unique out-of-loop predecessor of the header, if any.
  BasicBlock *Preheader = nullptr;
  /// Blocks outside the loop targeted by edges leaving the loop.
  std::vector<BasicBlock *> ExitBlocks;
  unsigned Depth = 1;
  Loop *ParentLoop = nullptr;

  bool contains(const BasicBlock *BB) const {
    for (const BasicBlock *B : Blocks)
      if (B == BB)
        return true;
    return false;
  }

  /// Total instruction count over the loop body.
  unsigned instructionCount() const {
    unsigned N = 0;
    for (const BasicBlock *BB : Blocks)
      N += BB->size();
    return N;
  }
};

/// The canonical counted-loop shape recognized by unrolling/prefetching:
///   header: iv = phi [Init, preheader], [Next, latch]
///           ... body ...
///   latch:  Next = iv + Step
///           cond = icmp LT/LE/NE (Next|iv), Bound ; br cond, header, exit
struct CountedLoop {
  Instruction *IndVar = nullptr;  ///< The phi in the header.
  Instruction *Step = nullptr;    ///< The add producing the next value.
  Value *Init = nullptr;          ///< Initial value (from preheader edge).
  Value *Bound = nullptr;         ///< Loop bound operand of the compare.
  Instruction *Cond = nullptr;    ///< The compare controlling the latch.
  Instruction *LatchBr = nullptr; ///< Conditional branch in the latch.
  int64_t StepValue = 0;          ///< Constant step (non-zero when valid).
  bool CondOnNext = false;        ///< Compare reads Step (vs the phi).
};

/// Loops of one function, innermost-last within each top-level nest.
class LoopAnalysis {
public:
  /// Runs the analysis. \p DT must be built for the same (unmutated) F.
  LoopAnalysis(Function &F, const DominatorTree &DT);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// The innermost loop containing \p BB, or null.
  Loop *loopFor(const BasicBlock *BB) const;

  /// Attempts to match \p L against the canonical counted-loop shape.
  /// Returns true and fills \p Out on success. Requires a single latch.
  static bool matchCountedLoop(const Loop &L, CountedLoop &Out);

  /// Ensures \p L has a dedicated preheader, creating one if necessary
  /// (splits the entry edges). Returns the preheader. May invalidate
  /// dominator trees; callers recompute analyses afterwards.
  static BasicBlock *ensurePreheader(Function &F, Loop &L);

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::unordered_map<const BasicBlock *, Loop *> InnermostLoop;
};

} // namespace msem

#endif // MSEM_IR_LOOPINFO_H
