//===- ir/Verifier.cpp - IR structural validation ----------------------------===//

#include "ir/Verifier.h"

#include "ir/CFG.h"
#include "ir/Dominators.h"
#include "ir/IRPrinter.h"
#include "support/Error.h"
#include "support/Format.h"

#include <unordered_set>

using namespace msem;

namespace {

class FunctionVerifier {
public:
  explicit FunctionVerifier(const Function &F) : F(F), DT(F) {}

  std::vector<std::string> run() {
    if (F.blocks().empty()) {
      fail("function has no blocks");
      return Errors;
    }
    collectDefinedValues();
    auto Preds = computePredecessors(F);

    for (const auto &BB : F.blocks()) {
      checkTerminator(*BB);
      bool SeenNonPhi = false;
      for (const auto &I : BB->instructions()) {
        if (I->opcode() == Opcode::Phi) {
          if (SeenNonPhi)
            fail("phi after non-phi in block " + BB->name());
          checkPhi(*I, Preds.at(BB.get()));
        } else {
          SeenNonPhi = true;
        }
        checkInstruction(*I);
      }
    }
    checkDominance();
    return Errors;
  }

private:
  void fail(const std::string &Message) {
    Errors.push_back("in @" + F.name() + ": " + Message);
  }

  void collectDefinedValues() {
    for (unsigned I = 0; I < F.numArgs(); ++I)
      Defined.insert(F.arg(I));
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        Defined.insert(I.get());
  }

  void checkTerminator(const BasicBlock &BB) {
    if (BB.empty()) {
      fail("empty block " + BB.name());
      return;
    }
    unsigned Terminators = 0;
    for (const auto &I : BB.instructions())
      if (I->isTerminator())
        ++Terminators;
    if (Terminators != 1 || !BB.instructions().back()->isTerminator())
      fail("block " + BB.name() +
           " must end in exactly one terminator (found " +
           std::to_string(Terminators) + ")");
  }

  void checkPhi(const Instruction &Phi,
                const std::vector<BasicBlock *> &Preds) {
    if (Phi.numOperands() != Phi.phiBlocks().size()) {
      fail("phi operand/block count mismatch");
      return;
    }
    if (Phi.numOperands() != Preds.size()) {
      fail(formatString("phi in %s has %u incomings but %zu predecessors",
                        Phi.parent()->name().c_str(), Phi.numOperands(),
                        Preds.size()));
      return;
    }
    std::unordered_set<const BasicBlock *> Seen;
    for (const BasicBlock *From : Phi.phiBlocks()) {
      if (!Seen.insert(From).second)
        fail("phi has duplicate incoming block " + From->name());
      bool IsPred = false;
      for (const BasicBlock *P : Preds)
        if (P == From)
          IsPred = true;
      if (!IsPred)
        fail("phi incoming block " + From->name() + " is not a predecessor");
    }
    for (const Value *V : Phi.operands())
      if (V->type() != Phi.type())
        fail("phi incoming value type mismatch");
  }

  void checkOperandTypes(const Instruction &I) {
    auto Expect = [&](unsigned Idx, Type Ty) {
      if (Idx >= I.numOperands()) {
        fail(formatString("%s missing operand %u", opcodeName(I.opcode()),
                          Idx));
        return;
      }
      if (I.operand(Idx)->type() != Ty)
        fail(formatString("%s operand %u has type %s, expected %s",
                          opcodeName(I.opcode()), Idx,
                          typeName(I.operand(Idx)->type()), typeName(Ty)));
    };

    if (I.isBinaryIntOp() || I.opcode() == Opcode::ICmp) {
      Expect(0, Type::I64);
      Expect(1, Type::I64);
      return;
    }
    if (I.isBinaryFpOp() || I.opcode() == Opcode::FCmp) {
      Expect(0, Type::F64);
      Expect(1, Type::F64);
      return;
    }
    switch (I.opcode()) {
    case Opcode::SIToFP:
      Expect(0, Type::I64);
      break;
    case Opcode::FPToSI:
      Expect(0, Type::F64);
      break;
    case Opcode::PtrAdd:
      Expect(0, Type::Ptr);
      Expect(1, Type::I64);
      break;
    case Opcode::Load:
      Expect(0, Type::Ptr);
      if (I.type() != memKindValueType(I.memKind()))
        fail("load result type disagrees with access kind");
      break;
    case Opcode::Store:
      Expect(0, memKindValueType(I.memKind()));
      Expect(1, Type::Ptr);
      break;
    case Opcode::Prefetch:
      Expect(0, Type::Ptr);
      break;
    case Opcode::Br:
      Expect(0, Type::I64);
      break;
    case Opcode::Select:
      Expect(0, Type::I64);
      if (I.numOperands() == 3 &&
          (I.operand(1)->type() != I.type() ||
           I.operand(2)->type() != I.type()))
        fail("select arm types disagree with result");
      break;
    case Opcode::Ret:
      if (F.returnType() == Type::Void) {
        if (I.numOperands() != 0)
          fail("void function returns a value");
      } else if (I.numOperands() != 1 ||
                 I.operand(0)->type() != F.returnType()) {
        fail("return value type disagrees with function signature");
      }
      break;
    case Opcode::Call: {
      const Function *Callee = I.callee();
      if (!Callee) {
        fail("call without callee");
        break;
      }
      if (I.numOperands() != Callee->numArgs()) {
        fail("call argument count mismatch for @" + Callee->name());
        break;
      }
      for (unsigned A = 0; A < I.numOperands(); ++A)
        if (I.operand(A)->type() != Callee->arg(A)->type())
          fail("call argument type mismatch for @" + Callee->name());
      if (I.type() != Callee->returnType())
        fail("call result type disagrees with callee return type");
      break;
    }
    default:
      break;
    }
  }

  void checkInstruction(const Instruction &I) {
    for (const Value *Op : I.operands()) {
      if (const auto *OpI = dyn_cast<Instruction>(Op)) {
        if (!Defined.count(OpI))
          fail("use of instruction from another function");
      } else if (const auto *OpA = dyn_cast<Argument>(Op)) {
        if (!Defined.count(OpA))
          fail("use of argument from another function");
      }
    }
    if (I.numSuccessors() > 0)
      for (unsigned S = 0; S < I.numSuccessors(); ++S)
        if (!I.successor(S) || I.successor(S)->parent() != &F)
          fail("terminator targets a foreign or null block");
    checkOperandTypes(I);
  }

  void checkDominance() {
    for (const auto &BB : F.blocks()) {
      if (!DT.isReachableBlock(BB.get()))
        continue;
      for (const auto &I : BB->instructions()) {
        for (unsigned OpIdx = 0; OpIdx < I->numOperands(); ++OpIdx) {
          const auto *Def = dyn_cast<Instruction>(I->operand(OpIdx));
          if (!Def || !Defined.count(Def))
            continue;
          if (!DT.isReachableBlock(Def->parent()))
            continue;
          if (!DT.valueDominatesUse(Def, I.get(), OpIdx))
            fail(formatString("definition %%%u does not dominate its use in "
                              "block %s",
                              Def->id(), BB->name().c_str()));
        }
      }
    }
  }

  const Function &F;
  DominatorTree DT;
  std::unordered_set<const Value *> Defined;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> msem::verifyFunction(const Function &F) {
  // Ids must be fresh for readable messages.
  const_cast<Function &>(F).renumber();
  return FunctionVerifier(F).run();
}

std::vector<std::string> msem::verifyModule(const Module &M) {
  std::vector<std::string> Errors;
  for (const auto &F : M.functions()) {
    auto FnErrors = verifyFunction(*F);
    Errors.insert(Errors.end(), FnErrors.begin(), FnErrors.end());
  }
  return Errors;
}

void msem::assertValid(const Module &M) {
  auto Errors = verifyModule(M);
  if (Errors.empty())
    return;
  std::string All;
  for (const auto &E : Errors)
    All += E + "\n";
  fatalError("module verification failed:\n" + All);
}
