//===- ir/Instruction.h - IR instructions ------------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the MSEM IR. Instructions are in SSA form: an
/// instruction that produces a value *is* that value. Control flow uses
/// explicit successor block pointers; phi nodes carry parallel vectors of
/// incoming values and blocks.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_INSTRUCTION_H
#define MSEM_IR_INSTRUCTION_H

#include "ir/Value.h"

#include <vector>

namespace msem {

class BasicBlock;
class Function;

/// Every IR operation.
enum class Opcode : uint8_t {
  // Integer arithmetic / logic (I64 x I64 -> I64).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr, // Arithmetic shift right.
  // Integer compare (I64 x I64 -> I64 producing 0/1).
  ICmp,
  // Floating point (F64 x F64 -> F64).
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Floating compare (F64 x F64 -> I64 producing 0/1).
  FCmp,
  // Conversions.
  SIToFP, // I64 -> F64
  FPToSI, // F64 -> I64
  // Memory. Addresses are Ptr values; PtrAdd does byte arithmetic.
  PtrAdd,   // (Ptr, I64) -> Ptr
  Load,     // (Ptr) -> I64/F64 according to MemKind
  Store,    // (value, Ptr) -> void
  Prefetch, // (Ptr) -> void; non-binding software prefetch
  Alloca,   // () -> Ptr; static frame slot of allocaSize() bytes
  // Control flow and calls.
  Br,     // (I64 cond); successors: taken(=succ0), fallthrough(=succ1)
  Jmp,    // unconditional; successor succ0
  Ret,    // optional value
  Call,   // (args...) -> callee return type
  Phi,    // SSA phi node
  Select, // (I64 cond, a, b) -> type of a/b
  Emit,   // (I64/F64 value) -> void; appends to the program's output stream
};

/// Comparison predicates for ICmp/FCmp.
enum class CmpPred : uint8_t { EQ, NE, LT, LE, GT, GE };

/// Returns a printable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns a printable name for \p Pred.
const char *cmpPredName(CmpPred Pred);

/// An SSA instruction. Owns no operands; operand lifetime is managed by the
/// enclosing Module/Function.
class Instruction : public Value {
public:
  Instruction(Opcode Op, Type Ty) : Value(ValueKind::Instruction, Ty), Op(Op) {}

  Opcode opcode() const { return Op; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  // Operands -----------------------------------------------------------
  unsigned numOperands() const { return Operands.size(); }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  void addOperand(Value *V) { Operands.push_back(V); }
  std::vector<Value *> &operands() { return Operands; }
  const std::vector<Value *> &operands() const { return Operands; }

  // Compare ------------------------------------------------------------
  CmpPred cmpPred() const { return Pred; }
  void setCmpPred(CmpPred P) { Pred = P; }

  // Memory -------------------------------------------------------------
  MemKind memKind() const { return Mem; }
  void setMemKind(MemKind MK) { Mem = MK; }
  uint64_t allocaSize() const { return AllocaBytes; }
  void setAllocaSize(uint64_t Bytes) { AllocaBytes = Bytes; }

  // Control flow -------------------------------------------------------
  BasicBlock *successor(unsigned I) const {
    assert(I < 2 && "successor index out of range");
    return I == 0 ? Succ0 : Succ1;
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < 2 && "successor index out of range");
    (I == 0 ? Succ0 : Succ1) = BB;
  }
  unsigned numSuccessors() const {
    if (Op == Opcode::Br)
      return 2;
    if (Op == Opcode::Jmp)
      return 1;
    return 0;
  }

  // Calls ---------------------------------------------------------------
  Function *callee() const { return Callee; }
  void setCallee(Function *F) { Callee = F; }

  // Phi nodes ------------------------------------------------------------
  /// Incoming blocks; parallel to operands().
  std::vector<BasicBlock *> &phiBlocks() { return PhiBlocks; }
  const std::vector<BasicBlock *> &phiBlocks() const { return PhiBlocks; }
  void addPhiIncoming(Value *V, BasicBlock *From) {
    assert(Op == Opcode::Phi && "not a phi");
    addOperand(V);
    PhiBlocks.push_back(From);
  }
  /// Incoming value for predecessor \p From; asserts if absent.
  Value *phiIncomingFor(const BasicBlock *From) const;

  // Classification -------------------------------------------------------
  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
  }
  bool isBinaryIntOp() const {
    return Op >= Opcode::Add && Op <= Opcode::Shr;
  }
  bool isBinaryFpOp() const {
    return Op >= Opcode::FAdd && Op <= Opcode::FDiv;
  }
  bool isMemoryAccess() const {
    return Op == Opcode::Load || Op == Opcode::Store;
  }
  /// True if the instruction has no side effects and produces a value that
  /// depends only on its operands (candidates for CSE/LICM/DCE).
  bool isPure() const {
    switch (Op) {
    case Opcode::Load:
    case Opcode::Store:
    case Opcode::Prefetch:
    case Opcode::Alloca:
    case Opcode::Br:
    case Opcode::Jmp:
    case Opcode::Ret:
    case Opcode::Call:
    case Opcode::Phi:
    case Opcode::Emit:
      return false;
    default:
      return true;
    }
  }
  /// True if the instruction may write memory or produce output.
  bool hasSideEffects() const {
    return Op == Opcode::Store || Op == Opcode::Call || Op == Opcode::Emit;
  }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Instruction;
  }

private:
  Opcode Op;
  CmpPred Pred = CmpPred::EQ;
  MemKind Mem = MemKind::Int64;
  uint64_t AllocaBytes = 0;
  BasicBlock *Parent = nullptr;
  BasicBlock *Succ0 = nullptr;
  BasicBlock *Succ1 = nullptr;
  Function *Callee = nullptr;
  std::vector<Value *> Operands;
  std::vector<BasicBlock *> PhiBlocks;
};

} // namespace msem

#endif // MSEM_IR_INSTRUCTION_H
