//===- ir/Module.h - IR modules ----------------------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns functions, globals and the uniqued constant pool. It is the
/// unit handed to the optimizer and the code generator. The function named
/// "main" (taking no arguments, returning i64) is the program entry point.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_MODULE_H
#define MSEM_IR_MODULE_H

#include "ir/Function.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace msem {

/// A whole program: functions, globals, constants.
class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &name() const { return Name; }

  // Functions -------------------------------------------------------------
  Function *createFunction(const std::string &FnName, Type ReturnType,
                           std::vector<Type> ArgTypes,
                           std::vector<std::string> ArgNames = {});
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }
  std::vector<std::unique_ptr<Function>> &functions() { return Functions; }
  /// Looks up a function by name; null if absent.
  Function *findFunction(const std::string &FnName) const;
  /// The program entry point ("main"); asserts if absent.
  Function *mainFunction() const;

  // Globals ----------------------------------------------------------------
  GlobalVariable *createGlobal(const std::string &GlobalName,
                               uint64_t SizeBytes);
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }
  GlobalVariable *findGlobal(const std::string &GlobalName) const;

  // Constants ----------------------------------------------------------------
  /// Uniqued integer constant.
  Constant *constInt(int64_t V);
  /// Uniqued floating constant (uniqued by bit pattern).
  Constant *constFloat(double V);

  /// Renumbers all functions for stable printing.
  void renumber();

  /// Total instruction count across all functions.
  unsigned instructionCount() const;

private:
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::map<int64_t, std::unique_ptr<Constant>> IntConstants;
  std::map<uint64_t, std::unique_ptr<Constant>> FloatConstants;
};

} // namespace msem

#endif // MSEM_IR_MODULE_H
