//===- ir/Value.h - IR value hierarchy ---------------------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the base of everything an instruction can reference: constants,
/// function arguments, globals and instruction results. A lightweight Kind
/// tag provides LLVM-style isa/cast dispatch without RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_IR_VALUE_H
#define MSEM_IR_VALUE_H

#include "ir/Type.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace msem {

class Function;

/// Discriminator for the Value hierarchy.
enum class ValueKind : uint8_t {
  Constant,
  Argument,
  Global,
  Instruction,
};

/// Base class of all IR values.
class Value {
public:
  Value(ValueKind K, Type Ty) : Kind(K), Ty(Ty) {}
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind kind() const { return Kind; }
  Type type() const { return Ty; }

  /// Sequential id for printing; assigned by the owning container.
  uint32_t id() const { return Id; }
  void setId(uint32_t NewId) { Id = NewId; }

protected:
  void setType(Type NewTy) { Ty = NewTy; }

private:
  ValueKind Kind;
  Type Ty;
  uint32_t Id = 0;
};

/// An immutable constant (int or double, by type).
class Constant : public Value {
public:
  static Constant makeInt(int64_t V) { return Constant(Type::I64, V, 0.0); }
  static Constant makeFloat(double V) { return Constant(Type::F64, 0, V); }

  Constant(Type Ty, int64_t IntV, double FpV)
      : Value(ValueKind::Constant, Ty), IntVal(IntV), FpVal(FpV) {
    assert((Ty == Type::I64 || Ty == Type::F64) && "bad constant type");
  }

  int64_t intValue() const {
    assert(type() == Type::I64 && "not an integer constant");
    return IntVal;
  }
  double floatValue() const {
    assert(type() == Type::F64 && "not a float constant");
    return FpVal;
  }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Constant;
  }

private:
  int64_t IntVal;
  double FpVal;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type Ty, unsigned Index, std::string Name)
      : Value(ValueKind::Argument, Ty), Index(Index), Name(std::move(Name)) {}

  unsigned index() const { return Index; }
  const std::string &name() const { return Name; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Argument;
  }

private:
  unsigned Index;
  std::string Name;
};

/// A module-level byte array. Its Value is the base address (Ptr).
class GlobalVariable : public Value {
public:
  GlobalVariable(std::string Name, uint64_t SizeBytes)
      : Value(ValueKind::Global, Type::Ptr), Name(std::move(Name)),
        SizeBytes(SizeBytes) {}

  const std::string &name() const { return Name; }
  uint64_t sizeInBytes() const { return SizeBytes; }

  /// Optional initial bytes (zero-filled beyond the initializer).
  const std::vector<uint8_t> &initializer() const { return Init; }
  void setInitializer(std::vector<uint8_t> Bytes) {
    assert(Bytes.size() <= SizeBytes && "initializer larger than global");
    Init = std::move(Bytes);
  }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Global;
  }

private:
  std::string Name;
  uint64_t SizeBytes;
  std::vector<uint8_t> Init;
};

/// LLVM-style isa<> without RTTI, driven by ValueKind.
template <typename To> bool isa(const Value *V) {
  assert(V && "isa on null value");
  return To::classof(V);
}

template <typename To> To *cast(Value *V) {
  assert(isa<To>(V) && "invalid cast");
  return static_cast<To *>(V);
}

template <typename To> const To *cast(const Value *V) {
  assert(isa<To>(V) && "invalid cast");
  return static_cast<const To *>(V);
}

template <typename To> To *dyn_cast(Value *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To> const To *dyn_cast(const Value *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace msem

#endif // MSEM_IR_VALUE_H
