//===- bench/bench_smarts_accuracy.cpp - SMARTS methodology validation ----------===//
//
// Validates the simulation methodology claim of Section 5: SMARTS-style
// systematic sampling estimates execution time within ~1% of the fully
// detailed simulation (at 99.7% confidence) while simulating only a small
// fraction of instructions in detail.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "sampling/Smarts.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Methodology: SMARTS sampling accuracy per benchmark", Scale);
  BenchReport Report("smarts_accuracy", Scale);

  ParameterSpace Space = ParameterSpace::paperSpace();
  TablePrinter T({"Benchmark", "detailed cycles", "sampled estimate",
                  "error %", "bound %", "detail frac %"});
  double WorstErr = 0;

  for (const WorkloadSpec &Spec : allWorkloads()) {
    MachineProgram Prog = compileWorkloadBinary(
        Spec.Name, Scale.Input, OptimizationConfig::O2());
    MachineConfig M = MachineConfig::typical();

    SimulationResult Full = simulateDetailed(Prog, M);
    SmartsConfig SC = ResponseSurface::Options::makeDefaultSmarts();
    SmartsResult Sampled = simulateSmarts(Prog, M, SC);

    double Err = 100.0 *
                 std::fabs(static_cast<double>(Sampled.EstimatedCycles) -
                           static_cast<double>(Full.Cycles)) /
                 static_cast<double>(Full.Cycles);
    WorstErr = std::max(WorstErr, Err);
    double DetailFrac =
        100.0 * static_cast<double>(Sampled.SampledInstructions) /
        static_cast<double>(std::max<uint64_t>(1, Sampled.TotalInstructions));
    T.addRow({Spec.PaperName, formatString("%llu", (unsigned long long)Full.Cycles),
              formatString("%llu", (unsigned long long)Sampled.EstimatedCycles),
              formatString("%.2f", Err),
              formatString("%.2f", 100.0 * Sampled.RelativeErrorBound),
              formatString("%.1f", DetailFrac)});
  }
  T.print();
  std::printf("\nWorst observed error: %.2f%% (paper claims <1%% at 99.7%% "
              "confidence for its window/interval choice).\n",
              WorstErr);
  return 0;
}
