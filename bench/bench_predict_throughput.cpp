//===- bench/bench_predict_throughput.cpp - Serving-engine throughput -----------===//
//
// Quantifies the paper's economic argument in served-model form: once a
// fitted model is published as an artifact, how many predictions per
// second does the serving path deliver, and how does that compare to
// paying the simulator for each configuration instead?
//
// For every serializable model kind (linear, MARS, RBF, regression tree,
// log-RBF) the harness trains a model on a Latin-hypercube design over
// the joint paper space, publishes it to a throwaway registry, fetches it
// back (so the measured path is exactly what msem_predict runs: artifact
// -> deserialized model -> batched predict), and times a large request
// batch on a 1-thread and a default-size global pool. A handful of real
// simulator measurements calibrates the "simulations replaced per second
// of serving" column. The 1-thread and N-thread prediction vectors are
// compared bitwise; any divergence exits nonzero.
//
// Scale overrides: MSEM_TRAIN_N (training design), MSEM_SEED, and the
// request batch is MSEM_TEST_N * 1000 (50000 at the default).
//
//===-----------------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/LinearModel.h"
#include "model/Mars.h"
#include "model/RbfNetwork.h"
#include "model/RegressionTree.h"
#include "model/TransformedModel.h"
#include "registry/ModelRegistry.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <unistd.h>
#include <vector>

using namespace msem;
using namespace msem::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Times a batched predict of \p X rows on a \p Threads-sized pool.
struct ServeTiming {
  double Seconds = 0;
  std::vector<double> Predictions;
};

/// Best-of-3: the whole batch fits in a few milliseconds, so a single
/// timed pass is at the mercy of one scheduler blip; the minimum over
/// three passes is the contention-free rate the gate should see.
ServeTiming serveBatch(const Model &M, const Matrix &X, size_t Threads) {
  setGlobalThreadCount(Threads);
  ServeTiming T;
  T.Seconds = std::numeric_limits<double>::infinity();
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    std::vector<double> Preds = globalThreadPool().parallelMap(
        X.rows(), [&](size_t I) { return M.predict(X.row(I)); }, "predict");
    T.Seconds = std::min(T.Seconds, secondsSince(Start));
    if (Rep == 0)
      T.Predictions = std::move(Preds);
  }
  return T;
}

} // namespace

int main() {
  BenchScale Scale = readScale();
  if (!env().TrainNSet)
    Scale.TrainN = 160;
  size_t BatchSize = Scale.TestN * 1000; // 50k at the default MSEM_TEST_N.
  printBanner("Performance: artifact serving throughput vs. simulator cost",
              Scale);
  BenchReport Report("predict_throughput", Scale);
  std::printf("batch = %zu requests, pool = 1 vs %zu threads\n\n", BatchSize,
              defaultThreadCount());

  ParameterSpace Space = ParameterSpace::paperSpace();
  Rng R(Scale.Seed);

  // Training design + synthetic-but-structured response: throughput does
  // not depend on what the model learned, only on its evaluated form, so
  // the simulator is not needed to *train* here.
  std::vector<DesignPoint> TrainPoints =
      generateLatinHypercube(Space, Scale.TrainN, R);
  Matrix TrainX = encodeMatrix(Space, TrainPoints);
  std::vector<double> TrainY;
  for (size_t I = 0; I < TrainX.rows(); ++I) {
    const std::vector<double> &Row = TrainX.row(I);
    double V = 4e6 + 9.1e5 * Row[0] - 3.3e5 * Row[4] +
               2.2e5 * Row[1] * Row[16] + R.normal(0, 5e4);
    TrainY.push_back(V);
  }

  // Calibrate the alternative: real compile+simulate cost per point.
  double SimSecondsPerPoint;
  {
    ResponseSurface::Options SurfOpts;
    SurfOpts.Workload = "art";
    SurfOpts.Input = InputSet::Test;
    SurfOpts.Smarts.SamplingInterval = 10;
    ResponseSurface Surface(Space, SurfOpts);
    Rng SimR(Scale.Seed ^ 0x51);
    std::vector<DesignPoint> Probe = generateRandomCandidates(Space, 6, SimR);
    setGlobalThreadCount(1);
    auto Start = std::chrono::steady_clock::now();
    Surface.measureAll(Probe);
    SimSecondsPerPoint = secondsSince(Start) / Probe.size();
  }
  std::printf("simulator: %.3f s per configuration (art/test, single "
              "thread)\n\n",
              SimSecondsPerPoint);
  Report.metric("sim_seconds_per_point", SimSecondsPerPoint);

  // The request batch (raw joint-space configurations, like msem_predict
  // --gen would produce).
  Rng ReqR(Scale.Seed ^ 0xBA7C4);
  std::vector<DesignPoint> Requests =
      generateRandomCandidates(Space, BatchSize, ReqR);
  Matrix ReqX = encodeMatrix(Space, Requests);

  struct Kind {
    const char *Name;
    std::unique_ptr<Model> M;
  };
  std::vector<Kind> Kinds;
  Kinds.push_back({"linear", std::make_unique<LinearModel>()});
  Kinds.push_back({"mars", std::make_unique<MarsModel>()});
  Kinds.push_back({"rbf", std::make_unique<RbfNetwork>()});
  Kinds.push_back({"tree", std::make_unique<RegressionTree>()});
  Kinds.push_back(
      {"log-rbf",
       std::make_unique<LogResponseModel>(std::make_unique<RbfNetwork>())});

  std::string RegistryDir =
      formatString("msem_bench_predict_reg_%d", static_cast<int>(getpid()));
  std::filesystem::remove_all(RegistryDir);
  ModelRegistry Registry({RegistryDir, 8});

  TablePrinter Table({"model", "preds/s x1", "preds/s xN", "speedup",
                      "us/pred", "sims replaced/s"});
  bool Diverged = false;
  for (Kind &K : Kinds) {
    K.M->train(TrainX, TrainY);

    ModelArtifactInfo Info;
    Info.Key.Workload = "art";
    Info.Key.Technique = K.Name;
    Info.Space = Space;
    Info.Campaign = "bench-predict-throughput";
    Info.Seed = Scale.Seed;
    Info.TrainSize = TrainPoints.size();
    std::string Error;
    if (!Registry.publish(Info, *K.M, &Error))
      fatalError("publish failed: " + Error);
    std::shared_ptr<const ModelArtifact> Artifact =
        Registry.fetch(Info.Key, &Error);
    if (!Artifact)
      fatalError("fetch failed: " + Error);

    ServeTiming One = serveBatch(*Artifact->M, ReqX, 1);
    ServeTiming Many = serveBatch(*Artifact->M, ReqX, 0);
    if (One.Predictions != Many.Predictions) {
      std::printf("DIVERGENCE: %s predictions differ across thread counts\n",
                  K.Name);
      Diverged = true;
    }

    double RateOne = BatchSize / One.Seconds;
    double RateMany = BatchSize / Many.Seconds;
    Report.metric(formatString("preds_per_sec.%s", K.Name), RateMany);
    Table.addRowCells(K.Name, formatString("%.0f", RateOne),
                      formatString("%.0f", RateMany),
                      formatString("%.2fx", RateMany / RateOne),
                      formatString("%.2f", 1e6 * Many.Seconds / BatchSize),
                      formatString("%.0f", RateMany * SimSecondsPerPoint));
  }
  Table.print();
  std::printf("\n'sims replaced/s': simulator configurations one second of "
              "serving stands in for (throughput x %.3f s/sim).\n",
              SimSecondsPerPoint);

  std::filesystem::remove_all(RegistryDir);
  setGlobalThreadCount(0);
  if (Diverged) {
    std::printf("\nFAIL: served predictions were not thread-count "
                "invariant\n");
    return 1;
  }
  return 0;
}
