//===- bench/bench_trace_replay.cpp - Trace-replay fast-path speedup ------------===//
//
// Quantifies the level-2 simulation fast path (uarch/TraceCache.h): after
// one functional run of a binary is captured, every further machine
// configuration of that binary re-simulates from the trace, skipping the
// interpreter entirely. For each workload the harness times SMARTS
// simulation live and replayed across three machine configurations,
// checks the results are bitwise identical, and reports the per-point
// speedup for second-and-later machine configurations (the steady state
// of a machine sweep). Exits nonzero if any replay diverges from live.
//
// The 3x aggregate-speedup floor is enforced at the canonical
// demonstration scale (MSEM_INPUT=test), where the measured margin is
// wide (~3.7x). At longer inputs the per-point compile cost amortizes
// toward zero and the ratio converges on the pure streaming ratio
// (~2.8-3.0x), close enough to the floor that machine-load noise on the
// live side would make a hard gate flake; there the ratio is reported
// and recorded as a bench metric (msem_bench_diff tracks it against the
// committed baselines with the loose timing threshold), but it does not
// fail the run. Identity is enforced at every scale.
//
// Scale overrides: MSEM_TRAIN_N / MSEM_TEST_N / MSEM_INPUT / MSEM_SEED
// (BenchCommon; only the input set matters here).
//
// --smoke <workload>: replay-identity smoke for CI (tools/msem_lint.sh).
// Runs just that workload's live-vs-replay comparison and gates on the
// bitwise-identity contract only -- no timing floor, so it stays
// meaningful on loaded machines.
//
//===-----------------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "sampling/Smarts.h"
#include "uarch/TraceCache.h"

#include <chrono>
#include <string>
#include <vector>

using namespace msem;
using namespace msem::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

bool sameResult(const SmartsResult &A, const SmartsResult &B) {
  return A.EstimatedCpi == B.EstimatedCpi &&
         A.EstimatedCycles == B.EstimatedCycles &&
         A.RelativeErrorBound == B.RelativeErrorBound &&
         A.TotalInstructions == B.TotalInstructions &&
         A.SampledInstructions == B.SampledInstructions &&
         A.MeasuredWindows == B.MeasuredWindows &&
         A.FellBackToDetailed == B.FellBackToDetailed &&
         A.Exec.ReturnValue == B.Exec.ReturnValue;
}

struct WorkloadTiming {
  double CaptureSeconds = 0; ///< One-time: capture run + image build.
  double LiveSeconds = 0;    ///< Sum over machine points, live.
  double ReplaySeconds = 0;  ///< Sum over machine points, replayed.
  size_t Points = 0;
  size_t TraceBytes = 0;
  uint64_t Instructions = 0;
  bool Identical = true;
};

WorkloadTiming runWorkload(const std::string &Name, InputSet Input) {
  // The campaign's sampling defaults: what a real design point costs.
  SmartsConfig SC = ResponseSurface::Options::makeDefaultSmarts();
  const MachineConfig Machines[] = {MachineConfig::constrained(),
                                    MachineConfig::typical(),
                                    MachineConfig::aggressive()};

  auto Prog = std::make_shared<const MachineProgram>(
      compileWorkloadBinary(Name, Input, OptimizationConfig::O2()));

  WorkloadTiming T;

  auto Start = std::chrono::steady_clock::now();
  TraceBuilder Builder;
  CapturingExecutor Cap(*Prog, 4'000'000'000ull, Builder);
  Cap.run([](const RetiredInstr &) {});
  auto Image = ReplayImage::build(
      Prog, Builder.finish(Cap.result(), 4'000'000'000ull));
  T.CaptureSeconds = secondsSince(Start);
  T.TraceBytes = Image->Trace.bytes();
  T.Instructions = Image->Trace.NumRetired;

  for (const MachineConfig &M : Machines) {
    // The uncached pipeline's per-point cost: a full recompile (the seed
    // response surface compiled every design point, machine-only changes
    // included) plus a live sampled simulation.
    Start = std::chrono::steady_clock::now();
    MachineProgram PointProg =
        compileWorkloadBinary(Name, Input, OptimizationConfig::O2());
    SmartsResult Live = simulateSmarts(PointProg, M, SC);
    T.LiveSeconds += secondsSince(Start);

    Start = std::chrono::steady_clock::now();
    SmartsResult Replayed = simulateSmartsReplay(*Image, M, SC);
    T.ReplaySeconds += secondsSince(Start);

    T.Identical = T.Identical && sameResult(Live, Replayed);
    ++T.Points;
  }
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchScale Scale = readScale();
  if (Argc == 3 && std::string(Argv[1]) == "--smoke") {
    const std::string Name = Argv[2];
    WorkloadTiming R = runWorkload(Name, Scale.Input);
    std::printf("replay-identity smoke: %s, %llu instrs, %zu machine "
                "points, %s\n",
                Name.c_str(),
                static_cast<unsigned long long>(R.Instructions), R.Points,
                R.Identical ? "all replays bitwise identical"
                            : "REPLAY DIVERGED FROM LIVE");
    return R.Identical ? 0 : 1;
  }
  printBanner("Performance: trace-capture & replay fast path (per-point "
              "re-simulation cost across machine configurations)",
              Scale);
  BenchReport Report("trace_replay", Scale);

  TablePrinter T({"Workload", "instrs", "trace KB", "capture s",
                  "live s/pt*", "replay s/pt", "speedup", "identical"});

  double LiveTotal = 0, ReplayTotal = 0;
  size_t PointTotal = 0;
  bool AllIdentical = true;
  for (const WorkloadSpec &W : allWorkloads()) {
    WorkloadTiming R = runWorkload(W.Name, Scale.Input);
    double LivePer = R.LiveSeconds / static_cast<double>(R.Points);
    double ReplayPer = R.ReplaySeconds / static_cast<double>(R.Points);
    double Speedup = ReplayPer > 0 ? LivePer / ReplayPer : 0.0;
    T.addRow({W.Name, formatString("%llu",
                                   static_cast<unsigned long long>(
                                       R.Instructions)),
              formatString("%.0f", static_cast<double>(R.TraceBytes) / 1024),
              formatString("%.3f", R.CaptureSeconds),
              formatString("%.3f", LivePer), formatString("%.3f", ReplayPer),
              formatString("%.2fx", Speedup), R.Identical ? "yes" : "NO"});
    Report.metric("speedup." + W.Name, Speedup);
    Report.metric("trace_kb." + W.Name,
                  static_cast<double>(R.TraceBytes) / 1024);
    LiveTotal += R.LiveSeconds;
    ReplayTotal += R.ReplaySeconds;
    PointTotal += R.Points;
    AllIdentical = AllIdentical && R.Identical;
  }
  T.print();
  std::printf("* live = recompile + sampled simulation, the uncached "
              "pipeline's per-point cost.\n");

  double Overall = ReplayTotal > 0 ? LiveTotal / ReplayTotal : 0.0;
  std::printf("\nOverall: %zu machine points, live %.2fs vs replay %.2fs "
              "-> %.2fx per-point speedup for second-and-later machine "
              "configurations.\n",
              PointTotal, LiveTotal, ReplayTotal, Overall);
  Report.metric("live_seconds", LiveTotal);
  Report.metric("replay_seconds", ReplayTotal);
  Report.metric("speedup", Overall);
  Report.metric("identical", AllIdentical ? 1 : 0);

  if (!AllIdentical) {
    std::printf("\nFAIL: a replayed simulation diverged from live -- the "
                "bitwise-identity contract is broken.\n");
    return 1;
  }
  if (Overall < 3.0) {
    if (Scale.Input == InputSet::Test) {
      std::printf("\nFAIL: aggregate speedup %.2fx is below the 3x floor "
                  "the fast path is committed to at the demonstration "
                  "scale.\n",
                  Overall);
      return 1;
    }
    std::printf("\nNote: aggregate speedup %.2fx is below the 3x floor "
                "enforced at MSEM_INPUT=test; at this input scale the "
                "compile cost amortizes away and the ratio approaches the "
                "pure streaming ratio, so it is reported without "
                "gating.\n",
                Overall);
  }
  std::printf("All replays bitwise identical to live simulation.\n");
  return 0;
}
