//===- bench/bench_micro_simulator.cpp - Simulator throughput -------------------===//
//
// google-benchmark microbenchmarks of the measurement substrate: compile
// time per binary, functional-execution throughput, detailed-simulation
// throughput and the SMARTS speedup -- the quantities that budget the
// whole empirical-modeling campaign. Also a small ablation showing the
// mispredict-penalty path is exercised (cycles rise when the predictor
// shrinks).
//
// Unlike the other micro suite this one has a custom main: every run's
// per-iteration time and counters also land in results/
// BENCH_micro_simulator.json (schema msem.bench.v1) so the regression
// sentinel (tools/msem_bench_diff) can gate simulator-throughput cliffs
// against the committed baseline.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "core/ResponseSurface.h"
#include "isa/Executor.h"
#include "sampling/Smarts.h"
#include "uarch/Simulator.h"
#include "uarch/TraceCache.h"
#include "ir/LoopBuilder.h"
#include "opt/Passes.h"
#include "codegen/CodeGenerator.h"
#include "telemetry/Telemetry.h"

#include <benchmark/benchmark.h>

#include <cctype>

using namespace msem;

namespace {

const MachineProgram &artProgram() {
  static MachineProgram Prog = compileWorkloadBinary(
      "art", InputSet::Test, OptimizationConfig::O2());
  return Prog;
}

void BM_CompileWorkload(benchmark::State &State) {
  telemetry::ScopedTimer Span("bench.compile_workload");
  for (auto _ : State) {
    MachineProgram P = compileWorkloadBinary("art", InputSet::Test,
                                             OptimizationConfig::O3());
    benchmark::DoNotOptimize(P.Code.size());
  }
}
BENCHMARK(BM_CompileWorkload)->Unit(benchmark::kMillisecond);

void BM_FunctionalExecution(benchmark::State &State) {
  const MachineProgram &Prog = artProgram();
  telemetry::ScopedTimer Span("bench.functional_execution");
  uint64_t Instrs = 0;
  for (auto _ : State) {
    Executor Exec(Prog);
    ExecResult R = Exec.runToCompletion();
    Instrs += R.InstructionsExecuted;
    benchmark::DoNotOptimize(R.ReturnValue);
  }
  State.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void BM_DetailedSimulation(benchmark::State &State) {
  const MachineProgram &Prog = artProgram();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SimulationResult R = simulateDetailed(Prog, MachineConfig::typical());
    Instrs += R.Pipeline.Instructions;
    benchmark::DoNotOptimize(R.Cycles);
  }
  State.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetailedSimulation)->Unit(benchmark::kMillisecond);

void BM_SmartsSimulation(benchmark::State &State) {
  const MachineProgram &Prog = artProgram();
  SmartsConfig SC = ResponseSurface::Options::makeDefaultSmarts();
  SC.SamplingInterval = 10;
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SmartsResult R = simulateSmarts(Prog, MachineConfig::typical(), SC);
    Instrs += R.TotalInstructions;
    benchmark::DoNotOptimize(R.EstimatedCycles);
  }
  State.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmartsSimulation)->Unit(benchmark::kMillisecond);

/// The captured trace of artProgram, built once (the replay benches
/// measure steady-state re-simulation, not the one-time capture).
std::shared_ptr<const ReplayImage> artImage() {
  static std::shared_ptr<const ReplayImage> Image = [] {
    auto Prog = std::make_shared<const MachineProgram>(compileWorkloadBinary(
        "art", InputSet::Test, OptimizationConfig::O2()));
    TraceBuilder Builder;
    CapturingExecutor Exec(*Prog, 4'000'000'000ull, Builder);
    Exec.run([](const RetiredInstr &) {});
    return ReplayImage::build(std::move(Prog),
                              Builder.finish(Exec.result(),
                                             4'000'000'000ull));
  }();
  return Image;
}

/// BM_DetailedSimulation with the executor swapped for trace replay:
/// the gap is the interpreter's share of a detailed point.
void BM_DetailedReplay(benchmark::State &State) {
  auto Image = artImage();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SimulationResult R =
        simulateDetailedReplay(*Image, MachineConfig::typical());
    Instrs += R.Pipeline.Instructions;
    benchmark::DoNotOptimize(R.Cycles);
  }
  State.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetailedReplay)->Unit(benchmark::kMillisecond);

/// BM_SmartsSimulation from the trace: what second-and-later machine
/// configurations of the same binary cost under the level-2 fast path.
void BM_SmartsReplay(benchmark::State &State) {
  auto Image = artImage();
  SmartsConfig SC = ResponseSurface::Options::makeDefaultSmarts();
  SC.SamplingInterval = 10;
  uint64_t Instrs = 0;
  for (auto _ : State) {
    SmartsResult R =
        simulateSmartsReplay(*Image, MachineConfig::typical(), SC);
    Instrs += R.TotalInstructions;
    benchmark::DoNotOptimize(R.EstimatedCycles);
  }
  State.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmartsReplay)->Unit(benchmark::kMillisecond);

void BM_CacheAccess(benchmark::State &State) {
  Cache C(32 * 1024, 2, 32);
  telemetry::ScopedTimer Span("bench.cache_access");
  uint64_t Addr = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.access(Addr, false));
    Addr += 40; // Mixed hits and misses.
  }
}
BENCHMARK(BM_CacheAccess);

void BM_BranchPredictor(benchmark::State &State) {
  CombinedPredictor P(2048, 8);
  telemetry::ScopedTimer Span("bench.branch_predictor");
  uint64_t Pc = 0;
  bool Dir = false;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.predictConditional(Pc));
    P.updateConditional(Pc, Dir);
    Pc = (Pc + 4) & 0xFFFF;
    Dir = !Dir;
  }
}
BENCHMARK(BM_BranchPredictor);

/// A deterministic-pattern branchy kernel: a Collatz-style recurrence
/// whose branch sequence is fixed but long, so the 2-level component can
/// memorize it -- if its table is large enough. Small tables alias.
MachineProgram patternKernel() {
  auto M = std::make_unique<Module>("pattern");
  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(30000), 1, "steps");
  Value *X = L.carried(B.constInt(29));
  Value *Odd = B.andOp(X, B.constInt(1));
  BasicBlock *T = Main->createBlock("odd");
  BasicBlock *E = Main->createBlock("even");
  BasicBlock *J = Main->createBlock("join");
  B.br(Odd, T, E);
  B.setInsertPoint(T);
  Value *X1 = B.add(B.mul(X, B.constInt(3)), B.constInt(1));
  B.jmp(J);
  B.setInsertPoint(E);
  Value *X2 = B.divS(X, B.constInt(2));
  B.jmp(J);
  B.setInsertPoint(J);
  Instruction *XN = B.phi(Type::I64);
  XN->addPhiIncoming(X1, T);
  XN->addPhiIncoming(X2, E);
  Value *Small = B.icmp(CmpPred::LE, XN, B.constInt(1));
  L.setNext(X, B.select(Small, B.add(XN, B.constInt(97)), XN));
  L.finish();
  B.ret(L.exitValue(X));
  runPassPipeline(*M, OptimizationConfig::O2());
  CodeGenOptions CG;
  CG.PostRaSchedule = true;
  return compileToProgram(*M, CG);
}

/// Ablation: mispredicts (and cycles) must fall when the branch predictor
/// grows, demonstrating the mispredict-penalty path (the substitute for
/// wrong-path fetch modeling) is active.
void BM_MispredictSensitivity(benchmark::State &State) {
  MachineProgram Prog = patternKernel();
  telemetry::ScopedTimer Span("bench.mispredict_sensitivity");
  MachineConfig M = MachineConfig::typical();
  M.BranchPredictorSize = static_cast<unsigned>(State.range(0));
  uint64_t Cycles = 0, Misp = 0;
  for (auto _ : State) {
    SimulationResult R = simulateDetailed(Prog, M);
    Cycles = R.Cycles;
    Misp = R.Branch.Mispredicts;
  }
  State.counters["cycles"] = static_cast<double>(Cycles);
  State.counters["mispredicts"] = static_cast<double>(Misp);
}
BENCHMARK(BM_MispredictSensitivity)
    ->Arg(512)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

/// "BM_DetailedSimulation/512" -> "detailedsimulation_512": a stable
/// BENCH-metric key ('/' and ':' become '_'; the BM_ prefix drops).
std::string metricKey(const std::string &BenchName) {
  std::string Name = BenchName.rfind("BM_", 0) == 0 ? BenchName.substr(3)
                                                    : BenchName;
  std::string Key;
  for (char C : Name)
    Key += std::isalnum(static_cast<unsigned char>(C))
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(C)))
               : '_';
  return Key;
}

/// The console reporter, additionally mirroring every iteration run's
/// per-iteration time and user counters into the BENCH report. Counter
/// names keep their rate suffix ("instr/s" -> "<key>_instr_per_s") so
/// msem_bench_diff classifies them as higher-is-better throughput.
class ReportingReporter : public benchmark::ConsoleReporter {
public:
  explicit ReportingReporter(bench::BenchReport &Report) : Report(Report) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      std::string Key = metricKey(R.benchmark_name());
      double Seconds = R.iterations
                           ? R.real_accumulated_time /
                                 static_cast<double>(R.iterations)
                           : R.real_accumulated_time;
      Report.metric(Key + "_ms", Seconds * 1e3);
      for (const auto &[CName, Counter] : R.counters) {
        std::string CKey = CName == "instr/s" ? "instr_per_s"
                                              : metricKey(CName);
        Report.metric(Key + "_" + CKey, Counter.value);
      }
    }
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  bench::BenchReport &Report;
};

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  bench::BenchScale Scale = bench::readScale();
  bench::BenchReport Report("micro_simulator", Scale);
  ReportingReporter Reporter(Report);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}
