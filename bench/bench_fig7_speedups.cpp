//===- bench/bench_fig7_speedups.cpp - Figure 7 reproduction --------------------===//
//
// Reproduces Figure 7: predicted and actual speedup over -O2 at the flag
// and heuristic settings found by model-based GA search, for the three
// reference microarchitectures; the -O3 speedup is the baseline bar.
//
// Paper's shape: -O3 gains are small (can even be negative on the typical
// configuration); model-prescribed settings deliver solid actual speedups
// (~9.5% average, up to ~19%) that track the predicted speedups, with the
// aggressive (design-space-edge) configuration tracking worst.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "search/GeneticSearch.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Figure 7: speedup over -O2 (model-guided settings)", Scale);
  BenchReport Report("fig7_speedups", Scale);

  ParameterSpace Space = ParameterSpace::paperSpace();
  const MachineConfig Configs[3] = {MachineConfig::constrained(),
                                    MachineConfig::typical(),
                                    MachineConfig::aggressive()};
  const char *ConfigNames[3] = {"constr", "typical", "aggr"};

  TablePrinter T({"Program", "Config", "O3 spd%", "GA pred%", "GA actual%"});
  double SumO3 = 0, SumPred = 0, SumActual = 0, MaxActual = -1e9;
  size_t Count = 0;

  for (const WorkloadSpec &Spec : allWorkloads()) {
    auto Surface = makeSurface(Space, Spec.Name, Scale, Scale.Input);
    Rng R(Scale.Seed ^ 0x7E57);
    auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
    auto TestY = Surface->measureAll(TestPoints);
    ModelBuilderOptions Opts = standardBuild(ModelTechnique::Rbf, Scale);
    Opts.ExternalTest = TestSet{TestPoints, TestY};
    ModelBuildResult Res = buildModel(*Surface, Opts);
    const Model &M = *Res.FittedModel;

    for (int C = 0; C < 3; ++C) {
      DesignPoint O2Point =
          Space.fromConfigs(OptimizationConfig::O2(), Configs[C]);
      DesignPoint O3Point =
          Space.fromConfigs(OptimizationConfig::O3(), Configs[C]);
      GaOptions Ga;
      Ga.Seed = Scale.Seed + C;
      GaResult BestRes = searchOptimalSettings(M, Space, O2Point, Ga);

      double CyclesO2 = Surface->measure(O2Point);
      double CyclesO3 = Surface->measure(O3Point);
      double CyclesGa = Surface->measure(BestRes.BestPoint);
      double PredGa = M.predict(Space.encode(BestRes.BestPoint));
      double PredO2 = M.predict(Space.encode(O2Point));

      double O3Spd = 100.0 * (CyclesO2 - CyclesO3) / CyclesO2;
      double PredSpd = 100.0 * (PredO2 - PredGa) / PredO2;
      double ActSpd = 100.0 * (CyclesO2 - CyclesGa) / CyclesO2;
      T.addRow({Spec.Name, ConfigNames[C], formatString("%+.1f", O3Spd),
                formatString("%+.1f", PredSpd),
                formatString("%+.1f", ActSpd)});
      SumO3 += O3Spd;
      SumPred += PredSpd;
      SumActual += ActSpd;
      MaxActual = std::max(MaxActual, ActSpd);
      ++Count;
    }
    std::printf("  evaluated %s\n", Spec.Name.c_str());
  }
  double N = static_cast<double>(Count);
  T.addRow({"Average", "", formatString("%+.1f", SumO3 / N),
            formatString("%+.1f", SumPred / N),
            formatString("%+.1f", SumActual / N)});
  T.print();
  std::printf("\nPaper reference: O3 speedup small (avg ~-2%% on typical); "
              "model-guided actual speedup ~9.5%% average, ~19%% max.\n");
  std::printf("Measured: average actual %+.1f%%, max %+.1f%%.\n",
              SumActual / N, MaxActual);
  return 0;
}
