//===- bench/bench_fig3_unroll_icache.cpp - Figure 3 reproduction ---------------===//
//
// Reproduces Figure 3: execution time of art as a function of the
// max-unroll-times heuristic and the instruction cache size, plus the
// failure of a simple linear fit on the 8KB-icache slice.
//
// Paper's shape: time first falls with the unroll factor, then flattens
// (and can rise again for small icaches); a linear model fitted to the
// slice misrepresents the relationship (even suggesting a positive slope).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/LinearModel.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Figure 3: art execution time vs max-unroll-times x icache",
              Scale);
  BenchReport Report("fig3_unroll_icache", Scale);

  ParameterSpace Space = ParameterSpace::paperSpace();
  auto Surface = makeSurface(Space, "art", Scale, Scale.Input);

  // -O2 plus unrolling enabled (max-unrolled-insns at its Table 1 high so
  // the size gate never masks the factor); sweep the unroll heuristic and
  // the icache.
  OptimizationConfig Base = OptimizationConfig::O2();
  Base.UnrollLoops = true;
  Base.MaxUnrolledInsns = 300;
  MachineConfig Machine = MachineConfig::typical();

  // Factor 1 = unrolling disabled (the figure's origin); factors beyond
  // the Table 1 search range extend the sweep the way the paper's figure
  // does.
  const std::vector<int64_t> UnrollLevels = {1,  2,  3,  4,  6,  8,
                                             12, 16, 20, 24, 28, 32};
  const std::vector<int64_t> IcacheSizes = {8 * 1024, 16 * 1024, 32 * 1024,
                                            64 * 1024, 128 * 1024};

  std::vector<std::string> Headers{"max-unroll-times"};
  for (int64_t IC : IcacheSizes)
    Headers.push_back(formatString("icache %lldKB", (long long)IC / 1024));
  TablePrinter T(Headers);

  std::vector<double> Slice8K; // The 8KB column, for the linear fit.
  std::vector<double> SliceX;
  for (int64_t U : UnrollLevels) {
    std::vector<std::string> Row{formatString("%lld", (long long)U)};
    for (int64_t IC : IcacheSizes) {
      OptimizationConfig C = Base;
      C.UnrollLoops = U > 1;
      C.MaxUnrollTimes = static_cast<int>(U);
      MachineConfig M = Machine;
      M.IcacheBytes = static_cast<unsigned>(IC);
      DesignPoint P = Space.fromConfigs(C, M);
      double Cycles = Surface->measure(P);
      Row.push_back(formatString("%.0f", Cycles));
      if (IC == IcacheSizes.front()) {
        Slice8K.push_back(Cycles);
        SliceX.push_back(Space.param(12).encode(U));
      }
    }
    T.addRow(Row);
  }
  T.print();

  // The paper's point: a linear model on the 8KB slice is inadequate.
  Matrix X(SliceX.size(), 1);
  for (size_t I = 0; I < SliceX.size(); ++I)
    X.at(I, 0) = SliceX[I];
  LinearModel::Options LinOpts;
  LinOpts.TwoFactorInteractions = false;
  LinearModel Lin(LinOpts);
  Lin.train(X, Slice8K);

  std::printf("\nLinear fit on the 8KB-icache slice: time ~ %.0f %+.0f * "
              "unroll(encoded)\n",
              Lin.coefficients()[0], Lin.coefficients()[1]);
  ModelQuality Q = evaluateModel(Lin, X, Slice8K);
  std::printf("Linear-fit error on its own training slice: %.2f%% MAPE "
              "(paper: the linear approximation visibly misses the "
              "saturating shape)\n",
              Q.Mape);
  double FirstHalf = 0, SecondHalf = 0;
  for (size_t I = 0; I < Slice8K.size() / 2; ++I)
    FirstHalf += Slice8K[I];
  for (size_t I = Slice8K.size() / 2; I < Slice8K.size(); ++I)
    SecondHalf += Slice8K[I];
  std::printf("Shape check: mean(first half) %.0f vs mean(second half) "
              "%.0f -- benefit saturates when the second half stops "
              "improving.\n",
              FirstHalf / (Slice8K.size() / 2),
              SecondHalf / (Slice8K.size() - Slice8K.size() / 2));
  return 0;
}
