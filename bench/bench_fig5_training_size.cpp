//===- bench/bench_fig5_training_size.cpp - Figure 5 reproduction ---------------===//
//
// Reproduces Figure 5: RBF-network prediction error (mean and +/- sigma
// band over repetitions) as a function of training-set size, per program.
// Also reports a random-design baseline at the largest size (an ablation
// of the D-optimal choice).
//
// Paper's shape: error decreases with sample size and stabilizes below
// ~5% between 100-200 simulations for most programs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Statistics.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Figure 5: RBF error vs training-set size", Scale);
  BenchReport Report("fig5_training_size", Scale);

  size_t Reps = static_cast<size_t>(env().Fig5Reps);
  std::vector<size_t> Sizes;
  for (size_t N : {25u, 50u, 100u, 150u, 200u, 300u, 400u})
    if (N <= Scale.TrainN)
      Sizes.push_back(N);

  ParameterSpace Space = ParameterSpace::paperSpace();

  std::vector<std::string> Headers{"Benchmark"};
  for (size_t N : Sizes)
    Headers.push_back(formatString("n=%zu", N));
  Headers.push_back("random(nmax)");
  TablePrinter T(Headers);

  for (const WorkloadSpec &Spec : allWorkloads()) {
    auto Surface = makeSurface(Space, Spec.Name, Scale, Scale.Input);
    Rng R(Scale.Seed ^ 0x7E57);
    auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
    auto TestY = Surface->measureAll(TestPoints);
    Matrix TestX = encodeMatrix(Space, TestPoints);

    std::vector<std::string> Row{Spec.PaperName};
    for (size_t N : Sizes) {
      OnlineStats Stats;
      for (size_t Rep = 0; Rep < Reps; ++Rep) {
        ModelBuilderOptions Opts =
            standardBuild(ModelTechnique::Rbf, Scale);
        Opts.InitialDesignSize = N;
        Opts.MaxDesignSize = N;
        Opts.Seed = Scale.Seed + 101 * Rep;
        Opts.ExternalTest = TestSet{TestPoints, TestY};
        ModelBuildResult Res = buildModel(*Surface, Opts);
        Stats.add(Res.TestQuality.Mape);
      }
      Row.push_back(formatString("%.1f+-%.1f", Stats.mean(),
                                 Stats.stddev()));
    }

    // Ablation: random (non-D-optimal) design at the largest size.
    {
      Rng R2(Scale.Seed ^ 0xAB1A);
      auto RandomTrain =
          generateRandomCandidates(Space, Sizes.back(), R2);
      auto RandomY = Surface->measureAll(RandomTrain);
      auto M = makeModel(ModelTechnique::Rbf);
      M->train(encodeMatrix(Space, RandomTrain), RandomY);
      ModelQuality Q = evaluateModel(*M, TestX, TestY);
      Row.push_back(formatString("%.1f", Q.Mape));
    }
    T.addRow(Row);
    std::printf("  %s done (%zu simulations)\n", Spec.Name.c_str(),
                Surface->simulationsRun());
  }
  T.print();
  std::printf("\nShape check vs paper: error should fall with n and "
              "stabilize below ~5%% by n=100-200 for most programs.\n");
  return 0;
}
