//===- bench/bench_table3_model_accuracy.cpp - Table 3 reproduction ------------===//
//
// Reproduces the paper's Table 3: average percentage prediction error of
// the three modeling techniques (linear regression with 2-factor
// interactions, MARS, RBF networks) for the seven benchmark programs, each
// trained on a D-optimal design and tested on an independent design.
//
// Paper's shape to reproduce: RBF < MARS < linear error, with RBF around
// or below ~5% on average.
//
// The whole campaign is one runExperiment call: 7 workloads x 3 techniques
// as 21 jobs. Jobs on the same workload share a response surface and the
// same design/test seeds, so every technique is fitted and judged on
// identical measured data -- Table 3's ground rule -- with each design
// point simulated once.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Table 3: average prediction error (%) per technique",
              Scale);
  BenchReport Report("table3_model_accuracy", Scale);

  // Paper's reported errors for reference (Table 3).
  struct PaperRow {
    const char *Name;
    double Linear, Mars, Rbf;
  };
  const PaperRow Paper[] = {
      {"gzip", 4.44, 3.17, 2.90},   {"vpr", 7.69, 3.78, 1.84},
      {"mesa", 20.15, 8.78, 7.31},  {"art", 26.44, 14.20, 4.63},
      {"mcf", 11.25, 4.85, 3.99},   {"vortex", 9.69, 6.95, 5.15},
      {"bzip2", 4.81, 2.80, 3.02},
  };
  const ModelTechnique Techniques[3] = {
      ModelTechnique::Linear, ModelTechnique::Mars, ModelTechnique::Rbf};

  ExperimentSpec Spec = standardSpec("table3", Scale);
  for (const WorkloadSpec &W : allWorkloads())
    for (ModelTechnique T : Techniques)
      Spec.Jobs.push_back({W.Name, Scale.Input, ResponseMetric::Cycles, T, 0});

  ExperimentResult Result = runExperiment(Spec);
  if (!Result.ok()) {
    std::printf("campaign %s: %s\n", campaignStatusName(Result.Status),
                Result.Error.c_str());
    return 1;
  }

  TablePrinter T({"Benchmark", "Linear", "MARS", "RBF-RT",
                  "(paper: lin/mars/rbf)"});
  double Sum[3] = {0, 0, 0};
  double PaperSum[3] = {0, 0, 0};
  size_t Count = 0;
  size_t JobIndex = 0;

  for (const WorkloadSpec &W : allWorkloads()) {
    double Errors[3];
    for (int TI = 0; TI < 3; ++TI) {
      Errors[TI] = Result.Jobs[JobIndex++].Build.TestQuality.Mape;
      Sum[TI] += Errors[TI];
    }
    const PaperRow *P = nullptr;
    for (const PaperRow &Row : Paper)
      if (W.Name == Row.Name)
        P = &Row;
    PaperSum[0] += P->Linear;
    PaperSum[1] += P->Mars;
    PaperSum[2] += P->Rbf;
    ++Count;

    T.addRow({W.PaperName, formatString("%.2f", Errors[0]),
              formatString("%.2f", Errors[1]),
              formatString("%.2f", Errors[2]),
              formatString("(%.2f / %.2f / %.2f)", P->Linear, P->Mars,
                           P->Rbf)});
  }
  double N = static_cast<double>(Count);
  T.addRow({"Average", formatString("%.2f", Sum[0] / N),
            formatString("%.2f", Sum[1] / N),
            formatString("%.2f", Sum[2] / N),
            formatString("(%.2f / %.2f / %.2f)", PaperSum[0] / N,
                         PaperSum[1] / N, PaperSum[2] / N)});
  T.print();
  std::printf("campaign: %zu simulations total\n", Result.SimulationsUsed);
  Report.metric("mape.linear", Sum[0] / N);
  Report.metric("mape.mars", Sum[1] / N);
  Report.metric("mape.rbf", Sum[2] / N);
  Report.metric("simulations", static_cast<double>(Result.SimulationsUsed));

  bool RbfBeatsLinear = Sum[2] < Sum[0];
  bool MarsBeatsLinear = Sum[1] < Sum[0];
  std::printf("\nShape check: RBF avg %s linear avg; MARS avg %s linear "
              "avg (paper: both better).\n",
              RbfBeatsLinear ? "<" : ">=", MarsBeatsLinear ? "<" : ">=");
  return 0;
}
