//===- bench/bench_table3_model_accuracy.cpp - Table 3 reproduction ------------===//
//
// Reproduces the paper's Table 3: average percentage prediction error of
// the three modeling techniques (linear regression with 2-factor
// interactions, MARS, RBF networks) for the seven benchmark programs, each
// trained on a D-optimal design and tested on an independent design.
//
// Paper's shape to reproduce: RBF < MARS < linear error, with RBF around
// or below ~5% on average.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Table 3: average prediction error (%) per technique",
              Scale);

  // Paper's reported errors for reference (Table 3).
  struct PaperRow {
    const char *Name;
    double Linear, Mars, Rbf;
  };
  const PaperRow Paper[] = {
      {"gzip", 4.44, 3.17, 2.90},   {"vpr", 7.69, 3.78, 1.84},
      {"mesa", 20.15, 8.78, 7.31},  {"art", 26.44, 14.20, 4.63},
      {"mcf", 11.25, 4.85, 3.99},   {"vortex", 9.69, 6.95, 5.15},
      {"bzip2", 4.81, 2.80, 3.02},
  };

  ParameterSpace Space = ParameterSpace::paperSpace();
  TablePrinter T({"Benchmark", "Linear", "MARS", "RBF-RT",
                  "(paper: lin/mars/rbf)"});
  double Sum[3] = {0, 0, 0};
  double PaperSum[3] = {0, 0, 0};
  size_t Count = 0;

  for (const WorkloadSpec &Spec : allWorkloads()) {
    auto Surface = makeSurface(Space, Spec.Name, Scale, Scale.Input);

    // One shared test set for all three techniques.
    Rng R(Scale.Seed ^ 0x7E57);
    auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
    auto TestY = Surface->measureAll(TestPoints);

    double Errors[3];
    const ModelTechnique Techniques[3] = {
        ModelTechnique::Linear, ModelTechnique::Mars, ModelTechnique::Rbf};
    for (int TI = 0; TI < 3; ++TI) {
      ModelBuilderOptions Opts = standardBuild(Techniques[TI], Scale);
      ModelBuildResult Res =
          buildModelWithTestSet(*Surface, Opts, TestPoints, TestY);
      Errors[TI] = Res.TestQuality.Mape;
      Sum[TI] += Errors[TI];
    }
    const PaperRow *P = nullptr;
    for (const PaperRow &Row : Paper)
      if (Spec.Name == Row.Name)
        P = &Row;
    PaperSum[0] += P->Linear;
    PaperSum[1] += P->Mars;
    PaperSum[2] += P->Rbf;
    ++Count;

    T.addRow({Spec.PaperName, formatString("%.2f", Errors[0]),
              formatString("%.2f", Errors[1]),
              formatString("%.2f", Errors[2]),
              formatString("(%.2f / %.2f / %.2f)", P->Linear, P->Mars,
                           P->Rbf)});
    std::printf("  measured %-8s (%zu sims so far)\n", Spec.Name.c_str(),
                Surface->simulationsRun());
  }
  double N = static_cast<double>(Count);
  T.addRow({"Average", formatString("%.2f", Sum[0] / N),
            formatString("%.2f", Sum[1] / N),
            formatString("%.2f", Sum[2] / N),
            formatString("(%.2f / %.2f / %.2f)", PaperSum[0] / N,
                         PaperSum[1] / N, PaperSum[2] / N)});
  T.print();

  bool RbfBeatsLinear = Sum[2] < Sum[0];
  bool MarsBeatsLinear = Sum[1] < Sum[0];
  std::printf("\nShape check: RBF avg %s linear avg; MARS avg %s linear "
              "avg (paper: both better).\n",
              RbfBeatsLinear ? "<" : ">=", MarsBeatsLinear ? "<" : ">=");
  return 0;
}
