//===- bench/bench_ablations.cpp - Design-choice ablations -----------------------===//
//
// Ablations of the methodology choices DESIGN.md calls out, all on one
// program's cached response surface:
//
//   1. RBF kernel: multiquadric (the paper's pick) vs Gaussian.
//   2. Experimental design: D-optimal vs pure random, across sizes.
//   3. D-optimality information matrix: linear vs linear+2FI expansion.
//   4. SMARTS sampling interval: estimate error and detail fraction.
//   5. Search: GA vs random search of the same evaluation budget,
//      scored on *actual* (simulated) cycles of the winner.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/RbfNetwork.h"
#include "sampling/Smarts.h"
#include "search/GeneticSearch.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Ablations of the methodology's design choices", Scale);
  BenchReport Report("ablations", Scale);
  const char *Workload = "vpr";

  ParameterSpace Space = ParameterSpace::paperSpace();
  auto Surface = makeSurface(Space, Workload, Scale, Scale.Input);

  Rng R(Scale.Seed ^ 0x7E57);
  auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
  auto TestY = Surface->measureAll(TestPoints);
  Matrix TestX = encodeMatrix(Space, TestPoints);

  Rng CandR(Scale.Seed);
  auto Candidates = generateLatinHypercube(Space, 1200, CandR);

  auto MeasureSelected = [&](const std::vector<size_t> &Sel, Matrix &X,
                             std::vector<double> &Y) {
    std::vector<DesignPoint> Pts;
    for (size_t I : Sel)
      Pts.push_back(Candidates[I]);
    X = encodeMatrix(Space, Pts);
    Y = Surface->measureAll(Pts);
  };

  // ---- 1. Kernel choice ---------------------------------------------------
  {
    DOptimalOptions DOpt;
    DOpt.DesignSize = Scale.TrainN;
    auto Sel = selectDOptimal(Space, Candidates, DOpt).Selected;
    Matrix X;
    std::vector<double> Y;
    MeasureSelected(Sel, X, Y);

    TablePrinter T({"RBF kernel", "test MAPE %", "neurons"});
    for (RbfKernel K : {RbfKernel::Multiquadric, RbfKernel::Gaussian}) {
      RbfNetwork::Options Opts;
      Opts.Kernel = K;
      RbfNetwork M(Opts);
      M.train(X, Y);
      ModelQuality Q = evaluateModel(M, TestX, TestY);
      T.addRow({K == RbfKernel::Multiquadric ? "multiquadric (paper)"
                                             : "gaussian",
                formatString("%.2f", Q.Mape),
                formatString("%zu", M.numNeurons())});
    }
    std::printf("\n[1] kernel choice (%s, n=%zu):\n", Workload,
                Scale.TrainN);
    T.print();
  }

  // ---- 2+3. Design selection and expansion ---------------------------------
  {
    TablePrinter T({"design", "n=50", "n=100", "n=200"});
    struct Row {
      const char *Name;
      int Kind; // 0 random, 1 dopt-linear, 2 dopt-2fi
    };
    for (const Row &Row : {Row{"random", 0}, Row{"D-optimal (linear)", 1},
                           Row{"D-optimal (linear+2FI)", 2}}) {
      std::vector<std::string> Cells{Row.Name};
      for (size_t N : {50u, 100u, 200u}) {
        if (N > Scale.TrainN) {
          Cells.push_back("-");
          continue;
        }
        std::vector<size_t> Sel;
        if (Row.Kind == 0) {
          Rng RR(Scale.Seed + N);
          std::vector<size_t> All(Candidates.size());
          for (size_t I = 0; I < All.size(); ++I)
            All[I] = I;
          RR.shuffle(All);
          Sel.assign(All.begin(), All.begin() + N);
        } else {
          DOptimalOptions DOpt;
          DOpt.DesignSize = N;
          DOpt.Expansion = Row.Kind == 1 ? ExpansionKind::Linear
                                         : ExpansionKind::LinearWith2FI;
          DOpt.MaxPasses = Row.Kind == 1 ? 20 : 4; // 2FI is expensive.
          Sel = selectDOptimal(Space, Candidates, DOpt).Selected;
        }
        Matrix X;
        std::vector<double> Y;
        MeasureSelected(Sel, X, Y);
        RbfNetwork M;
        M.train(X, Y);
        Cells.push_back(
            formatString("%.2f", evaluateModel(M, TestX, TestY).Mape));
      }
      T.addRow(Cells);
    }
    std::printf("\n[2/3] design selection vs RBF test MAPE %%:\n");
    T.print();
  }

  // ---- 4. SMARTS interval -----------------------------------------------------
  {
    MachineProgram Prog = compileWorkloadBinary(Workload, Scale.Input,
                                                OptimizationConfig::O2());
    MachineConfig M = MachineConfig::typical();
    SimulationResult Full = simulateDetailed(Prog, M);
    TablePrinter T({"sampling interval", "estimate error %",
                    "detail fraction %"});
    for (uint64_t Interval : {5u, 10u, 25u, 50u, 100u}) {
      SmartsConfig SC;
      SC.SamplingInterval = Interval;
      SmartsResult S = simulateSmarts(Prog, M, SC);
      double Err = 100.0 *
                   std::fabs((double)S.EstimatedCycles - (double)Full.Cycles) /
                   (double)Full.Cycles;
      double Frac = 100.0 * (double)S.SampledInstructions /
                    (double)std::max<uint64_t>(1, S.TotalInstructions);
      T.addRow({formatString("1/%llu", (unsigned long long)Interval),
                formatString("%.2f", Err), formatString("%.1f", Frac)});
    }
    std::printf("\n[4] SMARTS interval sweep (%s, -O2, typical):\n",
                Workload);
    T.print();
  }

  // ---- 5. GA vs random search ---------------------------------------------------
  {
    ModelBuilderOptions Opts = standardBuild(ModelTechnique::Rbf, Scale);
    Opts.ExternalTest = TestSet{TestPoints, TestY};
    ModelBuildResult Res = buildModel(*Surface, Opts);
    DesignPoint Frozen = Space.fromConfigs(OptimizationConfig::O2(),
                                           MachineConfig::typical());
    GaOptions Ga;
    Ga.Population = 40;
    Ga.Generations = 30;
    GaResult Best = searchOptimalSettings(*Res.FittedModel, Space, Frozen, Ga);

    Rng SR(Scale.Seed ^ 0x5EA);
    DesignPoint RandomBest = Frozen;
    double RandomBestPred = 1e300;
    for (int I = 0; I < 40 * 30; ++I) {
      DesignPoint P = Space.randomPoint(SR);
      Space.freezeMachine(P, MachineConfig::typical());
      double Pred = Res.FittedModel->predict(Space.encode(P));
      if (Pred < RandomBestPred) {
        RandomBestPred = Pred;
        RandomBest = P;
      }
    }
    double CyclesO2 = Surface->measure(Frozen);
    double CyclesGa = Surface->measure(Best.BestPoint);
    double CyclesRand = Surface->measure(RandomBest);
    TablePrinter T({"search", "actual cycles", "speedup over O2"});
    T.addRow({"-O2 baseline", formatString("%.0f", CyclesO2), "-"});
    T.addRow({"random (1200 evals)", formatString("%.0f", CyclesRand),
              formatString("%+.1f%%",
                           100.0 * (CyclesO2 - CyclesRand) / CyclesO2)});
    T.addRow({"GA (1200 evals)", formatString("%.0f", CyclesGa),
              formatString("%+.1f%%",
                           100.0 * (CyclesO2 - CyclesGa) / CyclesO2)});
    std::printf("\n[5] model-based search strategies (%s):\n", Workload);
    T.print();
  }
  return 0;
}
