//===- bench/BenchCommon.h - Shared experiment infrastructure -----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infrastructure shared by the experiment harnesses that regenerate the
/// paper's tables and figures. Scales default to a reduced-but-faithful
/// campaign and honour environment overrides:
///
///   MSEM_TRAIN_N   training design size        (default 200; paper: 400)
///   MSEM_TEST_N    test design size            (default 50;  paper: 100)
///   MSEM_INPUT     workload input set          (default "train")
///   MSEM_CACHE     response cache directory    (default "msem_cache")
///   MSEM_SEED      campaign master seed        (default 20070311)
///
/// All harnesses share the on-disk response cache, so re-runs and
/// follow-up experiments reuse earlier simulations.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_BENCH_BENCHCOMMON_H
#define MSEM_BENCH_BENCHCOMMON_H

#include "campaign/Experiment.h"
#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <memory>

namespace msem::bench {

/// Campaign-wide knobs.
struct BenchScale {
  size_t TrainN;
  size_t TestN;
  InputSet Input;
  std::string CacheDir;
  uint64_t Seed;
};

inline BenchScale readScale() {
  const EnvConfig &E = env();
  BenchScale S;
  S.TrainN = static_cast<size_t>(E.TrainN);
  S.TestN = static_cast<size_t>(E.TestN);
  S.Input = E.Input == "ref"    ? InputSet::Ref
            : E.Input == "test" ? InputSet::Test
                                : InputSet::Train;
  S.CacheDir = E.CacheDir;
  S.Seed = E.Seed;
  return S;
}

inline std::unique_ptr<ResponseSurface>
makeSurface(const ParameterSpace &Space, const std::string &Workload,
            const BenchScale &Scale, InputSet Input) {
  ResponseSurface::Options Opts;
  Opts.Workload = Workload;
  Opts.Input = Input;
  Opts.CacheDir = Scale.CacheDir;
  if (Input == InputSet::Test)
    Opts.Smarts.SamplingInterval = 10;
  return std::make_unique<ResponseSurface>(Space, Opts);
}

/// The facade equivalent of standardBuild: an ExperimentSpec at this
/// campaign's scale, with one-shot designs of Scale.TrainN points. The
/// harness adds its jobs (and any platforms) and calls runExperiment.
inline ExperimentSpec standardSpec(const char *Name, const BenchScale &Scale) {
  ExperimentSpec Spec;
  Spec.Name = Name;
  Spec.InitialDesignSize = Scale.TrainN;
  Spec.MaxDesignSize = Scale.TrainN;
  Spec.TestSize = Scale.TestN;
  Spec.TargetMape = 0.0; // Fit exactly once at the requested size.
  Spec.CandidateCount = std::max<size_t>(1200, Scale.TrainN * 4);
  Spec.Seed = Scale.Seed;
  Spec.CacheDir = Scale.CacheDir;
  // SmartsInterval stays 0 (auto): jobs on the Test input get the same
  // dense sampling makeSurface applies.
  return Spec;
}

/// Standard model-building options for this campaign (one-shot design of
/// Scale.TrainN points; the Figure 1 augmentation loop is exercised by
/// fig5 and by unit tests).
inline ModelBuilderOptions standardBuild(ModelTechnique T,
                                         const BenchScale &Scale) {
  ModelBuilderOptions Opts;
  Opts.Technique = T;
  Opts.InitialDesignSize = Scale.TrainN;
  Opts.MaxDesignSize = Scale.TrainN;
  Opts.TestSize = Scale.TestN;
  Opts.TargetMape = 0.0; // Fit exactly once at the requested size.
  Opts.CandidateCount = std::max<size_t>(1200, Scale.TrainN * 4);
  Opts.Seed = Scale.Seed;
  return Opts;
}

/// Prints the standard harness banner.
inline void printBanner(const char *Experiment, const BenchScale &Scale) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", Experiment);
  std::printf("scale: train=%zu test=%zu input=%s seed=%llu (override via "
              "MSEM_TRAIN_N / MSEM_TEST_N / MSEM_INPUT / MSEM_SEED)\n",
              Scale.TrainN, Scale.TestN,
              Scale.Input == InputSet::Ref    ? "ref"
              : Scale.Input == InputSet::Test ? "test"
                                              : "train",
              static_cast<unsigned long long>(Scale.Seed));
  std::printf("==============================================================="
              "=\n");
}

} // namespace msem::bench

#endif // MSEM_BENCH_BENCHCOMMON_H
