//===- bench/BenchCommon.h - Shared experiment infrastructure -----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infrastructure shared by the experiment harnesses that regenerate the
/// paper's tables and figures. Scales default to a reduced-but-faithful
/// campaign and honour environment overrides:
///
///   MSEM_TRAIN_N   training design size        (default 200; paper: 400)
///   MSEM_TEST_N    test design size            (default 50;  paper: 100)
///   MSEM_INPUT     workload input set          (default "train")
///   MSEM_CACHE     response cache directory    (default "msem_cache")
///   MSEM_SEED      campaign master seed        (default 20070311)
///
/// All harnesses share the on-disk response cache, so re-runs and
/// follow-up experiments reuse earlier simulations.
///
/// Every harness also writes a standardized machine-readable result file,
/// results/BENCH_<name>.json (MSEM_RESULTS_DIR overrides the directory),
/// via BenchReport: schema "msem.bench.v1" carrying the build stamp, the
/// scale configuration, the harness's headline metrics and wall time, so
/// cross-build comparisons need no output scraping.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_BENCH_BENCHCOMMON_H
#define MSEM_BENCH_BENCHCOMMON_H

#include "campaign/Experiment.h"
#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/TablePrinter.h"
#include "telemetry/Introspection.h"

#include <chrono>
#include <cstdio>
#include <memory>

namespace msem::bench {

/// Campaign-wide knobs.
struct BenchScale {
  size_t TrainN;
  size_t TestN;
  InputSet Input;
  std::string CacheDir;
  uint64_t Seed;
};

inline BenchScale readScale() {
  const EnvConfig &E = env();
  BenchScale S;
  S.TrainN = static_cast<size_t>(E.TrainN);
  S.TestN = static_cast<size_t>(E.TestN);
  S.Input = E.Input == "ref"    ? InputSet::Ref
            : E.Input == "test" ? InputSet::Test
                                : InputSet::Train;
  S.CacheDir = E.CacheDir;
  S.Seed = E.Seed;
  return S;
}

inline std::unique_ptr<ResponseSurface>
makeSurface(const ParameterSpace &Space, const std::string &Workload,
            const BenchScale &Scale, InputSet Input) {
  ResponseSurface::Options Opts;
  Opts.Workload = Workload;
  Opts.Input = Input;
  Opts.CacheDir = Scale.CacheDir;
  if (Input == InputSet::Test)
    Opts.Smarts.SamplingInterval = 10;
  return std::make_unique<ResponseSurface>(Space, Opts);
}

/// The facade equivalent of standardBuild: an ExperimentSpec at this
/// campaign's scale, with one-shot designs of Scale.TrainN points. The
/// harness adds its jobs (and any platforms) and calls runExperiment.
inline ExperimentSpec standardSpec(const char *Name, const BenchScale &Scale) {
  ExperimentSpec Spec;
  Spec.Name = Name;
  Spec.InitialDesignSize = Scale.TrainN;
  Spec.MaxDesignSize = Scale.TrainN;
  Spec.TestSize = Scale.TestN;
  Spec.TargetMape = 0.0; // Fit exactly once at the requested size.
  Spec.CandidateCount = std::max<size_t>(1200, Scale.TrainN * 4);
  Spec.Seed = Scale.Seed;
  Spec.CacheDir = Scale.CacheDir;
  // SmartsInterval stays 0 (auto): jobs on the Test input get the same
  // dense sampling makeSurface applies.
  return Spec;
}

/// Standard model-building options for this campaign (one-shot design of
/// Scale.TrainN points; the Figure 1 augmentation loop is exercised by
/// fig5 and by unit tests).
inline ModelBuilderOptions standardBuild(ModelTechnique T,
                                         const BenchScale &Scale) {
  ModelBuilderOptions Opts;
  Opts.Technique = T;
  Opts.InitialDesignSize = Scale.TrainN;
  Opts.MaxDesignSize = Scale.TrainN;
  Opts.TestSize = Scale.TestN;
  Opts.TargetMape = 0.0; // Fit exactly once at the requested size.
  Opts.CandidateCount = std::max<size_t>(1200, Scale.TrainN * 4);
  Opts.Seed = Scale.Seed;
  return Opts;
}

/// Prints the standard harness banner.
inline void printBanner(const char *Experiment, const BenchScale &Scale) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", Experiment);
  std::printf("scale: train=%zu test=%zu input=%s seed=%llu (override via "
              "MSEM_TRAIN_N / MSEM_TEST_N / MSEM_INPUT / MSEM_SEED)\n",
              Scale.TrainN, Scale.TestN,
              Scale.Input == InputSet::Ref    ? "ref"
              : Scale.Input == InputSet::Test ? "test"
                                              : "train",
              static_cast<unsigned long long>(Scale.Seed));
  std::printf("==============================================================="
              "=\n");
}

/// Collects a harness's headline numbers and publishes them as
/// results/BENCH_<name>.json on destruction (schema "msem.bench.v1").
/// Construct one in main after readScale(); add metrics as they are
/// computed. Writing is best-effort: a read-only working directory warns
/// on stderr but never fails the bench.
class BenchReport {
public:
  BenchReport(const char *Name, const BenchScale &Scale)
      : Name(Name), Start(std::chrono::steady_clock::now()) {
    // Benches are long-running: join the live introspection plane (stats
    // server + sampling profiler; both no-ops unless their env knobs are
    // set).
    telemetry::ensureIntrospection();
    Doc = Json::object();
    Doc.set("schema", Json::string("msem.bench.v1"));
    Doc.set("name", Json::string(Name));
    Doc.set("build", Json::string(buildStamp()));
    Json Config = Json::object();
    Config.set("train_n", Json::number(static_cast<double>(Scale.TrainN)));
    Config.set("test_n", Json::number(static_cast<double>(Scale.TestN)));
    Config.set("input", Json::string(Scale.Input == InputSet::Ref    ? "ref"
                                     : Scale.Input == InputSet::Test ? "test"
                                                                     : "train"));
    Config.set("seed", Json::hexU64(Scale.Seed));
    Doc.set("config", std::move(Config));
    Metrics = Json::object();
  }

  /// Records one headline number ("mape.rbf", "speedup.p8"...).
  void metric(const std::string &Key, double Value) {
    Metrics.set(Key, Json::number(Value));
  }

  /// Records a free-form annotation.
  void note(const std::string &Key, const std::string &Value) {
    Metrics.set(Key, Json::string(Value));
  }

  ~BenchReport() {
    double WallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    Doc.set("wall_seconds", Json::number(WallSeconds));
    Doc.set("metrics", std::move(Metrics));
    const std::string Dir = env().ResultsDir;
    std::string Error;
    if (!createDirectories(Dir, &Error) ||
        !writeFileAtomic(Dir + "/BENCH_" + Name + ".json",
                         Doc.dumpPretty(), &Error))
      std::fprintf(stderr, "bench: cannot write result file: %s\n",
                   Error.c_str());
  }

  BenchReport(const BenchReport &) = delete;
  BenchReport &operator=(const BenchReport &) = delete;

private:
  std::string Name;
  std::chrono::steady_clock::time_point Start;
  Json Doc;
  Json Metrics;
};

} // namespace msem::bench

#endif // MSEM_BENCH_BENCHCOMMON_H
