//===- bench/BenchCommon.h - Shared experiment infrastructure -----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infrastructure shared by the experiment harnesses that regenerate the
/// paper's tables and figures. Scales default to a reduced-but-faithful
/// campaign and honour environment overrides:
///
///   MSEM_TRAIN_N   training design size        (default 200; paper: 400)
///   MSEM_TEST_N    test design size            (default 50;  paper: 100)
///   MSEM_INPUT     workload input set          (default "train")
///   MSEM_CACHE     response cache directory    (default "msem_cache")
///   MSEM_SEED      campaign master seed        (default 20070311)
///
/// All harnesses share the on-disk response cache, so re-runs and
/// follow-up experiments reuse earlier simulations.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_BENCH_BENCHCOMMON_H
#define MSEM_BENCH_BENCHCOMMON_H

#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <memory>

namespace msem::bench {

/// Campaign-wide knobs.
struct BenchScale {
  size_t TrainN;
  size_t TestN;
  InputSet Input;
  std::string CacheDir;
  uint64_t Seed;
};

inline BenchScale readScale() {
  BenchScale S;
  S.TrainN = static_cast<size_t>(getEnvInt("MSEM_TRAIN_N", 200));
  S.TestN = static_cast<size_t>(getEnvInt("MSEM_TEST_N", 50));
  std::string Input = getEnvString("MSEM_INPUT", "train");
  S.Input = Input == "ref"    ? InputSet::Ref
            : Input == "test" ? InputSet::Test
                              : InputSet::Train;
  S.CacheDir = getEnvString("MSEM_CACHE", "msem_cache");
  S.Seed = static_cast<uint64_t>(getEnvInt("MSEM_SEED", 20070311));
  return S;
}

inline std::unique_ptr<ResponseSurface>
makeSurface(const ParameterSpace &Space, const std::string &Workload,
            const BenchScale &Scale, InputSet Input) {
  ResponseSurface::Options Opts;
  Opts.Workload = Workload;
  Opts.Input = Input;
  Opts.CacheDir = Scale.CacheDir;
  if (Input == InputSet::Test)
    Opts.Smarts.SamplingInterval = 10;
  return std::make_unique<ResponseSurface>(Space, Opts);
}

/// Standard model-building options for this campaign (one-shot design of
/// Scale.TrainN points; the Figure 1 augmentation loop is exercised by
/// fig5 and by unit tests).
inline ModelBuilderOptions standardBuild(ModelTechnique T,
                                         const BenchScale &Scale) {
  ModelBuilderOptions Opts;
  Opts.Technique = T;
  Opts.InitialDesignSize = Scale.TrainN;
  Opts.MaxDesignSize = Scale.TrainN;
  Opts.TestSize = Scale.TestN;
  Opts.TargetMape = 0.0; // Fit exactly once at the requested size.
  Opts.CandidateCount = std::max<size_t>(1200, Scale.TrainN * 4);
  Opts.Seed = Scale.Seed;
  return Opts;
}

/// Prints the standard harness banner.
inline void printBanner(const char *Experiment, const BenchScale &Scale) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", Experiment);
  std::printf("scale: train=%zu test=%zu input=%s seed=%llu (override via "
              "MSEM_TRAIN_N / MSEM_TEST_N / MSEM_INPUT / MSEM_SEED)\n",
              Scale.TrainN, Scale.TestN,
              Scale.Input == InputSet::Ref    ? "ref"
              : Scale.Input == InputSet::Test ? "test"
                                              : "train",
              static_cast<unsigned long long>(Scale.Seed));
  std::printf("==============================================================="
              "=\n");
}

} // namespace msem::bench

#endif // MSEM_BENCH_BENCHCOMMON_H
