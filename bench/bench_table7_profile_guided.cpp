//===- bench/bench_table7_profile_guided.cpp - Table 7 reproduction -------------===//
//
// Reproduces Table 7: the profile-guided scenario. Models are built for
// the *train* input; the GA-prescribed settings are then used to compile
// the program for the *ref* input, and the actual speedup over -O2 on ref
// is reported for the three reference microarchitectures.
//
// Paper's shape: most programs still improve (art and mcf prominently),
// but a few are hurt by the train/ref input mismatch.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "search/GeneticSearch.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Table 7: profile-guided scenario (train-built models, ref "
              "runs)",
              Scale);
  BenchReport Report("table7_profile_guided", Scale);

  ParameterSpace Space = ParameterSpace::paperSpace();
  const MachineConfig Configs[3] = {MachineConfig::constrained(),
                                    MachineConfig::typical(),
                                    MachineConfig::aggressive()};

  TablePrinter T({"Program", "Constrained", "Typical", "Aggressive"});
  double Sum[3] = {0, 0, 0};
  size_t Rows = 0;

  for (const WorkloadSpec &Spec : allWorkloads()) {
    // Model built on the train input (the "representative" profile).
    auto TrainSurface =
        makeSurface(Space, Spec.Name, Scale, InputSet::Train);
    Rng R(Scale.Seed ^ 0x7E57);
    auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
    auto TestY = TrainSurface->measureAll(TestPoints);
    ModelBuilderOptions Opts = standardBuild(ModelTechnique::Rbf, Scale);
    Opts.ExternalTest = TestSet{TestPoints, TestY};
    ModelBuildResult Res = buildModel(*TrainSurface, Opts);

    // Settings evaluated on the ref input.
    auto RefSurface = makeSurface(Space, Spec.Name, Scale, InputSet::Ref);

    std::vector<std::string> Row{Spec.PaperName};
    for (int C = 0; C < 3; ++C) {
      DesignPoint O2Point =
          Space.fromConfigs(OptimizationConfig::O2(), Configs[C]);
      GaOptions Ga;
      Ga.Seed = Scale.Seed + C;
      GaResult Best =
          searchOptimalSettings(*Res.FittedModel, Space, O2Point, Ga);

      double RefO2 = RefSurface->measure(O2Point);
      double RefBest = RefSurface->measure(Best.BestPoint);
      double Spd = 100.0 * (RefO2 - RefBest) / RefO2;
      Row.push_back(formatString("%+.2f", Spd));
      Sum[C] += Spd;
    }
    T.addRow(Row);
    ++Rows;
    std::printf("  evaluated %s on ref\n", Spec.Name.c_str());
  }
  double N = static_cast<double>(Rows);
  T.addRow({"Average", formatString("%+.2f", Sum[0] / N),
            formatString("%+.2f", Sum[1] / N),
            formatString("%+.2f", Sum[2] / N)});
  T.print();
  std::printf("\nPaper reference averages: constrained +5.87%%, typical "
              "+4.28%%, aggressive +4.26%% -- with some programs regressing "
              "due to the train/ref mismatch.\n");
  return 0;
}
