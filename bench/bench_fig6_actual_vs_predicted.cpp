//===- bench/bench_fig6_actual_vs_predicted.cpp - Figure 6 reproduction ---------===//
//
// Reproduces Figure 6: actual vs RBF-predicted execution times at the test
// design points for the three programs the paper highlights (art, vortex,
// mcf). Rendered as an ASCII scatter plus summary statistics; the paper's
// claim to check is that the models "capture high level trends and no
// outliers are observed".
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <algorithm>

using namespace msem;
using namespace msem::bench;

namespace {

void asciiScatter(const std::vector<double> &Actual,
                  const std::vector<double> &Predicted) {
  const int W = 56, H = 18;
  double Lo = 1e300, Hi = -1e300;
  for (double V : Actual) {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  for (double V : Predicted) {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  if (Hi <= Lo)
    Hi = Lo + 1;
  std::vector<std::string> Grid(H, std::string(W, ' '));
  // The identity line.
  for (int I = 0; I < std::min(W, H * 3); ++I) {
    int X = I * W / std::min(W, H * 3);
    int Y = I * H / std::min(W, H * 3);
    if (X < W && Y < H)
      Grid[H - 1 - Y][X] = '.';
  }
  for (size_t I = 0; I < Actual.size(); ++I) {
    int X = static_cast<int>((Actual[I] - Lo) / (Hi - Lo) * (W - 1));
    int Y = static_cast<int>((Predicted[I] - Lo) / (Hi - Lo) * (H - 1));
    Grid[H - 1 - Y][X] = 'o';
  }
  for (const std::string &Line : Grid)
    std::printf("    |%s\n", Line.c_str());
  std::printf("    +%s\n", std::string(W, '-').c_str());
  std::printf("     actual -> (range %.3g .. %.3g cycles; 'o' points, "
              "'.' identity)\n",
              Lo, Hi);
}

} // namespace

int main() {
  BenchScale Scale = readScale();
  printBanner("Figure 6: actual vs predicted execution time (RBF)", Scale);
  BenchReport Report("fig6_actual_vs_predicted", Scale);

  ParameterSpace Space = ParameterSpace::paperSpace();
  for (const char *Name : {"art", "vortex", "mcf"}) {
    auto Surface = makeSurface(Space, Name, Scale, Scale.Input);
    Rng R(Scale.Seed ^ 0x7E57);
    auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
    auto TestY = Surface->measureAll(TestPoints);

    ModelBuilderOptions Opts = standardBuild(ModelTechnique::Rbf, Scale);
    Opts.ExternalTest = TestSet{TestPoints, TestY};
    ModelBuildResult Res = buildModel(*Surface, Opts);
    auto Pred = Res.FittedModel->predictAll(encodeMatrix(Space, TestPoints));

    std::printf("\n--- %s: %zu test points, MAPE %.2f%%, R2 %.3f ---\n",
                Name, TestPoints.size(), Res.TestQuality.Mape,
                Res.TestQuality.R2);
    asciiScatter(TestY, Pred);

    // Outlier check (the paper's qualitative claim).
    size_t Outliers = 0;
    for (size_t I = 0; I < TestY.size(); ++I)
      if (std::fabs(Pred[I] - TestY[I]) / TestY[I] > 0.30)
        ++Outliers;
    std::printf("    points with >30%% error: %zu / %zu\n", Outliers,
                TestY.size());
  }
  return 0;
}
