//===- bench/bench_campaign_scaling.cpp - Distributed campaign scaling ----------===//
//
// Measures distributed-campaign throughput -- measured design points per
// second -- against worker-process count on a measurement-bound one-shot
// campaign (no tuning search, memory-only response cache, so wall time is
// dominated by simulation). The same campaign runs under a 1/2/4-worker
// coordinator; the harness reports points/sec and speedup vs 1 worker,
// and verifies the distributed-determinism contract: outputs must be
// bitwise identical at every worker count, or the harness exits nonzero.
//
// Workers are real processes (the msem_campaign CLI's worker subcommand)
// pinned to one thread each, so the axis under test is process fan-out,
// not the thread pool (bench_parallel_scaling covers that). On a
// single-core host the wall times measure wire-protocol overhead, not
// scaling; the harness says so rather than pretending.
//
// Scale overrides: MSEM_TRAIN_N / MSEM_TEST_N / MSEM_INPUT / MSEM_SEED
// (BenchCommon).
//
//===-----------------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "campaign/Campaign.h"
#include "campaign/Coordinator.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

using namespace msem;
using namespace msem::bench;

namespace {

struct RunResult {
  double Seconds = 0;
  size_t Points = 0;
  std::vector<double> TrainY, TestY;
  double Mape = 0;
};

/// The measurement-bound campaign: one job, one-shot design, no GA
/// tuning, memory-only response cache so every worker count simulates
/// every point from scratch.
ExperimentSpec scalingSpec(const BenchScale &Scale) {
  ExperimentSpec Spec = standardSpec("campaign_scaling", Scale);
  Spec.Jobs = {{"art", Scale.Input, ResponseMetric::Cycles,
                ModelTechnique::Rbf, 0}};
  Spec.CacheDir.clear();
  return Spec;
}

std::string shardDirFor(int Workers) {
  return (std::filesystem::temp_directory_path() /
          formatString("msem_bench_scaling_w%d_%d", Workers,
                       static_cast<int>(getpid())))
      .string();
}

RunResult runDistributed(int Workers, const BenchScale &Scale) {
  CoordinatorOptions Opts;
  Opts.Workers = Workers;
  Opts.ShardDir = shardDirFor(Workers);
  Opts.WorkerCommand = {MSEM_CAMPAIGN_BIN, "worker"};
  std::filesystem::remove_all(Opts.ShardDir);
  Coordinator C(Opts);

  auto Start = std::chrono::steady_clock::now();
  ExperimentResult R = C.run(scalingSpec(Scale));
  auto End = std::chrono::steady_clock::now();
  if (!R.ok()) {
    std::fprintf(stderr, "campaign failed at %d worker(s): %s\n", Workers,
                 R.Error.c_str());
    std::exit(1);
  }
  std::filesystem::remove_all(Opts.ShardDir);

  RunResult Out;
  Out.Seconds = std::chrono::duration<double>(End - Start).count();
  Out.Points = R.SimulationsUsed;
  Out.TrainY = R.Jobs[0].Build.TrainY;
  Out.TestY = R.Jobs[0].Build.TestY;
  Out.Mape = R.Jobs[0].Build.TestQuality.Mape;
  return Out;
}

bool identical(const RunResult &A, const RunResult &B) {
  return A.Points == B.Points && A.TrainY == B.TrainY &&
         A.TestY == B.TestY && A.Mape == B.Mape;
}

} // namespace

int main() {
  BenchScale Scale = readScale();
  // One campaign per worker count: keep the default size moderate.
  if (!env().TrainNSet) {
    Scale.TrainN = 24;
    Scale.TestN = 8;
  }
  printBanner("Performance: worker-process scaling of distributed "
              "campaign measurement",
              Scale);
  BenchReport Report("campaign_scaling", Scale);

  // Workers inherit the environment: pin them (and the coordinator's own
  // reduction) to one thread so process fan-out is the only variable.
  setenv("MSEM_THREADS", "1", 1);
  setGlobalThreadCount(1);
  std::printf("worker binary: %s (1 thread per worker)\n\n",
              MSEM_CAMPAIGN_BIN);

  // Untimed warm-up: populate the shared on-disk compile/trace caches so
  // the first timed run is not charged for one-time costs the later runs
  // skip.
  runDistributed(1, Scale);

  TablePrinter T(
      {"Workers", "wall s", "points/s", "speedup vs 1", "identical output"});
  std::vector<RunResult> Results;
  for (int Workers : {1, 2, 4}) {
    RunResult R = runDistributed(Workers, Scale);
    bool Same = Results.empty() || identical(Results.front(), R);
    double PerSec = R.Seconds > 0 ? static_cast<double>(R.Points) / R.Seconds
                                  : 0.0;
    double Speedup =
        Results.empty() ? 1.0 : Results.front().Seconds / R.Seconds;
    T.addRow({formatString("%d", Workers), formatString("%.2f", R.Seconds),
              formatString("%.1f", PerSec), formatString("%.2fx", Speedup),
              Same ? "yes" : "NO"});
    Report.metric(formatString("points_per_s.w%d", Workers), PerSec);
    Report.metric(formatString("speedup.w%d", Workers), Speedup);
    Results.push_back(std::move(R));
  }
  setGlobalThreadCount(0);
  T.print();

  bool AllSame = true;
  for (const RunResult &R : Results)
    AllSame = AllSame && identical(Results.front(), R);
  Report.metric("deterministic", AllSame ? 1 : 0);
  Report.metric("mape", Results.front().Mape);
  if (!AllSame) {
    std::printf("\nFAIL: outputs diverged across worker counts -- the "
                "distributed-determinism contract is broken.\n");
    return 1;
  }
  std::printf("\nOutputs bitwise identical across all worker counts "
              "(%zu points measured, MAPE %.2f%% in every run).\n",
              Results.front().Points, Results.front().Mape);
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("Note: this host exposes a single hardware thread; wall "
                "times above measure wire-protocol overhead, not "
                "scaling.\n");
  return 0;
}
