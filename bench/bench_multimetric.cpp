//===- bench/bench_multimetric.cpp - Other response metrics (Section 2.2) -------===//
//
// The paper notes that the methodology is response-agnostic: "models can
// also be built for other metrics such as power consumption or code
// size". This harness builds RBF models for all three responses on one
// program and compares (a) predictive accuracy and (b) which parameters
// each model considers significant:
//
//   - execution time: microarchitecture-dominated (Table 4's finding);
//   - energy: mixed (leakage couples cycles with configured capacities);
//   - code size: compiler-only -- every microarchitectural coefficient
//     must vanish, a built-in sanity check of the effect estimator.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/TransformedModel.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Section 2.2 extension: time / energy / code-size models",
              Scale);
  BenchReport Report("multimetric", Scale);
  const char *Workload = "gzip";

  ParameterSpace Space = ParameterSpace::paperSpace();

  struct MetricCase {
    ResponseMetric Metric;
    const char *Unit;
  };
  const MetricCase Cases[] = {
      {ResponseMetric::Cycles, "cycles"},
      {ResponseMetric::EnergyNanojoules, "nJ"},
      {ResponseMetric::CodeBytes, "bytes"},
  };

  // One campaign, three jobs -- the same workload modeled against each
  // response. Energy simulations are fully detailed, so that job's design
  // is capped smaller.
  ExperimentSpec Spec = standardSpec("multimetric", Scale);
  for (const MetricCase &MC : Cases) {
    size_t Cap = MC.Metric == ResponseMetric::EnergyNanojoules
                     ? std::min<size_t>(Scale.TrainN, 120)
                     : 0;
    Spec.Jobs.push_back(
        {Workload, Scale.Input, MC.Metric, ModelTechnique::Rbf, Cap});
  }
  ExperimentResult Result = runExperiment(Spec);
  if (!Result.ok()) {
    std::printf("campaign %s: %s\n", campaignStatusName(Result.Status),
                Result.Error.c_str());
    return 1;
  }

  for (size_t CI = 0; CI < 3; ++CI) {
    const MetricCase &MC = Cases[CI];
    ModelBuildResult &Res = Result.Jobs[CI].Build;

    // Energy and code size vary multiplicatively (leakage x capacity,
    // unroll-factor code growth): refit through the log-response
    // decorator on the same measured data and keep the better model.
    std::unique_ptr<Model> Chosen = std::move(Res.FittedModel);
    ModelQuality Quality = Res.TestQuality;
    if (MC.Metric != ResponseMetric::Cycles) {
      Matrix TrainX = encodeMatrix(Space, Res.TrainPoints);
      auto LogModel = std::make_unique<LogResponseModel>(
          makeModel(ModelTechnique::Rbf));
      LogModel->train(TrainX, Res.TrainY);
      ModelQuality LogQ = evaluateModel(
          *LogModel, encodeMatrix(Space, Res.TestPoints), Res.TestY);
      std::printf("  (%s: raw-response MAPE %.2f%% vs log-response "
                  "%.2f%%)\n",
                  responseMetricName(MC.Metric), Quality.Mape, LogQ.Mape);
      if (LogQ.Mape < Quality.Mape) {
        Chosen = std::move(LogModel);
        Quality = LogQ;
      }
    }

    std::printf("\n--- %s response (%s): test MAPE %.2f%%, R2 %.3f ---\n",
                responseMetricName(MC.Metric), MC.Unit, Quality.Mape,
                Quality.R2);

    auto Effects = rankEffects(*Chosen, Space, 250, 10, Scale.Seed);
    TablePrinter T({"Top effects", formatString("coeff (%s)", MC.Unit),
                    "class"});
    double UarchMass = 0, CompilerMass = 0;
    size_t Shown = 0;
    for (const EffectEstimate &E : Effects) {
      bool TouchesMicro = false;
      for (size_t P = Space.numCompilerParams(); P < Space.size(); ++P)
        if (E.Label.find(Space.param(P).Name) != std::string::npos)
          TouchesMicro = true;
      (TouchesMicro ? UarchMass : CompilerMass) += std::fabs(E.Coefficient);
      if (Shown++ < 8)
        T.addRow({E.Label, formatString("%+.0f", E.Coefficient),
                  TouchesMicro ? "uarch" : "compiler"});
    }
    T.print();
    std::printf("|effect| mass: uarch %.0f vs compiler %.0f\n", UarchMass,
                CompilerMass);
    if (MC.Metric == ResponseMetric::CodeBytes)
      std::printf("(code size must be compiler-only: uarch mass ~0 is the "
                  "estimator's sanity check)\n");
  }
  return 0;
}
