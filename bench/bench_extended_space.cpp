//===- bench/bench_extended_space.cpp - Beyond Table 1 (Section 2.2) ------------===//
//
// The paper stresses its parameter selection "is by no means exhaustive"
// and sketches trace-scheduling heuristics as further candidates. This
// harness runs the full methodology on the 29-parameter *extended* space
// (Table 1 + if-conversion and tail-duplication knobs + Table 2) for a
// branchy benchmark:
//
//   - model accuracy stays in the same band as the 25-parameter space;
//   - the new knobs earn non-trivial coefficients, including the
//     if-convert x branch-predictor-size interaction (if-conversion
//     should matter more when the predictor is small);
//   - the GA search now tunes 18 compiler parameters per platform.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "search/GeneticSearch.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Extended 29-parameter space (Section 2.2 knobs)", Scale);
  BenchReport Report("extended_space", Scale);
  const char *Workload = "bzip2"; // Branch-heavy: if-conversion's arena.

  ParameterSpace Space = ParameterSpace::extendedSpace();
  ResponseSurface::Options SurfOpts;
  SurfOpts.Workload = Workload;
  SurfOpts.Input = Scale.Input;
  SurfOpts.CacheDir = Scale.CacheDir;
  ResponseSurface Surface(Space, SurfOpts);

  Rng R(Scale.Seed ^ 0x7E57);
  auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
  auto TestY = Surface.measureAll(TestPoints);

  ModelBuilderOptions Opts = standardBuild(ModelTechnique::Rbf, Scale);
  Opts.ExternalTest = TestSet{TestPoints, TestY};
  ModelBuildResult Res = buildModel(Surface, Opts);
  std::printf("RBF on 29 parameters: test MAPE %.2f%% (R2 %.3f) after %zu "
              "simulations\n\n",
              Res.TestQuality.Mape, Res.TestQuality.R2,
              Res.SimulationsUsed);

  // Effects, highlighting the new knobs.
  auto Effects = rankEffects(*Res.FittedModel, Space, 300, 20, Scale.Seed);
  TablePrinter T({"Rank", "Parameter / interaction", "Coefficient"});
  size_t Rank = 0;
  for (const EffectEstimate &E : Effects) {
    ++Rank;
    bool IsNew = E.Label.find("fif-convert") != std::string::npos ||
                 E.Label.find("ftracer") != std::string::npos ||
                 E.Label.find("ifcvt") != std::string::npos ||
                 E.Label.find("tail-dup") != std::string::npos;
    if (Rank <= 12 || IsNew)
      T.addRow({formatString("%zu%s", Rank, IsNew ? " *new*" : ""),
                E.Label, formatString("%+.0f", E.Coefficient)});
    if (Rank > 40)
      break;
  }
  T.print();

  // The targeted interaction: if-conversion x predictor size, measured
  // directly from the model.
  Rng ER(Scale.Seed + 9);
  double Inter = interactionEffect(
      *Res.FittedModel, Space, Space.indexOf("fif-convert"),
      Space.indexOf("bpred-size"), 400, ER);
  double Main = mainEffect(*Res.FittedModel, Space,
                           Space.indexOf("fif-convert"), 400, ER);
  std::printf("\nfif-convert main effect: %+.0f cycles; fif-convert x "
              "bpred-size interaction: %+.0f cycles\n",
              Main, Inter);
  std::printf("(a positive interaction means if-conversion helps *less* "
              "as the predictor grows -- branches become cheap anyway)\n");

  // GA over the 18 compiler parameters for the typical platform.
  DesignPoint Frozen = Space.fromConfigs(OptimizationConfig::O2(),
                                         MachineConfig::typical());
  GaOptions Ga;
  Ga.Seed = Scale.Seed;
  GaResult Best = searchOptimalSettings(*Res.FittedModel, Space, Frozen, Ga);
  double CyclesO2 = Surface.measure(Frozen);
  double CyclesBest = Surface.measure(Best.BestPoint);
  std::printf("\nGA over 18 compiler knobs (typical platform): %+.1f%% "
              "actual speedup over -O2\n",
              100.0 * (CyclesO2 - CyclesBest) / CyclesO2);
  std::printf("prescribed: %s\n",
              Space.toOptimizationConfig(Best.BestPoint).toString().c_str());
  return 0;
}
