//===- bench/bench_serve_load.cpp - msem_serve load generator ---------------===//
//
// Drives the networked serving stack end to end -- real sockets, real
// HTTP/1.1 framing, the same epoll transport and PredictionService that
// tools/msem_serve runs -- and reports sustained throughput and latency
// quantiles:
//
//   closed loop   C client connections each firing requests back-to-back
//                 over keep-alive; measures the server at saturation
//                 (qps.closed, rows_per_sec.closed, p50/p95/p99_us.closed)
//
//   open loop     requests arrive on a fixed global schedule at a rate
//                 below saturation (a fraction of the measured closed-loop
//                 rate); latency is measured from the *scheduled* arrival,
//                 so queueing delay counts (qps.open, p99_us.open)
//
// The model is a synthetic-trained RBF published into a throwaway
// registry: load numbers depend on the served model's evaluated form and
// the transport, not on what the model learned, so no simulator runs.
// Every response is checked for HTTP 200 and the expected CSV header; any
// failure exits nonzero.
//
//   bench_serve_load [--smoke] [--inject-errors N]
//       --smoke: tiny fixed scale, no BENCH report -- the lint-gate mode.
//       --inject-errors N: additionally post N malformed requests and
//       cross-check the SLO tracker counted exactly N 4xx outcomes.
//
// The serving RED/SLO engine (serving/SloTracker) is wired in exactly as
// msem_serve wires it, and the closed-loop phase doubles as its overhead
// gate: record() self-measures, and (self time per sample) / (mean
// closed-loop latency) must stay under 2% or the bench exits nonzero.
//
// Scale: C = MSEM_THREADS clients (default pool size), requests sized by
// MSEM_TEST_N. The BENCH_serve_load.json metrics ride the usual
// regression gate (timing-class thresholds).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "model/RbfNetwork.h"
#include "registry/ModelRegistry.h"
#include "serving/HttpServer.h"
#include "serving/PredictionService.h"
#include "serving/SloTracker.h"
#include "support/Error.h"
#include "support/StatsServer.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace msem;
using namespace msem::bench;

namespace {

using SteadyClock = std::chrono::steady_clock;

//===----------------------------------------------------------------------===//
// A minimal blocking HTTP/1.1 client (keep-alive, Content-Length framed)
//===----------------------------------------------------------------------===//

class HttpClient {
public:
  bool connectTo(int Port, std::string &Error) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port));
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      Error = "connect: " + std::string(std::strerror(errno));
      ::close(Fd);
      Fd = -1;
      return false;
    }
    return true;
  }

  ~HttpClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// One POST round trip. Returns false on any transport or HTTP error.
  bool post(const std::string &Path, const std::string &Body, int &Status,
            std::string &RespBody, std::string &Error) {
    std::string Req = "POST " + Path + " HTTP/1.1\r\n" +
                      "Host: 127.0.0.1\r\n" +
                      "Content-Type: application/json\r\n" +
                      "Content-Length: " + std::to_string(Body.size()) +
                      "\r\n\r\n" + Body;
    if (!sendAll(Req, Error))
      return false;
    return readResponse(Status, RespBody, Error);
  }

private:
  bool sendAll(const std::string &Data, std::string &Error) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N =
          ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Error = "send: " + std::string(std::strerror(errno));
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  bool readResponse(int &Status, std::string &Body, std::string &Error) {
    // Headers first.
    size_t HeaderEnd;
    while ((HeaderEnd = Buf.find("\r\n\r\n")) == std::string::npos)
      if (!fill(Error))
        return false;
    std::string Headers = Buf.substr(0, HeaderEnd + 4);
    if (Headers.rfind("HTTP/1.", 0) != 0 || Headers.size() < 12) {
      Error = "malformed status line";
      return false;
    }
    Status = std::atoi(Headers.c_str() + 9);

    size_t ContentLength = 0;
    size_t Cl = Headers.find("Content-Length:");
    if (Cl == std::string::npos) {
      Error = "response without Content-Length";
      return false;
    }
    ContentLength = static_cast<size_t>(
        std::strtoull(Headers.c_str() + Cl + 15, nullptr, 10));

    while (Buf.size() < HeaderEnd + 4 + ContentLength)
      if (!fill(Error))
        return false;
    Body = Buf.substr(HeaderEnd + 4, ContentLength);
    Buf.erase(0, HeaderEnd + 4 + ContentLength);
    return true;
  }

  bool fill(std::string &Error) {
    char Tmp[16 * 1024];
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N > 0) {
      Buf.append(Tmp, static_cast<size_t>(N));
      return true;
    }
    if (N < 0 && errno == EINTR)
      return true;
    Error = N == 0 ? "peer closed" : "recv: " + std::string(std::strerror(errno));
    return false;
  }

  int Fd = -1;
  std::string Buf; ///< Bytes read past the previous response.
};

//===----------------------------------------------------------------------===//
// Load phases
//===----------------------------------------------------------------------===//

struct LoadResult {
  size_t Requests = 0;
  size_t Failures = 0;
  double WallSeconds = 0;
  std::vector<double> LatenciesUs; ///< One per successful request.

  double quantileUs(double Q) const {
    if (LatenciesUs.empty())
      return 0;
    std::vector<double> L = LatenciesUs;
    std::sort(L.begin(), L.end());
    size_t I = static_cast<size_t>(Q * (L.size() - 1));
    return L[I];
  }
};

/// Closed loop: \p Clients connections each run \p PerClient requests
/// back-to-back.
LoadResult runClosedLoop(int Port, const std::string &Body, size_t Clients,
                         size_t PerClient) {
  std::vector<std::vector<double>> Lats(Clients);
  std::atomic<size_t> Failures{0};
  auto Start = SteadyClock::now();
  std::vector<std::thread> Workers;
  for (size_t C = 0; C < Clients; ++C)
    Workers.emplace_back([&, C] {
      HttpClient Client;
      std::string Error;
      if (!Client.connectTo(Port, Error)) {
        Failures.fetch_add(PerClient);
        return;
      }
      for (size_t I = 0; I < PerClient; ++I) {
        auto T0 = SteadyClock::now();
        int Status = 0;
        std::string Resp;
        if (!Client.post("/v1/predict", Body, Status, Resp, Error) ||
            Status != 200 || Resp.rfind("predicted_", 0) != 0) {
          Failures.fetch_add(1);
          continue;
        }
        Lats[C].push_back(
            std::chrono::duration<double, std::micro>(SteadyClock::now() -
                                                      T0)
                .count());
      }
    });
  for (std::thread &W : Workers)
    W.join();
  LoadResult R;
  R.WallSeconds = std::chrono::duration<double>(SteadyClock::now() - Start)
                      .count();
  for (const std::vector<double> &L : Lats)
    R.LatenciesUs.insert(R.LatenciesUs.end(), L.begin(), L.end());
  R.Requests = R.LatenciesUs.size();
  R.Failures = Failures.load();
  return R;
}

/// Open loop: \p Total requests on a fixed global schedule at \p RatePerSec,
/// served by \p Clients connections pulling the next scheduled slot.
/// Latency counts from the scheduled arrival (queueing included).
LoadResult runOpenLoop(int Port, const std::string &Body, size_t Clients,
                       size_t Total, double RatePerSec) {
  std::vector<std::vector<double>> Lats(Clients);
  std::atomic<size_t> Failures{0};
  std::atomic<size_t> Next{0};
  auto Start = SteadyClock::now();
  std::vector<std::thread> Workers;
  for (size_t C = 0; C < Clients; ++C)
    Workers.emplace_back([&, C] {
      HttpClient Client;
      std::string Error;
      if (!Client.connectTo(Port, Error))
        return; // Remaining slots report as failures below.
      while (true) {
        size_t Slot = Next.fetch_add(1);
        if (Slot >= Total)
          return;
        auto Arrival =
            Start + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(Slot / RatePerSec));
        std::this_thread::sleep_until(Arrival);
        int Status = 0;
        std::string Resp;
        if (!Client.post("/v1/predict", Body, Status, Resp, Error) ||
            Status != 200) {
          Failures.fetch_add(1);
          continue;
        }
        Lats[C].push_back(
            std::chrono::duration<double, std::micro>(SteadyClock::now() -
                                                      Arrival)
                .count());
      }
    });
  for (std::thread &W : Workers)
    W.join();
  LoadResult R;
  R.WallSeconds = std::chrono::duration<double>(SteadyClock::now() - Start)
                      .count();
  for (const std::vector<double> &L : Lats)
    R.LatenciesUs.insert(R.LatenciesUs.end(), L.begin(), L.end());
  R.Requests = R.LatenciesUs.size();
  R.Failures = Total - R.Requests;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  size_t InjectErrors = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--smoke")
      Smoke = true;
    else if (std::string(Argv[I]) == "--inject-errors" && I + 1 < Argc)
      InjectErrors =
          static_cast<size_t>(std::strtoull(Argv[++I], nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: bench_serve_load [--smoke] [--inject-errors N]\n");
      return 2;
    }
  }

  BenchScale Scale = readScale();
  size_t Clients = std::max<size_t>(2, defaultThreadCount());
  size_t RowsPerRequest = 16;
  size_t PerClient = Smoke ? 10 : std::max<size_t>(50, Scale.TestN * 20);
  if (Smoke)
    Clients = 2;

  printBanner("Performance: networked serving under load (msem_serve stack)",
              Scale);
  std::unique_ptr<BenchReport> Report;
  if (!Smoke)
    Report = std::make_unique<BenchReport>("serve_load", Scale);
  std::printf("closed loop: %zu clients x %zu requests x %zu rows\n\n",
              Clients, PerClient, RowsPerRequest);

  // --- Publish a synthetic-trained RBF into a throwaway registry ---------
  ParameterSpace Space = ParameterSpace::paperSpace();
  Rng R(Scale.Seed);
  std::vector<DesignPoint> TrainPoints =
      generateLatinHypercube(Space, std::max<size_t>(Scale.TrainN, 20), R);
  Matrix TrainX = encodeMatrix(Space, TrainPoints);
  std::vector<double> TrainY;
  for (size_t I = 0; I < TrainX.rows(); ++I) {
    const std::vector<double> &Row = TrainX.row(I);
    TrainY.push_back(4e6 + 9.1e5 * Row[0] - 3.3e5 * Row[4] +
                     2.2e5 * Row[1] * Row[16] + R.normal(0, 5e4));
  }
  RbfNetwork M;
  M.train(TrainX, TrainY);

  std::string RegistryDir =
      formatString("msem_bench_serve_reg_%d", static_cast<int>(getpid()));
  std::filesystem::remove_all(RegistryDir);
  {
    ModelRegistry Registry({RegistryDir, 8});
    ModelArtifactInfo Info;
    Info.Key.Workload = "art";
    Info.Key.Technique = "rbf";
    Info.Space = Space;
    Info.Campaign = "bench-serve-load";
    Info.Seed = Scale.Seed;
    Info.TrainSize = TrainPoints.size();
    std::string Error;
    if (!Registry.publish(Info, M, &Error))
      fatalError("publish failed: " + Error);
  }

  // --- The served stack: PredictionService + epoll transport -------------
  // The SLO tracker rides along exactly as in msem_serve, so the closed
  // loop measures the instrumented path and gates its overhead.
  serving::SloTracker Slo(serving::SloTracker::Options{});

  serving::PredictionService::Options SvcOpts;
  SvcOpts.RegistryDir = RegistryDir;
  SvcOpts.Slo = &Slo;
  serving::PredictionService Service(std::move(SvcOpts));
  Service.registerRoutes(StatsServer::router());

  serving::HttpServer::Options SrvOpts;
  SrvOpts.Port = 0;
  SrvOpts.Threads = static_cast<int>(std::max<size_t>(2, Clients / 2));
  SrvOpts.Slo = &Slo;
  serving::HttpServer Server(StatsServer::router(), SrvOpts);
  std::string Error;
  if (!Server.start(&Error))
    fatalError("server start: " + Error);

  // --- The request body (one fixed batch; every client posts the same) ---
  serving::PredictRequest Req;
  Req.Key.Workload = "art";
  Req.Key.Technique = "rbf";
  Req.Format = serving::PredictFormat::Csv;
  Rng ReqR(Scale.Seed ^ 0xBA7C4);
  for (size_t I = 0; I < RowsPerRequest; ++I)
    Req.Rows.push_back(Space.randomPoint(ReqR));
  std::string Body = serving::serializePredictRequest(Req).dump();

  // --- Closed loop (saturation) ------------------------------------------
  LoadResult Closed = runClosedLoop(Server.port(), Body, Clients, PerClient);
  if (Closed.Failures)
    fatalError(formatString("closed loop: %zu failed requests",
                            Closed.Failures));
  double ClosedQps = Closed.Requests / Closed.WallSeconds;

  // --- SLO engine overhead gate (closed-loop path) -----------------------
  // record() self-measures; amortized per-sample cost against the mean
  // closed-loop latency is the engine's relative overhead.
  double SloOverheadPct = 0;
  {
    uint64_t SloSamples = Slo.sampleCount();
    double MeanClosedUs = 0;
    for (double L : Closed.LatenciesUs)
      MeanClosedUs += L;
    MeanClosedUs /= std::max<size_t>(1, Closed.LatenciesUs.size());
    double SelfUsPerSample =
        (static_cast<double>(Slo.selfNs()) / 1000.0) /
        std::max<uint64_t>(1, SloSamples);
    if (MeanClosedUs > 0)
      SloOverheadPct = 100.0 * SelfUsPerSample / MeanClosedUs;
    if (SloSamples < Closed.Requests)
      fatalError(formatString("slo tracker saw %llu samples, closed loop "
                              "served %zu",
                              static_cast<unsigned long long>(SloSamples),
                              Closed.Requests));
    if (SloOverheadPct >= 2.0)
      fatalError(formatString("slo tracker overhead %.3f%% exceeds the 2%% "
                              "closed-loop budget",
                              SloOverheadPct));
  }

  // --- Injected errors: the tracker must count them exactly --------------
  if (InjectErrors) {
    uint64_t Before4xx = 0;
    for (const serving::SloTracker::KeyReport &K : Slo.report())
      Before4xx += K.Errors4xx;
    HttpClient Bad;
    if (!Bad.connectTo(Server.port(), Error))
      fatalError("inject-errors connect: " + Error);
    for (size_t I = 0; I < InjectErrors; ++I) {
      int Status = 0;
      std::string Resp;
      if (!Bad.post("/v1/predict", "{not json", Status, Resp, Error))
        fatalError("inject-errors post: " + Error);
      if (Status != 400)
        fatalError(formatString("inject-errors: expected 400, got %d",
                                Status));
    }
    uint64_t After4xx = 0;
    for (const serving::SloTracker::KeyReport &K : Slo.report())
      After4xx += K.Errors4xx;
    if (After4xx - Before4xx != InjectErrors)
      fatalError(formatString("inject-errors: tracker counted %llu 4xx, "
                              "injected %zu",
                              static_cast<unsigned long long>(After4xx -
                                                              Before4xx),
                              InjectErrors));
    std::printf("inject-errors: %zu malformed requests -> %zu 4xx counted "
                "by the SLO tracker\n\n",
                InjectErrors, InjectErrors);
  }

  // --- Open loop (below saturation; queueing-inclusive latency) ----------
  double OpenRate = std::max(1.0, 0.6 * ClosedQps);
  size_t OpenTotal = Smoke ? Clients * 10 : Closed.Requests;
  LoadResult Open =
      runOpenLoop(Server.port(), Body, Clients, OpenTotal, OpenRate);
  if (Open.Failures)
    fatalError(formatString("open loop: %zu failed requests",
                            Open.Failures));
  double OpenQps = Open.Requests / Open.WallSeconds;

  Server.stop();
  std::filesystem::remove_all(RegistryDir);

  TablePrinter Table(
      {"phase", "qps", "rows/s", "p50 us", "p95 us", "p99 us"});
  Table.addRowCells("closed", formatString("%.0f", ClosedQps),
                    formatString("%.0f", ClosedQps * RowsPerRequest),
                    formatString("%.0f", Closed.quantileUs(0.50)),
                    formatString("%.0f", Closed.quantileUs(0.95)),
                    formatString("%.0f", Closed.quantileUs(0.99)));
  Table.addRowCells("open", formatString("%.0f", OpenQps),
                    formatString("%.0f", OpenQps * RowsPerRequest),
                    formatString("%.0f", Open.quantileUs(0.50)),
                    formatString("%.0f", Open.quantileUs(0.95)),
                    formatString("%.0f", Open.quantileUs(0.99)));
  Table.print();
  std::printf("\nopen loop paced at %.0f req/s (0.6 x closed-loop "
              "saturation); latency counts from scheduled arrival.\n",
              OpenRate);
  std::printf("slo tracker overhead: %.3f%% of mean closed-loop latency "
              "(budget 2%%)\n",
              SloOverheadPct);

  if (Report) {
    Report->metric("qps.closed", ClosedQps);
    Report->metric("rows_per_sec.closed", ClosedQps * RowsPerRequest);
    Report->metric("p50_us.closed", Closed.quantileUs(0.50));
    Report->metric("p95_us.closed", Closed.quantileUs(0.95));
    Report->metric("p99_us.closed", Closed.quantileUs(0.99));
    Report->metric("qps.open", OpenQps);
    Report->metric("p99_us.open", Open.quantileUs(0.99));
    Report->metric("slo_overhead_pct", SloOverheadPct);
  }
  if (Smoke)
    std::printf("smoke: OK -- %zu closed + %zu open requests served over "
                "HTTP, 0 failures\n",
                Closed.Requests, Open.Requests);
  return 0;
}
