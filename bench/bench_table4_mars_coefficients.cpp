//===- bench/bench_table4_mars_coefficients.cpp - Table 4 reproduction ----------===//
//
// Reproduces Table 4: the significant parameters/interactions and their
// coefficients as read off the MARS models, per program. Coefficients are
// recovered with the model-agnostic estimator ("one-half the change in
// execution time caused by moving the variable from low to high"), in the
// same units as the response.
//
// Paper's shape to check: microarchitectural parameters/interactions
// dominate; compiler optimizations play a smaller role; effects are
// program-specific (e.g. mcf dominated by ul2-size and memory-latency).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Table 4: key parameters/interactions from MARS models",
              Scale);
  BenchReport Report("table4_mars_coefficients", Scale);

  ParameterSpace Space = ParameterSpace::paperSpace();
  size_t TopN = static_cast<size_t>(env().Table4Top);

  for (const WorkloadSpec &Spec : allWorkloads()) {
    auto Surface = makeSurface(Space, Spec.Name, Scale, Scale.Input);
    Rng R(Scale.Seed ^ 0x7E57);
    auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
    auto TestY = Surface->measureAll(TestPoints);

    ModelBuilderOptions Opts = standardBuild(ModelTechnique::Mars, Scale);
    Opts.ExternalTest = TestSet{TestPoints, TestY};
    ModelBuildResult Res = buildModel(*Surface, Opts);

    auto Effects = rankEffects(*Res.FittedModel, Space, /*Samples=*/300,
                               /*TopInteractions=*/20, Scale.Seed);

    std::printf("\n--- %s (MARS, test MAPE %.2f%%) ---\n",
                Spec.PaperName.c_str(), Res.TestQuality.Mape);
    TablePrinter T({"Parameter / interaction", "Coefficient (cycles)",
                    "Kind"});
    size_t Shown = 0;
    double MicroMagnitude = 0, CompilerMagnitude = 0;
    for (const EffectEstimate &E : Effects) {
      bool IsInteraction = E.Label.find('*') != std::string::npos;
      // Classify: compiler-only effect vs micro-architecture-involved.
      bool TouchesMicro = false;
      for (size_t P = Space.numCompilerParams(); P < Space.size(); ++P)
        if (E.Label.find(Space.param(P).Name) != std::string::npos)
          TouchesMicro = true;
      (TouchesMicro ? MicroMagnitude : CompilerMagnitude) +=
          std::fabs(E.Coefficient);
      if (Shown < TopN) {
        T.addRow({E.Label, formatString("%+.0f", E.Coefficient),
                  std::string(TouchesMicro ? "uarch" : "compiler") +
                      (IsInteraction ? " 2FI" : "")});
        ++Shown;
      }
    }
    T.print();
    std::printf("  |effect| mass: microarchitecture %.0f vs compiler %.0f "
                "(paper: microarchitecture dominates)\n",
                MicroMagnitude, CompilerMagnitude);
  }
  return 0;
}
