//===- bench/bench_table6_optimal_settings.cpp - Tables 5 & 6 reproduction ------===//
//
// Reproduces Table 5 (the three reference microarchitectures) and Table 6:
// the optimization flag and heuristic settings prescribed by model-based
// GA search for each program on the constrained / typical / aggressive
// configurations, next to the default -O3 row.
//
// Paper's shape: optimal settings are highly program- and
// microarchitecture-dependent, and differ from -O3.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "search/GeneticSearch.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Tables 5 & 6: model-prescribed settings per platform",
              Scale);
  BenchReport Report("table6_optimal_settings", Scale);

  ParameterSpace Space = ParameterSpace::paperSpace();
  const MachineConfig Configs[3] = {MachineConfig::constrained(),
                                    MachineConfig::typical(),
                                    MachineConfig::aggressive()};

  // ---- Table 5 ------------------------------------------------------------
  {
    TablePrinter T({"Parameter", "Constrained", "Typical", "Aggressive"});
    auto Row = [&](const char *Name, auto Get) {
      T.addRow({Name, formatString("%llu", (unsigned long long)Get(Configs[0])),
                formatString("%llu", (unsigned long long)Get(Configs[1])),
                formatString("%llu", (unsigned long long)Get(Configs[2]))});
    };
    Row("Issue width", [](const MachineConfig &M) { return M.IssueWidth; });
    Row("Branch predictor size",
        [](const MachineConfig &M) { return M.BranchPredictorSize; });
    Row("RUU size", [](const MachineConfig &M) { return M.RuuSize; });
    Row("Icache (KB)",
        [](const MachineConfig &M) { return M.IcacheBytes / 1024; });
    Row("Dcache (KB)",
        [](const MachineConfig &M) { return M.DcacheBytes / 1024; });
    Row("Dcache assoc",
        [](const MachineConfig &M) { return M.DcacheAssoc; });
    Row("Dcache latency",
        [](const MachineConfig &M) { return M.DcacheLatency; });
    Row("L2 (KB)", [](const MachineConfig &M) { return M.L2Bytes / 1024; });
    Row("L2 assoc", [](const MachineConfig &M) { return M.L2Assoc; });
    Row("L2 latency", [](const MachineConfig &M) { return M.L2Latency; });
    Row("Memory latency",
        [](const MachineConfig &M) { return M.MemoryLatency; });
    std::printf("\nTable 5: reference configurations\n");
    T.print();
  }

  // ---- Table 6 -------------------------------------------------------------
  std::printf("\nTable 6: settings prescribed by RBF-model GA search\n");
  std::printf("(cells show constrained/typical/aggressive values, flags "
              "1-9 then heuristics 10-14)\n\n");

  std::vector<std::string> Headers{"Program"};
  for (size_t P = 0; P < Space.numCompilerParams(); ++P)
    Headers.push_back(formatString("%zu", P + 1));
  TablePrinter T(Headers);

  size_t DiffersFromO3 = 0, TotalCells = 0;
  for (const WorkloadSpec &Spec : allWorkloads()) {
    auto Surface = makeSurface(Space, Spec.Name, Scale, Scale.Input);
    Rng R(Scale.Seed ^ 0x7E57);
    auto TestPoints = generateRandomCandidates(Space, Scale.TestN, R);
    auto TestY = Surface->measureAll(TestPoints);
    ModelBuilderOptions Opts = standardBuild(ModelTechnique::Rbf, Scale);
    Opts.ExternalTest = TestSet{TestPoints, TestY};
    ModelBuildResult Res = buildModel(*Surface, Opts);

    DesignPoint Best[3];
    for (int C = 0; C < 3; ++C) {
      DesignPoint Frozen =
          Space.fromConfigs(OptimizationConfig::O2(), Configs[C]);
      GaOptions Ga;
      Ga.Seed = Scale.Seed + C;
      Best[C] = searchOptimalSettings(*Res.FittedModel, Space, Frozen, Ga)
                    .BestPoint;
    }
    std::vector<std::string> Row{Spec.Name};
    DesignPoint O3Point = Space.fromConfigs(OptimizationConfig::O3(),
                                            Configs[1]);
    for (size_t P = 0; P < Space.numCompilerParams(); ++P) {
      Row.push_back(formatString("%lld/%lld/%lld",
                                 (long long)Best[0][P],
                                 (long long)Best[1][P],
                                 (long long)Best[2][P]));
      for (int C = 0; C < 3; ++C) {
        ++TotalCells;
        if (Best[C][P] != O3Point[P])
          ++DiffersFromO3;
      }
    }
    T.addRow(Row);
    std::printf("  searched %s\n", Spec.Name.c_str());
  }
  // Default O3 row.
  {
    DesignPoint O3Point = Space.fromConfigs(OptimizationConfig::O3(),
                                            Configs[1]);
    std::vector<std::string> Row{"default O3"};
    for (size_t P = 0; P < Space.numCompilerParams(); ++P)
      Row.push_back(formatString("%lld", (long long)O3Point[P]));
    T.addRow(Row);
  }
  T.print();
  std::printf("\n%.0f%% of prescribed cells differ from the -O3 default "
              "(paper: settings are \"significantly different from the "
              "default O3 settings\").\n",
              100.0 * static_cast<double>(DiffersFromO3) /
                  static_cast<double>(TotalCells));
  return 0;
}
