//===- bench/bench_parallel_scaling.cpp - Thread-pool scaling harness -----------===//
//
// Measures the wall-clock effect of MSEM_THREADS on one representative
// model-building campaign (D-optimal design, parallel measureAll, RBF
// fit): the same build runs on a 1/2/4/N-thread global pool and the
// harness reports wall time and speedup. Because every parallel region
// reduces sequentially in index order, the outputs must be bitwise
// identical across thread counts -- the harness verifies that and exits
// nonzero on any divergence.
//
// Scale overrides: MSEM_TRAIN_N / MSEM_TEST_N / MSEM_INPUT / MSEM_SEED
// (BenchCommon). The response cache is kept in memory only, so every
// thread count performs identical work.
//
//===-----------------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/ThreadPool.h"
#include "uarch/TraceCache.h"

#include <chrono>
#include <vector>

using namespace msem;
using namespace msem::bench;

namespace {

struct RunResult {
  double Seconds = 0;
  std::vector<double> TrainY, TestY, Pred;
  double Mape = 0;
};

RunResult runCampaign(size_t Threads, const BenchScale &Scale) {
  setGlobalThreadCount(Threads);
  ParameterSpace Space = ParameterSpace::paperSpace();
  // Memory-only surface: no disk cache, so each run resimulates from
  // scratch and thread counts are compared on equal footing.
  ResponseSurface::Options Opts;
  Opts.Workload = "art";
  Opts.Input = Scale.Input;
  if (Scale.Input == InputSet::Test)
    Opts.Smarts.SamplingInterval = 10;
  ResponseSurface Surface(Space, Opts);

  ModelBuilderOptions Build = standardBuild(ModelTechnique::Rbf, Scale);
  auto Start = std::chrono::steady_clock::now();
  ModelBuildResult R = buildModel(Surface, Build);
  auto End = std::chrono::steady_clock::now();

  RunResult Out;
  Out.Seconds = std::chrono::duration<double>(End - Start).count();
  Out.TrainY = R.TrainY;
  Out.TestY = R.TestY;
  Out.Pred = R.FittedModel->predictAll(encodeMatrix(Space, R.TestPoints));
  Out.Mape = R.TestQuality.Mape;
  return Out;
}

bool identical(const RunResult &A, const RunResult &B) {
  return A.TrainY == B.TrainY && A.TestY == B.TestY && A.Pred == B.Pred &&
         A.Mape == B.Mape;
}

/// Wall time of one machine sweep (two flag vectors x three machines) on a
/// fresh memory-only surface: the level-2 fast path's home turf, since
/// every machine point of a flag vector replays the same trace.
double timeMachineSweep(const BenchScale &Scale,
                        std::vector<double> &Responses) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  ResponseSurface::Options Opts;
  Opts.Workload = "art";
  Opts.Input = Scale.Input;
  if (Scale.Input == InputSet::Test)
    Opts.Smarts.SamplingInterval = 10;
  ResponseSurface Surface(Space, Opts);

  std::vector<DesignPoint> Points;
  for (const OptimizationConfig &Opt :
       {OptimizationConfig::O1(), OptimizationConfig::O3()})
    for (const MachineConfig &M :
         {MachineConfig::constrained(), MachineConfig::typical(),
          MachineConfig::aggressive()})
      Points.push_back(Space.fromConfigs(Opt, M));

  auto Start = std::chrono::steady_clock::now();
  Responses = Surface.measureAll(Points);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main() {
  BenchScale Scale = readScale();
  // A full campaign per thread count: keep the default size moderate.
  if (!env().TrainNSet) {
    Scale.TrainN = 60;
    Scale.TestN = 20;
  }
  printBanner("Performance: thread-pool scaling of the measurement + "
              "fitting engine",
              Scale);
  BenchReport Report("parallel_scaling", Scale);
  std::printf("hardware_concurrency = %u, MSEM_THREADS default = %zu\n\n",
              std::thread::hardware_concurrency(), defaultThreadCount());

  std::vector<size_t> Counts{1, 2, 4};
  if (defaultThreadCount() > 4)
    Counts.push_back(defaultThreadCount());

  // The trace cache would let every run after the first replay the other
  // runs' functional executions, crediting thread counts with fast-path
  // wins. Disable it for the scaling comparison; it gets its own
  // measurement below.
  TraceCache &Traces = TraceCache::global();
  const size_t TraceBudget = Traces.stats().BudgetBytes;
  Traces.setBudgetBytes(0);
  Traces.clear();

  TablePrinter T({"Threads", "wall s", "speedup vs 1T", "identical output"});
  std::vector<RunResult> Results;
  for (size_t N : Counts) {
    RunResult R = runCampaign(N, Scale);
    bool Same = Results.empty() || identical(Results.front(), R);
    double Speedup =
        Results.empty() ? 1.0 : Results.front().Seconds / R.Seconds;
    T.addRow({formatString("%zu", N), formatString("%.2f", R.Seconds),
              formatString("%.2fx", Speedup), Same ? "yes" : "NO"});
    Report.metric(formatString("wall_seconds.p%zu", N), R.Seconds);
    Report.metric(formatString("speedup.p%zu", N), Speedup);
    Results.push_back(std::move(R));
  }
  setGlobalThreadCount(0);
  T.print();

  bool AllSame = true;
  for (const RunResult &R : Results)
    AllSame = AllSame && identical(Results.front(), R);
  if (!AllSame) {
    std::printf("\nFAIL: outputs diverged across thread counts -- the "
                "determinism contract is broken.\n");
    return 1;
  }
  std::printf("\nOutputs bitwise identical across all thread counts "
              "(MAPE %.2f%% in every run).\n",
              Results.front().Mape);
  Report.metric("mape", Results.front().Mape);
  Report.metric("deterministic", AllSame ? 1 : 0);

  // Trace-cache effect on a machine sweep at the default thread count:
  // same sweep with the fast path off, then on (fresh cache, so the run
  // pays its own captures).
  std::vector<double> OffResponses, OnResponses;
  double OffSeconds = timeMachineSweep(Scale, OffResponses);
  Traces.setBudgetBytes(TraceBudget ? TraceBudget : 256 * 1024 * 1024);
  Traces.clear();
  double OnSeconds = timeMachineSweep(Scale, OnResponses);
  double TraceSpeedup = OnSeconds > 0 ? OffSeconds / OnSeconds : 0.0;
  bool TraceIdentical = OffResponses == OnResponses;
  std::printf("\nTrace-replay fast path on one machine sweep (6 points, 2 "
              "binaries):\n  cache off %.2fs, cache on %.2fs -> %.2fx, "
              "responses %s\n",
              OffSeconds, OnSeconds, TraceSpeedup,
              TraceIdentical ? "identical" : "DIVERGED");
  Report.metric("trace_cache_off_seconds", OffSeconds);
  Report.metric("trace_cache_on_seconds", OnSeconds);
  Report.metric("trace_cache_speedup", TraceSpeedup);
  Report.metric("trace_cache_identical", TraceIdentical ? 1 : 0);
  if (!TraceIdentical) {
    std::printf("\nFAIL: trace replay changed measured responses.\n");
    return 1;
  }
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("Note: this host exposes a single hardware thread; wall "
                "times above measure pool overhead, not scaling.\n");
  return 0;
}
