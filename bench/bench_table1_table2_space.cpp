//===- bench/bench_table1_table2_space.cpp - Tables 1 & 2 dump -----------------===//
//
// Prints the predictor inventory: the 14 compiler parameters (Table 1) and
// 11 microarchitectural parameters (Table 2) with ranges and level counts,
// as configured in this reproduction. Sanity-checks the level counts
// against the paper's values.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "design/ParameterSpace.h"

using namespace msem;
using namespace msem::bench;

int main() {
  BenchScale Scale = readScale();
  printBanner("Tables 1 & 2: predictor variables and ranges", Scale);
  BenchReport Report("table1_table2_space", Scale);

  ParameterSpace S = ParameterSpace::paperSpace();
  TablePrinter T({"#", "Parameter", "Kind", "Low", "High", "#levels"});
  for (size_t I = 0; I < S.size(); ++I) {
    const Parameter &P = S.param(I);
    const char *Kind = P.Kind == ParamKind::Binary      ? "binary"
                       : P.Kind == ParamKind::Discrete  ? "discrete"
                                                        : "log2";
    T.addRow({formatString("%zu", I + 1), P.Name, Kind,
              formatString("%lld", (long long)P.low()),
              formatString("%lld", (long long)P.high()),
              formatString("%zu", P.numLevels())});
    if (I + 1 == S.numCompilerParams())
      T.addRow({"--", "-- microarchitecture (Table 2) --", "", "", "", ""});
  }
  T.print();

  // The paper's level counts, in order (Table 1 then Table 2).
  const size_t PaperLevels[25] = {2, 2, 2,  2, 2, 2, 2, 2, 2, 11, 11, 9, 9,
                                  21, 2, 5, 4, 5, 5, 2, 3, 6,  4,  11, 21};
  bool AllMatch = true;
  for (size_t I = 0; I < 25; ++I)
    if (S.param(I).numLevels() != PaperLevels[I]) {
      std::printf("MISMATCH at parameter %zu (%s): %zu levels vs paper %zu\n",
                  I + 1, S.param(I).Name.c_str(), S.param(I).numLevels(),
                  PaperLevels[I]);
      AllMatch = false;
    }
  std::printf("\nLevel counts %s the paper's Tables 1 & 2.\n",
              AllMatch ? "MATCH" : "DO NOT MATCH");
  std::printf("Total design-space size: ~2^%0.1f points\n", [&] {
    double Bits = 0;
    for (size_t I = 0; I < S.size(); ++I)
      Bits += std::log2(static_cast<double>(S.param(I).numLevels()));
    return Bits;
  }());
  return AllMatch ? 0 : 1;
}
