//===- bench/bench_micro_models.cpp - Model training/prediction throughput ------===//
//
// google-benchmark microbenchmarks of the empirical-modeling kernels: the
// cost of training each technique at the paper's design sizes and the
// cost of a single prediction (the quantity that makes model-based design
// space exploration "virtually free" compared to simulation).
//
//===----------------------------------------------------------------------===//

#include "design/Doe.h"
#include "model/LinearModel.h"
#include "model/Mars.h"
#include "model/RbfNetwork.h"
#include "search/GeneticSearch.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace msem;

namespace {

/// Synthetic response over the real 25-parameter space.
void makeData(size_t N, Matrix &X, std::vector<double> &Y, uint64_t Seed) {
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(Seed);
  auto Points = generateLatinHypercube(S, N, R);
  X = encodeMatrix(S, Points);
  Y.resize(N);
  for (size_t I = 0; I < N; ++I) {
    const double *Row = X.rowPtr(I);
    Y[I] = 1e6 - 2e5 * Row[16] + 1e5 * Row[24] - 4e4 * Row[1] +
           3e4 * Row[16] * Row[24] + 1e4 * std::max(0.0, Row[12]);
  }
}

void BM_TrainLinear(benchmark::State &State) {
  Matrix X;
  std::vector<double> Y;
  makeData(static_cast<size_t>(State.range(0)), X, Y, 1);
  for (auto _ : State) {
    LinearModel M;
    M.train(X, Y);
    benchmark::DoNotOptimize(M.coefficients().data());
  }
}
BENCHMARK(BM_TrainLinear)->Arg(100)->Arg(400);

void BM_TrainMars(benchmark::State &State) {
  Matrix X;
  std::vector<double> Y;
  makeData(static_cast<size_t>(State.range(0)), X, Y, 2);
  for (auto _ : State) {
    MarsModel M;
    M.train(X, Y);
    benchmark::DoNotOptimize(M.weights().data());
  }
}
BENCHMARK(BM_TrainMars)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_TrainRbf(benchmark::State &State) {
  Matrix X;
  std::vector<double> Y;
  makeData(static_cast<size_t>(State.range(0)), X, Y, 3);
  for (auto _ : State) {
    RbfNetwork M;
    M.train(X, Y);
    benchmark::DoNotOptimize(M.numNeurons());
  }
}
BENCHMARK(BM_TrainRbf)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_PredictRbf(benchmark::State &State) {
  Matrix X;
  std::vector<double> Y;
  makeData(400, X, Y, 4);
  RbfNetwork M;
  M.train(X, Y);
  std::vector<double> P = X.row(7);
  for (auto _ : State) {
    benchmark::DoNotOptimize(M.predict(P));
    P[0] = -P[0]; // Vary the input a little.
  }
}
BENCHMARK(BM_PredictRbf);

void BM_DOptimalSelection(benchmark::State &State) {
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(5);
  auto Candidates = generateLatinHypercube(S, 1200, R);
  for (auto _ : State) {
    DOptimalOptions Opts;
    Opts.DesignSize = static_cast<size_t>(State.range(0));
    Opts.MaxPasses = 10;
    benchmark::DoNotOptimize(
        selectDOptimal(S, Candidates, Opts).LogDetInformation);
  }
}
BENCHMARK(BM_DOptimalSelection)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_GaSearch(benchmark::State &State) {
  Matrix X;
  std::vector<double> Y;
  makeData(400, X, Y, 6);
  RbfNetwork M;
  M.train(X, Y);
  ParameterSpace S = ParameterSpace::paperSpace();
  DesignPoint Frozen =
      S.fromConfigs(OptimizationConfig::O2(), MachineConfig::typical());
  for (auto _ : State) {
    GaOptions Ga;
    Ga.Generations = 40;
    benchmark::DoNotOptimize(
        searchOptimalSettings(M, S, Frozen, Ga).PredictedResponse);
  }
}
BENCHMARK(BM_GaSearch)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
