//===- examples/interaction_analysis.cpp - Significance analysis ----------------===//
//
// The paper's interpretive use of the models (Section 6.2, Table 4): fit
// an interpretable MARS model for a program and read off which parameters
// and two-factor interactions move performance, in cycles. Then
// cross-check one highlighted interaction by direct simulation at its
// four corners.
//
// Usage: ./build/examples/interaction_analysis [workload]
//
//===----------------------------------------------------------------------===//

#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <cstdio>

using namespace msem;

int main(int Argc, char **Argv) {
  std::string Workload = Argc > 1 ? Argv[1] : "mcf";

  ParameterSpace Space = ParameterSpace::paperSpace();
  ResponseSurface::Options SurfOpts;
  SurfOpts.Workload = Workload;
  SurfOpts.Input = InputSet::Test;
  SurfOpts.Smarts.SamplingInterval = 10;
  ResponseSurface Surface(Space, SurfOpts);

  std::printf("fitting MARS model for %s...\n", Workload.c_str());
  ModelBuilderOptions Build;
  Build.Technique = ModelTechnique::Mars;
  Build.InitialDesignSize = 100;
  Build.MaxDesignSize = 100;
  Build.TestSize = 25;
  Build.CandidateCount = 800;
  ModelBuildResult Model = buildModel(Surface, Build);
  std::printf("test MAPE %.2f%% (%zu simulations)\n\n",
              Model.TestQuality.Mape, Model.SimulationsUsed);

  auto Effects = rankEffects(*Model.FittedModel, Space, 300, 15,
                             /*Seed=*/42);
  TablePrinter T({"Rank", "Parameter / interaction", "Coefficient (cycles)"});
  for (size_t I = 0; I < Effects.size() && I < 15; ++I)
    T.addRow({formatString("%zu", I + 1), Effects[I].Label,
              formatString("%+.0f", Effects[I].Coefficient)});
  T.print();

  // Cross-check the strongest interaction by simulating its four corners.
  const EffectEstimate *Strongest = nullptr;
  size_t VarA = 0, VarB = 0;
  for (const EffectEstimate &E : Effects) {
    size_t Star = E.Label.find(" * ");
    if (Star == std::string::npos)
      continue;
    VarA = Space.indexOf(E.Label.substr(0, Star));
    VarB = Space.indexOf(E.Label.substr(Star + 3));
    Strongest = &E;
    break;
  }
  if (!Strongest) {
    std::printf("\n(no interaction ranked; nothing to cross-check)\n");
    return 0;
  }
  std::printf("\ncross-checking '%s' by simulation at its corners "
              "(other parameters at -O2/typical):\n",
              Strongest->Label.c_str());
  DesignPoint Base = Space.fromConfigs(OptimizationConfig::O2(),
                                       MachineConfig::typical());
  auto Corner = [&](bool HiA, bool HiB) {
    DesignPoint P = Base;
    P[VarA] = HiA ? Space.param(VarA).high() : Space.param(VarA).low();
    P[VarB] = HiB ? Space.param(VarB).high() : Space.param(VarB).low();
    return Surface.measure(P);
  };
  double LL = Corner(false, false), LH = Corner(false, true);
  double HL = Corner(true, false), HH = Corner(true, true);
  std::printf("  low/low %.0f   low/high %.0f\n  high/low %.0f   "
              "high/high %.0f\n",
              LL, LH, HL, HH);
  double Measured = (HH - HL - LH + LL) / 4.0;
  std::printf("  measured interaction (HH-HL-LH+LL)/4 = %+.0f cycles; "
              "model coefficient %+.0f cycles\n",
              Measured, Strongest->Coefficient);
  std::printf("  (signs agreeing means the model found a real "
              "interaction, the paper's Section 6.2 use case)\n");
  return 0;
}
