//===- examples/simulator_demo.cpp - Drive the simulator directly ---------------===//
//
// Exercises the measurement substrate on its own: compiles one workload,
// prints a disassembly excerpt, runs it functionally, in full detail and
// under SMARTS sampling, and reports the microarchitectural statistics --
// the numbers every response measurement in the paper's campaign is
// built from.
//
// Usage: ./build/examples/simulator_demo [workload]
//
//===----------------------------------------------------------------------===//

#include "core/ResponseSurface.h"
#include "sampling/Smarts.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cmath>
#include <cstdio>

using namespace msem;

int main(int Argc, char **Argv) {
  std::string Workload = Argc > 1 ? Argv[1] : "bzip2";

  std::printf("compiling %s (train input) at -O2...\n", Workload.c_str());
  MachineProgram Prog = compileWorkloadBinary(Workload, InputSet::Train,
                                              OptimizationConfig::O2());
  std::printf("linked binary: %zu instructions, %zu functions, %llu bytes "
              "of globals\n",
              Prog.Code.size(), Prog.Functions.size(),
              (unsigned long long)(Prog.DataEnd - Prog.DataBase));

  // Disassembly excerpt.
  std::string Dis = Prog.disassemble();
  size_t Lines = 0, Pos = 0;
  while (Pos < Dis.size() && Lines < 25) {
    size_t Nl = Dis.find('\n', Pos);
    std::printf("%.*s\n", static_cast<int>(Nl - Pos), Dis.c_str() + Pos);
    Pos = Nl + 1;
    ++Lines;
  }
  std::printf("   ... (%zu instructions total)\n\n", Prog.Code.size());

  auto Time = [](auto &&Fn) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(T1 - T0).count();
  };

  // Functional run.
  ExecResult Func;
  double FuncSec = Time([&] { Func = Executor(Prog).runToCompletion(); });
  std::printf("functional: %llu instructions, checksum %lld (%.1f M "
              "instr/s)\n",
              (unsigned long long)Func.InstructionsExecuted,
              (long long)Func.ReturnValue,
              Func.InstructionsExecuted / FuncSec / 1e6);

  // Detailed run on the typical machine.
  SimulationResult Det;
  double DetSec =
      Time([&] { Det = simulateDetailed(Prog, MachineConfig::typical()); });
  std::printf("detailed:   %llu cycles, CPI %.2f (%.1f M instr/s)\n",
              (unsigned long long)Det.Cycles, Det.cpi(),
              Det.Pipeline.Instructions / DetSec / 1e6);

  // SMARTS run.
  SmartsResult Smarts;
  SmartsConfig SC = ResponseSurface::Options::makeDefaultSmarts();
  double SmSec = Time(
      [&] { Smarts = simulateSmarts(Prog, MachineConfig::typical(), SC); });
  std::printf("SMARTS:     %llu cycles estimated (%.2f%% off detailed, "
              "bound %.2f%%), %.1fx faster than detailed\n\n",
              (unsigned long long)Smarts.EstimatedCycles,
              100.0 * std::fabs((double)Smarts.EstimatedCycles -
                                (double)Det.Cycles) /
                  (double)Det.Cycles,
              100.0 * Smarts.RelativeErrorBound, DetSec / SmSec);

  TablePrinter T({"Statistic", "Value"});
  auto Add = [&](const char *K, uint64_t V) {
    T.addRow({K, formatString("%llu", (unsigned long long)V)});
  };
  Add("branches", Det.Pipeline.Branches);
  Add("taken branches", Det.Pipeline.TakenBranches);
  Add("mispredictions", Det.Branch.Mispredicts);
  Add("loads", Det.Pipeline.Loads);
  Add("stores", Det.Pipeline.Stores);
  Add("store-to-load forwards", Det.Pipeline.LoadForwards);
  Add("icache misses", Det.Memory.IcacheMisses);
  Add("dcache misses", Det.Memory.DcacheMisses);
  Add("L2 misses", Det.Memory.L2Misses);
  Add("writebacks", Det.Memory.Writebacks);
  Add("store-buffer stalls", Det.Pipeline.StoreBufferStalls);
  T.print();
  return 0;
}
