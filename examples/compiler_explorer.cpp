//===- examples/compiler_explorer.cpp - Inspect the compiler substrate ----------===//
//
// Drives the compiler stack directly: builds a small program in the IR,
// shows the IR before and after each optimization flag, disassembles the
// generated machine code and reports how each flag changes the simulated
// cycle count on two different microarchitectures -- a miniature of the
// interactions the paper models.
//
// Usage: ./build/examples/compiler_explorer [workload]
//   workload: one of gzip vpr mesa art mcf vortex bzip2 (default: a small
//   built-in kernel whose IR is printed in full)
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"
#include "ir/IRPrinter.h"
#include "ir/LoopBuilder.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "uarch/Simulator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace msem;

namespace {

/// A small dot-product kernel whose transformations are easy to read.
std::unique_ptr<Module> makeDemoKernel() {
  auto M = std::make_unique<Module>("demo");
  GlobalVariable *A = M->createGlobal("A", 256 * 8);
  GlobalVariable *Bv = M->createGlobal("B", 256 * 8);
  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(256), 1, "init");
    Value *Fi = B.siToFp(L.indVar());
    B.storeElem(Fi, A, L.indVar(), MemKind::Float64);
    B.storeElem(B.fadd(Fi, B.constFloat(1.0)), Bv, L.indVar(),
                MemKind::Float64);
    L.finish();
  }
  LoopBuilder L(B, B.constInt(0), B.constInt(256), 1, "dot");
  Value *Acc = L.carried(B.constFloat(0.0));
  Value *Av = B.loadElem(A, L.indVar(), MemKind::Float64);
  Value *BvV = B.loadElem(Bv, L.indVar(), MemKind::Float64);
  L.setNext(Acc, B.fadd(Acc, B.fmul(Av, BvV)));
  L.finish();
  Value *R = B.fpToSi(L.exitValue(Acc));
  B.emit(R);
  B.ret(R);
  return M;
}

void report(const char *Label, Module &M, const OptimizationConfig &C,
            bool PrintIr) {
  runPassPipeline(M, C);
  assertValid(M);
  if (PrintIr) {
    std::printf("\n----- IR after %s -----\n%s", Label,
                printFunction(*M.mainFunction()).c_str());
  }
  CodeGenOptions CG;
  CG.OmitFramePointer = C.OmitFramePointer;
  CG.PostRaSchedule = C.ScheduleInsns2;
  MachineProgram Prog = compileToProgram(M, CG);

  SimulationResult Typical = simulateDetailed(Prog, MachineConfig::typical());
  SimulationResult Constrained =
      simulateDetailed(Prog, MachineConfig::constrained());
  std::printf("%-22s static %5zu instrs | typical %8llu cyc (CPI %.2f) | "
              "constrained %8llu cyc (CPI %.2f)\n",
              Label, Prog.Code.size(),
              (unsigned long long)Typical.Cycles, Typical.cpi(),
              (unsigned long long)Constrained.Cycles, Constrained.cpi());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Workload = Argc > 1 ? Argv[1] : "";
  bool UseDemo = Workload.empty();

  auto Fresh = [&]() {
    return UseDemo ? makeDemoKernel()
                   : buildWorkload(Workload, InputSet::Test);
  };

  if (UseDemo) {
    auto M = Fresh();
    std::printf("----- IR before optimization -----\n%s",
                printFunction(*M->mainFunction()).c_str());
  }

  struct Step {
    const char *Label;
    OptimizationConfig Config;
  };
  OptimizationConfig Unroll;
  Unroll.UnrollLoops = true;
  OptimizationConfig Strength;
  Strength.StrengthReduce = true;
  OptimizationConfig Sched;
  Sched.ScheduleInsns2 = true;
  OptimizationConfig Prefetch;
  Prefetch.PrefetchLoopArrays = true;
  OptimizationConfig AllOn = OptimizationConfig::O3();
  AllOn.UnrollLoops = true;

  const Step Steps[] = {
      {"O0 (cleanup only)", OptimizationConfig::O0()},
      {"strength-reduce", Strength},
      {"unroll (x8)", Unroll},
      {"schedule-insns2", Sched},
      {"prefetch", Prefetch},
      {"O2", OptimizationConfig::O2()},
      {"O3", OptimizationConfig::O3()},
      {"O3 + unroll", AllOn},
  };

  std::printf("\n%s on two microarchitectures:\n",
              UseDemo ? "demo kernel" : Workload.c_str());
  for (const Step &S : Steps) {
    auto M = Fresh();
    report(S.Label, *M, S.Config, /*PrintIr=*/UseDemo &&
                                      std::strcmp(S.Label, "O0 (cleanup "
                                                           "only)") == 0);
  }
  std::printf("\nNote how the same flag moves cycles by different amounts "
              "on the two machines -- the compiler/microarchitecture "
              "interaction the MSEM models capture.\n");
  return 0;
}
