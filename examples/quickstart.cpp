//===- examples/quickstart.cpp - Five-minute tour of the library ---------------===//
//
// The end-to-end flow of the paper in ~80 lines:
//   1. define the joint compiler x microarchitecture design space,
//   2. measure a D-optimally chosen set of design points on the simulator,
//   3. fit an RBF-network performance model,
//   4. use it to predict arbitrary configurations and to find good
//      compiler settings for a platform.
//
// Build:  cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "search/GeneticSearch.h"

#include <cstdio>

using namespace msem;

int main() {
  // 1. The design space: Table 1's 14 compiler parameters + Table 2's 11
  //    microarchitectural parameters, all encoded onto [-1, 1].
  ParameterSpace Space = ParameterSpace::paperSpace();
  std::printf("design space: %zu parameters (%zu compiler + %zu uarch)\n",
              Space.size(), Space.numCompilerParams(),
              Space.size() - Space.numCompilerParams());

  // 2. A response surface for one program: each measurement compiles the
  //    benchmark at the point's flag settings and simulates the binary on
  //    the point's microarchitecture (SMARTS-sampled).
  ResponseSurface::Options SurfOpts;
  SurfOpts.Workload = "art";
  SurfOpts.Input = InputSet::Test; // Small input: quickstart-friendly.
  SurfOpts.Smarts.SamplingInterval = 10;
  ResponseSurface Surface(Space, SurfOpts);

  // 3. The Figure 1 loop: D-optimal design, measure, fit, evaluate.
  ModelBuilderOptions Build;
  Build.Technique = ModelTechnique::Rbf;
  Build.InitialDesignSize = 60;
  Build.MaxDesignSize = 60;
  Build.TestSize = 20;
  Build.CandidateCount = 500;
  ModelBuildResult Result = buildModel(Surface, Build);
  std::printf("fitted %s model on %zu points: test MAPE %.2f%%, R2 %.3f "
              "(%zu simulations total)\n",
              Result.FittedModel->name().c_str(),
              Result.TrainPoints.size(), Result.TestQuality.Mape,
              Result.TestQuality.R2, Result.SimulationsUsed);

  // 4a. Predict an arbitrary configuration without simulating it.
  DesignPoint Probe = Space.fromConfigs(OptimizationConfig::O3(),
                                        MachineConfig::typical());
  double Predicted = Result.FittedModel->predict(Space.encode(Probe));
  double Actual = Surface.measure(Probe);
  std::printf("-O3 on the typical machine: predicted %.0f cycles, "
              "simulated %.0f cycles (%.1f%% off)\n",
              Predicted, Actual,
              100.0 * (Predicted - Actual) / Actual);

  // 4b. Search the compiler subspace for this platform.
  DesignPoint O2Point = Space.fromConfigs(OptimizationConfig::O2(),
                                          MachineConfig::typical());
  GaResult Best = searchOptimalSettings(*Result.FittedModel, Space, O2Point);
  double CyclesBest = Surface.measure(Best.BestPoint);
  double CyclesO2 = Surface.measure(O2Point);
  std::printf("model-guided settings: %.0f cycles vs -O2's %.0f "
              "(%+.1f%% speedup)\n",
              CyclesBest, CyclesO2,
              100.0 * (CyclesO2 - CyclesBest) / CyclesO2);
  std::printf("prescribed flags: %s\n",
              Space.toOptimizationConfig(Best.BestPoint).toString().c_str());
  return 0;
}
