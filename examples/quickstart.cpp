//===- examples/quickstart.cpp - Five-minute tour of the library ---------------===//
//
// The end-to-end flow of the paper in one runExperiment call:
//   1. describe the experiment -- workload, design scale, target platform
//      -- in an ExperimentSpec,
//   2. the campaign engine measures a D-optimally chosen set of design
//      points on the simulator and fits an RBF performance model,
//   3. the fitted model predicts arbitrary configurations without
//      simulating them and prescribes compiler settings for the platform.
//
// Build:  cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "campaign/Experiment.h"

#include <cstdio>

using namespace msem;

int main() {
  // 1. The experiment, declaratively: Table 1's 14 compiler parameters +
  //    Table 2's 11 microarchitectural parameters, one RBF model of art's
  //    execution time, tuned for one target platform. Each measurement
  //    compiles the benchmark at the point's flag settings and simulates
  //    the binary on the point's microarchitecture (SMARTS-sampled).
  ExperimentSpec Spec;
  Spec.Name = "quickstart";
  Spec.Jobs = {{"art", InputSet::Test, ResponseMetric::Cycles,
                ModelTechnique::Rbf, 0}}; // Small input: quickstart-friendly.
  Spec.InitialDesignSize = 60;
  Spec.MaxDesignSize = 60;
  Spec.TestSize = 20;
  Spec.CandidateCount = 500;
  Spec.TunePlatforms = {{"typical", MachineConfig::typical()}};
  Spec.VerifyTunings = true; // Measure the prescription, don't just trust it.

  ParameterSpace Space = makeSpace(Spec.Space);
  std::printf("design space: %zu parameters (%zu compiler + %zu uarch)\n",
              Space.size(), Space.numCompilerParams(),
              Space.size() - Space.numCompilerParams());

  // 2. Run it: D-optimal design, measurement, RBF fit, GA platform search
  //    -- the whole Figure 1 lifecycle behind one call.
  ExperimentResult Result = runExperiment(Spec);
  if (!Result.ok()) {
    std::printf("experiment %s: %s\n", campaignStatusName(Result.Status),
                Result.Error.c_str());
    return 1;
  }
  const ExperimentJobResult &Job = Result.Jobs[0];
  std::printf("fitted %s model on %zu points: test MAPE %.2f%%, R2 %.3f "
              "(%zu simulations total)\n",
              Job.Build.FittedModel->name().c_str(),
              Job.Build.TrainPoints.size(), Job.Build.TestQuality.Mape,
              Job.Build.TestQuality.R2, Result.SimulationsUsed);

  // 3a. Predict an arbitrary configuration without simulating it. The
  //     tuning phase measured -O3 on the typical machine, so the model's
  //     prediction can be checked against the simulator's answer.
  const PlatformTuning &Tuned = Job.Tunings[0];
  DesignPoint Probe = Space.fromConfigs(OptimizationConfig::O3(),
                                        MachineConfig::typical());
  double Predicted = Job.Build.FittedModel->predict(Space.encode(Probe));
  std::printf("-O3 on the typical machine: predicted %.0f cycles, "
              "simulated %.0f cycles (%.1f%% off)\n",
              Predicted, Tuned.MeasuredO3,
              100.0 * (Predicted - Tuned.MeasuredO3) / Tuned.MeasuredO3);

  // 3b. The campaign already searched the compiler subspace for the
  //     platform and verified the winner on the simulator.
  std::printf("model-guided settings: %.0f cycles vs -O2's %.0f "
              "(%+.1f%% speedup)\n",
              Tuned.MeasuredBest, Tuned.MeasuredO2,
              100.0 * (Tuned.MeasuredO2 - Tuned.MeasuredBest) /
                  Tuned.MeasuredO2);
  std::printf("prescribed flags: %s\n",
              Space.toOptimizationConfig(Tuned.Search.BestPoint)
                  .toString()
                  .c_str());
  return 0;
}
