//===- examples/platform_tuner.cpp - Per-platform flag tuning -------------------===//
//
// The paper's deployment scenario (Section 6.3): an empirical model is
// built offline for a program; at install time it is parameterized with
// the target platform's configuration and searched for the best compiler
// settings -- "absolving developers from the tedious task of tuning these
// flags and heuristics for different platforms".
//
// This example builds one model for a chosen workload, then tunes it for
// several platforms (including a custom one given on the command line as
// 11 Table 2 values) and verifies the predicted winners on the simulator.
//
// Usage: ./build/examples/platform_tuner [workload] [train|test]
//
//===----------------------------------------------------------------------===//

#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "search/GeneticSearch.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstring>

using namespace msem;

int main(int Argc, char **Argv) {
  std::string Workload = Argc > 1 ? Argv[1] : "vpr";
  InputSet Input = (Argc > 2 && std::strcmp(Argv[2], "train") == 0)
                       ? InputSet::Train
                       : InputSet::Test;

  ParameterSpace Space = ParameterSpace::paperSpace();
  ResponseSurface::Options SurfOpts;
  SurfOpts.Workload = Workload;
  SurfOpts.Input = Input;
  if (Input == InputSet::Test)
    SurfOpts.Smarts.SamplingInterval = 10;
  ResponseSurface Surface(Space, SurfOpts);

  std::printf("building RBF model for %s (%s input)...\n", Workload.c_str(),
              inputSetName(Input));
  ModelBuilderOptions Build;
  Build.Technique = ModelTechnique::Rbf;
  Build.InitialDesignSize = Input == InputSet::Test ? 80 : 150;
  Build.MaxDesignSize = Build.InitialDesignSize;
  Build.TestSize = 25;
  Build.CandidateCount = 800;
  ModelBuildResult Model = buildModel(Surface, Build);
  std::printf("model ready: test MAPE %.2f%% after %zu simulations\n\n",
              Model.TestQuality.Mape, Model.SimulationsUsed);

  struct Platform {
    const char *Name;
    MachineConfig Config;
  };
  MachineConfig Embedded = MachineConfig::constrained();
  Embedded.MemoryLatency = 75;
  MachineConfig Server = MachineConfig::aggressive();
  Server.MemoryLatency = 120;
  MachineConfig CacheStarved = MachineConfig::typical();
  CacheStarved.IcacheBytes = 8 * 1024;
  CacheStarved.DcacheBytes = 8 * 1024;
  const Platform Platforms[] = {
      {"constrained", MachineConfig::constrained()},
      {"typical", MachineConfig::typical()},
      {"aggressive", MachineConfig::aggressive()},
      {"embedded-ish", Embedded},
      {"server-ish", Server},
      {"cache-starved", CacheStarved},
  };

  TablePrinter T({"Platform", "O2 cycles", "O3 cycles", "tuned cycles",
                  "tuned vs O2", "prescribed flags"});
  for (const Platform &P : Platforms) {
    DesignPoint O2Point =
        Space.fromConfigs(OptimizationConfig::O2(), P.Config);
    DesignPoint O3Point =
        Space.fromConfigs(OptimizationConfig::O3(), P.Config);
    GaResult Best =
        searchOptimalSettings(*Model.FittedModel, Space, O2Point);

    double CyclesO2 = Surface.measure(O2Point);
    double CyclesO3 = Surface.measure(O3Point);
    double CyclesBest = Surface.measure(Best.BestPoint);
    T.addRow({P.Name, formatString("%.0f", CyclesO2),
              formatString("%.0f", CyclesO3),
              formatString("%.0f", CyclesBest),
              formatString("%+.1f%%",
                           100.0 * (CyclesO2 - CyclesBest) / CyclesO2),
              Space.toOptimizationConfig(Best.BestPoint).toString()});
  }
  T.print();
  std::printf("\nEach platform gets its own settings from the same model "
              "-- no per-platform re-simulation campaign needed.\n");
  return 0;
}
