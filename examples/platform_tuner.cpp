//===- examples/platform_tuner.cpp - Per-platform flag tuning -------------------===//
//
// The paper's deployment scenario (Section 6.3): an empirical model is
// built offline for a program; at install time it is parameterized with
// the target platform's configuration and searched for the best compiler
// settings -- "absolving developers from the tedious task of tuning these
// flags and heuristics for different platforms".
//
// The whole campaign -- one model build, six platform searches, simulator
// verification of every prescription -- is a single ExperimentSpec. With a
// checkpoint path it is also durable: kill the process at any point and
// rerun with the same arguments, and the campaign resumes where it
// stopped, producing the identical table.
//
// Usage: ./build/examples/platform_tuner [workload] [train|test] [ckpt.json]
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "campaign/Experiment.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstring>

using namespace msem;

int main(int Argc, char **Argv) {
  std::string Workload = Argc > 1 ? Argv[1] : "vpr";
  InputSet Input = (Argc > 2 && std::strcmp(Argv[2], "train") == 0)
                       ? InputSet::Train
                       : InputSet::Test;
  std::string CheckpointPath = Argc > 3 ? Argv[3] : "";

  MachineConfig Embedded = MachineConfig::constrained();
  Embedded.MemoryLatency = 75;
  MachineConfig Server = MachineConfig::aggressive();
  Server.MemoryLatency = 120;
  MachineConfig CacheStarved = MachineConfig::typical();
  CacheStarved.IcacheBytes = 8 * 1024;
  CacheStarved.DcacheBytes = 8 * 1024;

  ExperimentSpec Spec;
  Spec.Name = "platform-tuner";
  Spec.Jobs = {{Workload, Input, ResponseMetric::Cycles,
                ModelTechnique::Rbf, 0}};
  Spec.InitialDesignSize = Input == InputSet::Test ? 80 : 150;
  Spec.MaxDesignSize = Spec.InitialDesignSize;
  Spec.TestSize = 25;
  Spec.CandidateCount = 800;
  Spec.TunePlatforms = {
      {"constrained", MachineConfig::constrained()},
      {"typical", MachineConfig::typical()},
      {"aggressive", MachineConfig::aggressive()},
      {"embedded-ish", Embedded},
      {"server-ish", Server},
      {"cache-starved", CacheStarved},
  };
  Spec.VerifyTunings = true;
  Spec.CheckpointPath = CheckpointPath;

  std::printf("building RBF model for %s (%s input)...\n", Workload.c_str(),
              inputSetName(Input));
  // A fresh run and a resumed one go through the same facade; an existing
  // checkpoint wins, so rerunning after a kill continues the campaign.
  ExperimentResult Result;
  bool HaveCheckpoint = false;
  if (!CheckpointPath.empty()) {
    if (std::FILE *F = std::fopen(CheckpointPath.c_str(), "rb")) {
      std::fclose(F);
      HaveCheckpoint = true;
    }
  }
  if (HaveCheckpoint) {
    std::printf("resuming from %s\n", CheckpointPath.c_str());
    Result = Campaign::resume(CheckpointPath);
  } else {
    Result = runExperiment(Spec);
  }
  if (!Result.ok()) {
    std::printf("campaign %s: %s\n", campaignStatusName(Result.Status),
                Result.Error.c_str());
    return 1;
  }

  const ExperimentJobResult &Job = Result.Jobs[0];
  std::printf("model ready: test MAPE %.2f%% after %zu simulations\n\n",
              Job.Build.TestQuality.Mape, Result.SimulationsUsed);

  ParameterSpace Space = makeSpace(Spec.Space);
  TablePrinter T({"Platform", "O2 cycles", "O3 cycles", "tuned cycles",
                  "tuned vs O2", "prescribed flags"});
  for (const PlatformTuning &P : Job.Tunings) {
    T.addRow({P.Platform, formatString("%.0f", P.MeasuredO2),
              formatString("%.0f", P.MeasuredO3),
              formatString("%.0f", P.MeasuredBest),
              formatString("%+.1f%%", 100.0 * (P.MeasuredO2 - P.MeasuredBest) /
                                          P.MeasuredO2),
              Space.toOptimizationConfig(P.Search.BestPoint).toString()});
  }
  T.print();
  std::printf("\nEach platform gets its own settings from the same model "
              "-- no per-platform re-simulation campaign needed.\n");
  return 0;
}
