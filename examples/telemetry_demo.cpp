//===- examples/telemetry_demo.cpp - Observability tour ------------------------===//
//
// Runs one workload end-to-end -- compile (pass pipeline), simulate
// (detailed + SMARTS), fit a model on a D-optimal design, GA-search the
// flag space -- with every telemetry sink forced on, then emits:
//
//   - the summary tables (stderr): per-pass times, simulator IPC,
//     stall attribution, fit statistics, GA cache hit rate,
//   - telemetry_demo.metrics.jsonl: one JSON object per metric,
//   - telemetry_demo.trace.json: Chrome trace-event JSON; open it in
//     chrome://tracing or https://ui.perfetto.dev to see the nested
//     pipeline -> pass -> fit -> search spans.
//
// Usage: ./build/examples/telemetry_demo [workload]
//
// The same output is available from ANY binary in this repo via the
// environment, e.g. MSEM_TELEMETRY=summary,trace ./build/examples/quickstart.
//
//===----------------------------------------------------------------------===//

#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "search/GeneticSearch.h"
#include "telemetry/Telemetry.h"

#include <cstdio>

using namespace msem;

int main(int Argc, char **Argv) {
  // Force all three sinks on, regardless of the environment.
  telemetry::Config TC;
  TC.Sinks = telemetry::SinkSummary | telemetry::SinkJsonl |
             telemetry::SinkTrace;
  TC.TraceFile = "telemetry_demo.trace.json";
  TC.MetricsFile = "telemetry_demo.metrics.jsonl";
  telemetry::configure(TC);

  std::string Workload = Argc > 1 ? Argv[1] : "art";

  {
    telemetry::ScopedTimer Whole("demo.end_to_end");

    // Compile + simulate one point directly (detailed and sampled), so the
    // trace shows the raw measurement substrate too.
    MachineProgram Prog = compileWorkloadBinary(Workload, InputSet::Test,
                                                OptimizationConfig::O2());
    SimulationResult Det = simulateDetailed(Prog, MachineConfig::typical());
    std::printf("%s -O2 on the typical machine: %llu cycles, CPI %.2f\n",
                Workload.c_str(), (unsigned long long)Det.Cycles, Det.cpi());

    SmartsConfig SC = ResponseSurface::Options::makeDefaultSmarts();
    SC.SamplingInterval = 10;
    SmartsResult Smarts =
        simulateSmarts(Prog, MachineConfig::typical(), SC);
    std::printf("SMARTS estimate: %llu cycles (%zu windows, ±%.2f%%)\n",
                (unsigned long long)Smarts.EstimatedCycles,
                Smarts.MeasuredWindows, 100.0 * Smarts.RelativeErrorBound);

    // The modeling stack: small-but-complete Figure 1 loop, then a GA
    // search against the fitted model.
    ParameterSpace Space = ParameterSpace::paperSpace();
    ResponseSurface::Options SurfOpts;
    SurfOpts.Workload = Workload;
    SurfOpts.Input = InputSet::Test;
    SurfOpts.Smarts.SamplingInterval = 10;
    ResponseSurface Surface(Space, SurfOpts);

    ModelBuilderOptions Build;
    Build.Technique = ModelTechnique::Rbf;
    Build.InitialDesignSize = 40;
    Build.MaxDesignSize = 40;
    Build.TestSize = 10;
    Build.CandidateCount = 300;
    ModelBuildResult Result = buildModel(Surface, Build);
    std::printf("fitted %s on %zu points: test MAPE %.2f%%\n",
                Result.FittedModel->name().c_str(),
                Result.TrainPoints.size(), Result.TestQuality.Mape);

    DesignPoint O2Point = Space.fromConfigs(OptimizationConfig::O2(),
                                            MachineConfig::typical());
    GaResult Best =
        searchOptimalSettings(*Result.FittedModel, Space, O2Point);
    std::printf("GA best predicted response: %.0f (after %d generations)\n",
                Best.PredictedResponse, Best.GenerationsRun);
  }

  telemetry::flush();
  std::printf("\nwrote %s and %s; open the trace in chrome://tracing or "
              "https://ui.perfetto.dev\n",
              TC.MetricsFile.c_str(), TC.TraceFile.c_str());
  return 0;
}
