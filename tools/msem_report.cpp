//===- tools/msem_report.cpp - Observability report renderer ----------------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Turns the observability artifacts the pipeline writes -- structured
// span-event logs (MSEM_TELEMETRY=events) and metrics snapshots (JSONL or
// OpenMetrics) -- into a human-readable report:
//
//   msem_report --events msem_events.jsonl [--metrics msem_metrics.jsonl]
//       terminal report: build identity, per-phase time breakdown (the
//       slowest phase named), span-tree shape, a collapsed-stack
//       flamegraph summary, the slowest design-point measurements, the GA
//       fitness trajectory and the serving SLO table.
//
//   msem_report --events E.jsonl --html report.html
//       the same report as a standalone HTML page.
//
//   msem_report --check --events E.jsonl [--metrics M.txt]
//       validation mode for CI: exits non-zero on schema-invalid events,
//       an empty span tree, or an OpenMetrics snapshot that fails the
//       exposition-format parser. Prints nothing but errors.
//
// Both flags repeat; multiple event logs concatenate into one report
// (multi-process campaigns). Metrics files are format-autodetected:
// OpenMetrics text starts with '#', JSONL with '{'.
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "telemetry/EventLog.h"
#include "telemetry/OpenMetrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace msem;
using namespace msem::telemetry;

namespace {

double ms(uint64_t Ns) { return static_cast<double>(Ns) / 1e6; }

/// Quantile over a snapshot histogram, mirroring Histogram::quantile
/// (linear interpolation within the containing bucket, clamped to the
/// observed max).
double snapshotQuantile(const MetricsSnapshot::HistogramValue &H, double Q) {
  uint64_t Total = 0;
  for (uint64_t C : H.Counts)
    Total += C;
  if (Total == 0)
    return 0.0;
  double Target = Q * static_cast<double>(Total);
  uint64_t Cum = 0;
  for (size_t I = 0; I < H.Counts.size(); ++I) {
    uint64_t Prev = Cum;
    Cum += H.Counts[I];
    if (static_cast<double>(Cum) < Target || H.Counts[I] == 0)
      continue;
    double Lo = I == 0 ? 0.0 : H.Bounds[I - 1];
    double Hi = I < H.Bounds.size() ? H.Bounds[I] : H.Max;
    if (Hi < Lo)
      Hi = Lo;
    double Frac = (Target - static_cast<double>(Prev)) /
                  static_cast<double>(H.Counts[I]);
    double V = Lo + Frac * (Hi - Lo);
    return H.Max > 0 && V > H.Max ? H.Max : V;
  }
  return H.Max;
}

//===----------------------------------------------------------------------===//
// Report assembly
//===----------------------------------------------------------------------===//

/// Everything the renderers need, precomputed once.
struct Report {
  std::string Build;
  std::vector<SpanEvent> Spans;
  SpanTree Tree;
  std::vector<PhaseStat> Phases;
  std::vector<std::pair<std::string, uint64_t>> Stacks;
  std::vector<SpanEvent> SlowPoints;
  MetricsSnapshot Metrics;
  bool HaveMetrics = false;
};

void assemble(Report &R, size_t Top) {
  R.Tree = buildSpanTree(R.Spans);
  R.Phases = aggregatePhases(R.Spans, R.Tree);
  R.Stacks = collapseStacks(R.Spans, R.Tree);
  if (R.Stacks.size() > Top)
    R.Stacks.resize(Top);
  R.SlowPoints = slowestSpans(R.Spans, "surface.point", Top);
}

std::string renderPhaseTable(const Report &R) {
  TablePrinter T({"Phase", "Count", "Total ms", "Self ms", "Max ms"});
  for (const PhaseStat &P : R.Phases)
    T.addRowCells(P.Name, formatString("%zu", P.Count),
                  formatString("%.3f", ms(P.TotalNs)),
                  formatString("%.3f", ms(P.SelfNs)),
                  formatString("%.3f", ms(P.MaxNs)));
  return T.render();
}

std::string renderSloTable(const MetricsSnapshot &M) {
  // serving.latency_us.<model> histograms carry the latency; the rolling
  // error gauges complete the row.
  auto GaugeFor = [&](const std::string &Name) -> double {
    for (const auto &G : M.Gauges)
      if (G.Name == Name)
        return G.Value;
    return 0.0;
  };
  auto CounterFor = [&](const std::string &Name) -> uint64_t {
    for (const auto &C : M.Counters)
      if (C.Name == Name)
        return C.Value;
    return 0;
  };
  TablePrinter T({"Model", "Requests", "p50 us", "p95 us", "p99 us",
                  "Roll MAPE", "Drift", "Flag"});
  for (const auto &H : M.Histograms) {
    const std::string Prefix = "serving.latency_us.";
    if (H.Name.rfind(Prefix, 0) != 0)
      continue;
    std::string Model = H.Name.substr(Prefix.size());
    double Ratio = GaugeFor("serving.drift_ratio." + Model);
    T.addRowCells(
        Model,
        formatString("%llu", (unsigned long long)CounterFor(
                                 "serving.requests." + Model)),
        formatString("%.1f", snapshotQuantile(H, 0.50)),
        formatString("%.1f", snapshotQuantile(H, 0.95)),
        formatString("%.1f", snapshotQuantile(H, 0.99)),
        formatString("%.3g%%", GaugeFor("serving.rolling_mape." + Model)),
        Ratio > 0 ? formatString("%.2fx", Ratio) : std::string("-"),
        GaugeFor("serving.drift_flag." + Model) > 0 ? std::string("DRIFT")
                                                    : std::string("ok"));
  }
  return T.numRows() ? T.render() : std::string();
}

std::string renderGaTrajectory(const MetricsSnapshot &M) {
  std::string Out;
  for (const auto &S : M.SeriesList) {
    if (S.Name != "ga.best_fitness" || S.Points.empty())
      continue;
    Out += formatString("GA fitness: %zu generations, first %.6g, best %.6g\n",
                        S.Points.size(), S.Points.front().Y,
                        [&] {
                          double Best = S.Points.front().Y;
                          for (const auto &P : S.Points)
                            Best = std::min(Best, P.Y);
                          return Best;
                        }());
    size_t Step = std::max<size_t>(1, S.Points.size() / 10);
    for (size_t I = 0; I < S.Points.size(); I += Step)
      Out += formatString("  gen %-4.0f best %.6g\n", S.Points[I].X,
                          S.Points[I].Y);
  }
  return Out;
}

std::string renderText(const Report &R, size_t Top) {
  std::string Out;
  Out += formatString("msem_report (reader %s)\n", buildStamp().c_str());
  if (!R.Build.empty())
    Out += formatString("events produced by: %s\n", R.Build.c_str());
  Out += formatString("spans: %zu in %zu trace(s), %zu root(s), depth %zu\n\n",
                      R.Spans.size(),
                      [&] {
                        std::vector<uint64_t> Ids;
                        for (const SpanEvent &S : R.Spans)
                          Ids.push_back(S.TraceId);
                        std::sort(Ids.begin(), Ids.end());
                        Ids.erase(std::unique(Ids.begin(), Ids.end()),
                                  Ids.end());
                        return Ids.size();
                      }(),
                      R.Tree.Roots.size(), R.Tree.depth());

  Out += "Per-phase time breakdown (by self time):\n";
  Out += renderPhaseTable(R);
  if (!R.Phases.empty())
    Out += formatString("slowest phase: %s (%.3f ms self across %zu spans)\n",
                        R.Phases.front().Name.c_str(),
                        ms(R.Phases.front().SelfNs), R.Phases.front().Count);
  Out += "\n";

  if (!R.Stacks.empty()) {
    Out += formatString("Flamegraph summary (top %zu collapsed stacks, "
                        "self ms):\n",
                        R.Stacks.size());
    for (const auto &[Stack, SelfNs] : R.Stacks)
      Out += formatString("  %10.3f  %s\n", ms(SelfNs), Stack.c_str());
    Out += "\n";
  }

  if (!R.SlowPoints.empty()) {
    Out += formatString("Slowest design points (top %zu):\n", Top);
    TablePrinter T({"ms", "Point"});
    for (const SpanEvent &S : R.SlowPoints)
      T.addRowCells(formatString("%.3f", ms(S.DurationNs)),
                    S.Detail.empty() ? std::string("(unlabeled)") : S.Detail);
    Out += T.render();
    Out += "\n";
  }

  if (R.HaveMetrics) {
    std::string Ga = renderGaTrajectory(R.Metrics);
    if (!Ga.empty())
      Out += Ga + "\n";
    std::string Slo = renderSloTable(R.Metrics);
    if (!Slo.empty()) {
      Out += "Serving SLOs:\n";
      Out += Slo;
    }
  }
  return Out;
}

std::string escapeHtml(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '&')
      Out += "&amp;";
    else if (C == '<')
      Out += "&lt;";
    else if (C == '>')
      Out += "&gt;";
    else
      Out += C;
  }
  return Out;
}

std::string renderHtml(const Report &R, size_t Top) {
  std::string Out;
  Out += "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
         "<title>msem report</title><style>body{font-family:monospace;"
         "margin:2em}pre{background:#f6f6f6;padding:1em;"
         "border:1px solid #ddd}</style></head><body>\n";
  Out += "<h1>msem observability report</h1>\n<pre>";
  Out += escapeHtml(renderText(R, Top));
  Out += "</pre>\n</body></html>\n";
  return Out;
}

/// A parsed collapsed-stack profile (SampleProfiler output): per-stack
/// sample counts plus the attribution split needed for the coverage line.
struct ProfileData {
  std::vector<std::pair<std::string, uint64_t>> Stacks;
  uint64_t Total = 0;
  uint64_t Attributed = 0; ///< Samples landing in named spans.
};

/// Parses "stack count" lines (flamegraph.pl collapsed format). Returns
/// false with a diagnostic on a malformed line.
bool parseCollapsedProfile(const std::string &Text, ProfileData &Out,
                           std::string *Error) {
  size_t LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    if (trimString(Line).empty())
      continue;
    size_t Space = Line.rfind(' ');
    if (Space == std::string::npos || Space == 0) {
      if (Error)
        *Error = formatString("line %zu: want \"stack count\"", LineNo);
      return false;
    }
    char *End = nullptr;
    uint64_t Count = std::strtoull(Line.c_str() + Space + 1, &End, 10);
    if (End == Line.c_str() + Space + 1 || *End != '\0') {
      if (Error)
        *Error = formatString("line %zu: malformed sample count", LineNo);
      return false;
    }
    std::string Stack = Line.substr(0, Space);
    Out.Total += Count;
    if (Stack != "(no span)")
      Out.Attributed += Count;
    Out.Stacks.emplace_back(std::move(Stack), Count);
  }
  std::sort(Out.Stacks.begin(), Out.Stacks.end(),
            [](const auto &A, const auto &B) {
              return A.second != B.second ? A.second > B.second
                                          : A.first < B.first;
            });
  return true;
}

std::string renderProfileSection(const ProfileData &P, size_t Top) {
  std::string Out = "== sampling profile ==\n";
  double Coverage = P.Total ? 100.0 * static_cast<double>(P.Attributed) /
                                  static_cast<double>(P.Total)
                            : 0.0;
  Out += formatString("%llu samples, %.1f%% attributed to named spans\n",
                      static_cast<unsigned long long>(P.Total), Coverage);
  TablePrinter T({"samples", "share", "stack"});
  size_t Shown = 0;
  for (const auto &[Stack, Count] : P.Stacks) {
    if (Shown++ >= Top)
      break;
    T.addRow({formatString("%llu", static_cast<unsigned long long>(Count)),
           formatString("%.1f%%", P.Total ? 100.0 *
                                                static_cast<double>(Count) /
                                                static_cast<double>(P.Total)
                                          : 0.0),
           Stack});
  }
  Out += T.render();
  return Out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: msem_report [--check] --events FILE [--events FILE ...]\n"
      "                   [--metrics FILE ...] [--profile FILE ...]\n"
      "                   [--html OUT] [--top N]\n"
      "       msem_report --version\n"
      "\n"
      "events:  structured span JSONL written by MSEM_TELEMETRY=events\n"
      "metrics: snapshot written by MSEM_TELEMETRY=jsonl (JSONL or\n"
      "         OpenMetrics text; autodetected)\n"
      "profile: collapsed flamegraph stacks written by MSEM_PROFILE\n"
      "--check: validate only -- non-zero exit on schema-invalid events,\n"
      "         an empty span tree, invalid OpenMetrics or a malformed\n"
      "         profile\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> EventFiles, MetricFiles, ProfileFiles;
  std::string HtmlPath;
  bool Check = false;
  size_t Top = 10;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "msem_report: %s wants a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--events")
      EventFiles.push_back(Value("--events"));
    else if (Arg == "--metrics")
      MetricFiles.push_back(Value("--metrics"));
    else if (Arg == "--profile")
      ProfileFiles.push_back(Value("--profile"));
    else if (Arg == "--html")
      HtmlPath = Value("--html");
    else if (Arg == "--check")
      Check = true;
    else if (Arg == "--top")
      Top = static_cast<size_t>(
          std::strtoull(Value("--top"), nullptr, 10));
    else if (Arg == "--version") {
      std::printf("msem_report %s\n", buildStamp().c_str());
      return 0;
    } else
      return usage();
  }
  if (EventFiles.empty() && MetricFiles.empty() && ProfileFiles.empty())
    return usage();

  Report R;
  std::string Error;
  for (const std::string &Path : EventFiles) {
    std::string Text;
    if (!readFileText(Path, Text, &Error)) {
      std::fprintf(stderr, "msem_report: %s\n", Error.c_str());
      return 1;
    }
    EventLog Log;
    if (!parseEventsJsonl(Text, Log, &Error)) {
      std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                   Error.c_str());
      return 1;
    }
    if (R.Build.empty())
      R.Build = Log.Build;
    for (SpanEvent &S : Log.Spans)
      R.Spans.push_back(std::move(S));
  }

  for (const std::string &Path : MetricFiles) {
    std::string Text;
    if (!readFileText(Path, Text, &Error)) {
      std::fprintf(stderr, "msem_report: %s\n", Error.c_str());
      return 1;
    }
    if (!Text.empty() && Text[0] == '#') {
      // OpenMetrics exposition text: validate; the terminal report reads
      // the richer JSONL form, so exposition files are check-only.
      if (!validateOpenMetrics(Text, &Error)) {
        std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                     Error.c_str());
        return 1;
      }
    } else {
      MetricsSnapshot M;
      if (!parseMetricsJsonl(Text, M, &Error)) {
        std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                     Error.c_str());
        return 1;
      }
      // Concatenate: later files append (multi-process runs).
      auto &D = R.Metrics;
      D.Counters.insert(D.Counters.end(), M.Counters.begin(),
                        M.Counters.end());
      D.Gauges.insert(D.Gauges.end(), M.Gauges.begin(), M.Gauges.end());
      D.Timers.insert(D.Timers.end(), M.Timers.begin(), M.Timers.end());
      D.Histograms.insert(D.Histograms.end(), M.Histograms.begin(),
                          M.Histograms.end());
      D.SeriesList.insert(D.SeriesList.end(), M.SeriesList.begin(),
                          M.SeriesList.end());
      R.HaveMetrics = true;
    }
  }

  ProfileData Profile;
  bool HaveProfile = false;
  for (const std::string &Path : ProfileFiles) {
    std::string Text;
    if (!readFileText(Path, Text, &Error) ||
        !parseCollapsedProfile(Text, Profile, &Error)) {
      std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                   Error.c_str());
      return 1;
    }
    HaveProfile = true;
  }

  assemble(R, Top);

  if (Check) {
    if (!EventFiles.empty() && R.Tree.Roots.empty()) {
      std::fprintf(stderr, "msem_report: event log has an empty span tree\n");
      return 1;
    }
    std::printf("msem_report: OK -- %zu spans, depth %zu\n", R.Spans.size(),
                R.Tree.depth());
    return 0;
  }

  if (!HtmlPath.empty()) {
    if (!writeFileAtomic(HtmlPath, renderHtml(R, Top), &Error)) {
      std::fprintf(stderr, "msem_report: %s\n", Error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", HtmlPath.c_str());
    return 0;
  }

  if (!EventFiles.empty() || !MetricFiles.empty())
    std::fputs(renderText(R, Top).c_str(), stdout);
  if (HaveProfile)
    std::fputs(renderProfileSection(Profile, Top).c_str(), stdout);
  return 0;
}
