//===- tools/msem_report.cpp - Observability report renderer ----------------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Turns the observability artifacts the pipeline writes -- structured
// span-event logs (MSEM_TELEMETRY=events) and metrics snapshots (JSONL or
// OpenMetrics) -- into a human-readable report:
//
//   msem_report --events msem_events.jsonl [--metrics msem_metrics.jsonl]
//       terminal report: build identity, per-phase time breakdown (the
//       slowest phase named), span-tree shape, a collapsed-stack
//       flamegraph summary, the slowest design-point measurements, the GA
//       fitness trajectory and the serving SLO table.
//
//   msem_report --events E.jsonl --html report.html
//       the same report as a standalone HTML page.
//
//   msem_report --check --events E.jsonl [--metrics M.txt]
//       validation mode for CI: exits non-zero on schema-invalid events,
//       an empty span tree, or an OpenMetrics snapshot that fails the
//       exposition-format parser. Prints nothing but errors.
//
//   msem_report --merge-traces DIR [--trace-out FILE]
//       splices every events*.jsonl in DIR (the coordinator's per-worker
//       redirections plus its own log) into one report: each file's
//       "unix_ns" wall anchor aligns its monotonic span offsets onto a
//       common timeline, and the cross-process parent links the campaign
//       manifest propagated stitch the spans into one causal tree. Also
//       writes a Chrome trace (chrome://tracing / Perfetto) with one pid
//       per source file to FILE (default DIR/trace-merged.json).
//
//   msem_report --slo FILE [--slo-latency-ms MS] [--slo-availability X]
//       SLO/burn-rate table from either serving source (autodetected):
//       a /sloz "msem.sloz.v1" document renders as captured; an
//       "msem.access.v1" access log (MSEM_ACCESS_LOG) is re-aggregated,
//       with burn windows anchored at the last logged request.
//
// Both flags repeat; multiple event logs concatenate into one report
// (multi-process campaigns). Metrics files are format-autodetected:
// OpenMetrics text starts with '#', JSONL with '{'. Multiple --profile
// files merge into one fleet flamegraph (duplicate stacks sum).
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/TablePrinter.h"
#include "telemetry/EventLog.h"
#include "telemetry/OpenMetrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <vector>

using namespace msem;
using namespace msem::telemetry;

namespace {

double ms(uint64_t Ns) { return static_cast<double>(Ns) / 1e6; }

/// Quantile over a snapshot histogram, mirroring Histogram::quantile
/// (linear interpolation within the containing bucket, clamped to the
/// observed max).
double snapshotQuantile(const MetricsSnapshot::HistogramValue &H, double Q) {
  uint64_t Total = 0;
  for (uint64_t C : H.Counts)
    Total += C;
  if (Total == 0)
    return 0.0;
  double Target = Q * static_cast<double>(Total);
  uint64_t Cum = 0;
  for (size_t I = 0; I < H.Counts.size(); ++I) {
    uint64_t Prev = Cum;
    Cum += H.Counts[I];
    if (static_cast<double>(Cum) < Target || H.Counts[I] == 0)
      continue;
    double Lo = I == 0 ? 0.0 : H.Bounds[I - 1];
    double Hi = I < H.Bounds.size() ? H.Bounds[I] : H.Max;
    if (Hi < Lo)
      Hi = Lo;
    double Frac = (Target - static_cast<double>(Prev)) /
                  static_cast<double>(H.Counts[I]);
    double V = Lo + Frac * (Hi - Lo);
    return H.Max > 0 && V > H.Max ? H.Max : V;
  }
  return H.Max;
}

//===----------------------------------------------------------------------===//
// Report assembly
//===----------------------------------------------------------------------===//

/// Everything the renderers need, precomputed once.
struct Report {
  std::string Build;
  std::vector<SpanEvent> Spans;
  SpanTree Tree;
  std::vector<PhaseStat> Phases;
  std::vector<std::pair<std::string, uint64_t>> Stacks;
  std::vector<SpanEvent> SlowPoints;
  MetricsSnapshot Metrics;
  bool HaveMetrics = false;
};

void assemble(Report &R, size_t Top) {
  R.Tree = buildSpanTree(R.Spans);
  R.Phases = aggregatePhases(R.Spans, R.Tree);
  R.Stacks = collapseStacks(R.Spans, R.Tree);
  if (R.Stacks.size() > Top)
    R.Stacks.resize(Top);
  R.SlowPoints = slowestSpans(R.Spans, "surface.point", Top);
}

std::string renderPhaseTable(const Report &R) {
  TablePrinter T({"Phase", "Count", "Total ms", "Self ms", "Max ms"});
  for (const PhaseStat &P : R.Phases)
    T.addRowCells(P.Name, formatString("%zu", P.Count),
                  formatString("%.3f", ms(P.TotalNs)),
                  formatString("%.3f", ms(P.SelfNs)),
                  formatString("%.3f", ms(P.MaxNs)));
  return T.render();
}

std::string renderSloTable(const MetricsSnapshot &M) {
  // serving.latency_us.<model> histograms carry the latency; the rolling
  // error gauges complete the row.
  auto GaugeFor = [&](const std::string &Name) -> double {
    for (const auto &G : M.Gauges)
      if (G.Name == Name)
        return G.Value;
    return 0.0;
  };
  auto CounterFor = [&](const std::string &Name) -> uint64_t {
    for (const auto &C : M.Counters)
      if (C.Name == Name)
        return C.Value;
    return 0;
  };
  TablePrinter T({"Model", "Requests", "p50 us", "p95 us", "p99 us",
                  "Roll MAPE", "Drift", "Flag"});
  for (const auto &H : M.Histograms) {
    const std::string Prefix = "serving.latency_us.";
    if (H.Name.rfind(Prefix, 0) != 0)
      continue;
    std::string Model = H.Name.substr(Prefix.size());
    double Ratio = GaugeFor("serving.drift_ratio." + Model);
    T.addRowCells(
        Model,
        formatString("%llu", (unsigned long long)CounterFor(
                                 "serving.requests." + Model)),
        formatString("%.1f", snapshotQuantile(H, 0.50)),
        formatString("%.1f", snapshotQuantile(H, 0.95)),
        formatString("%.1f", snapshotQuantile(H, 0.99)),
        formatString("%.3g%%", GaugeFor("serving.rolling_mape." + Model)),
        Ratio > 0 ? formatString("%.2fx", Ratio) : std::string("-"),
        GaugeFor("serving.drift_flag." + Model) > 0 ? std::string("DRIFT")
                                                    : std::string("ok"));
  }
  return T.numRows() ? T.render() : std::string();
}

std::string renderGaTrajectory(const MetricsSnapshot &M) {
  std::string Out;
  for (const auto &S : M.SeriesList) {
    if (S.Name != "ga.best_fitness" || S.Points.empty())
      continue;
    Out += formatString("GA fitness: %zu generations, first %.6g, best %.6g\n",
                        S.Points.size(), S.Points.front().Y,
                        [&] {
                          double Best = S.Points.front().Y;
                          for (const auto &P : S.Points)
                            Best = std::min(Best, P.Y);
                          return Best;
                        }());
    size_t Step = std::max<size_t>(1, S.Points.size() / 10);
    for (size_t I = 0; I < S.Points.size(); I += Step)
      Out += formatString("  gen %-4.0f best %.6g\n", S.Points[I].X,
                          S.Points[I].Y);
  }
  return Out;
}

std::string renderText(const Report &R, size_t Top) {
  std::string Out;
  Out += formatString("msem_report (reader %s)\n", buildStamp().c_str());
  if (!R.Build.empty())
    Out += formatString("events produced by: %s\n", R.Build.c_str());
  Out += formatString("spans: %zu in %zu trace(s), %zu root(s), depth %zu\n\n",
                      R.Spans.size(),
                      [&] {
                        std::vector<uint64_t> Ids;
                        for (const SpanEvent &S : R.Spans)
                          Ids.push_back(S.TraceId);
                        std::sort(Ids.begin(), Ids.end());
                        Ids.erase(std::unique(Ids.begin(), Ids.end()),
                                  Ids.end());
                        return Ids.size();
                      }(),
                      R.Tree.Roots.size(), R.Tree.depth());

  Out += "Per-phase time breakdown (by self time):\n";
  Out += renderPhaseTable(R);
  if (!R.Phases.empty())
    Out += formatString("slowest phase: %s (%.3f ms self across %zu spans)\n",
                        R.Phases.front().Name.c_str(),
                        ms(R.Phases.front().SelfNs), R.Phases.front().Count);
  Out += "\n";

  if (!R.Stacks.empty()) {
    Out += formatString("Flamegraph summary (top %zu collapsed stacks, "
                        "self ms):\n",
                        R.Stacks.size());
    for (const auto &[Stack, SelfNs] : R.Stacks)
      Out += formatString("  %10.3f  %s\n", ms(SelfNs), Stack.c_str());
    Out += "\n";
  }

  if (!R.SlowPoints.empty()) {
    Out += formatString("Slowest design points (top %zu):\n", Top);
    TablePrinter T({"ms", "Point"});
    for (const SpanEvent &S : R.SlowPoints)
      T.addRowCells(formatString("%.3f", ms(S.DurationNs)),
                    S.Detail.empty() ? std::string("(unlabeled)") : S.Detail);
    Out += T.render();
    Out += "\n";
  }

  if (R.HaveMetrics) {
    std::string Ga = renderGaTrajectory(R.Metrics);
    if (!Ga.empty())
      Out += Ga + "\n";
    std::string Slo = renderSloTable(R.Metrics);
    if (!Slo.empty()) {
      Out += "Serving SLOs:\n";
      Out += Slo;
    }
  }
  return Out;
}

std::string escapeHtml(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '&')
      Out += "&amp;";
    else if (C == '<')
      Out += "&lt;";
    else if (C == '>')
      Out += "&gt;";
    else
      Out += C;
  }
  return Out;
}

std::string renderHtml(const Report &R, size_t Top) {
  std::string Out;
  Out += "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
         "<title>msem report</title><style>body{font-family:monospace;"
         "margin:2em}pre{background:#f6f6f6;padding:1em;"
         "border:1px solid #ddd}</style></head><body>\n";
  Out += "<h1>msem observability report</h1>\n<pre>";
  Out += escapeHtml(renderText(R, Top));
  Out += "</pre>\n</body></html>\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Stitched distributed traces (--merge-traces)
//===----------------------------------------------------------------------===//

/// One events file feeding the stitched trace: its label (file stem) and
/// its spans, already shifted onto the common timeline.
struct TraceSource {
  std::string Label;
  std::vector<SpanEvent> Spans;
};

/// Chrome trace-event JSON (chrome://tracing, Perfetto): complete "X"
/// events, one pid per source file so coordinator and workers stack as
/// separate process tracks over one time axis.
std::string renderChromeTrace(const std::vector<TraceSource> &Sources) {
  Json Events = Json::array();
  for (size_t Pid = 0; Pid < Sources.size(); ++Pid) {
    Json Meta = Json::object();
    Meta.set("name", Json::string("process_name"));
    Meta.set("ph", Json::string("M"));
    Meta.set("pid", Json::number(static_cast<double>(Pid)));
    Json MetaArgs = Json::object();
    MetaArgs.set("name", Json::string(Sources[Pid].Label));
    Meta.set("args", std::move(MetaArgs));
    Events.push(std::move(Meta));
    for (const SpanEvent &S : Sources[Pid].Spans) {
      Json E = Json::object();
      E.set("name", Json::string(S.Name));
      E.set("ph", Json::string("X"));
      E.set("pid", Json::number(static_cast<double>(Pid)));
      E.set("tid", Json::number(S.ThreadId));
      E.set("ts", Json::number(static_cast<double>(S.StartNs) / 1e3));
      E.set("dur", Json::number(static_cast<double>(S.DurationNs) / 1e3));
      Json Args = Json::object();
      if (!S.Detail.empty())
        Args.set("detail", Json::string(S.Detail));
      Args.set("trace", Json::hexU64(S.TraceId));
      Args.set("span", Json::hexU64(S.SpanId));
      E.set("args", std::move(Args));
      Events.push(std::move(E));
    }
  }
  Json Doc = Json::object();
  Doc.set("traceEvents", std::move(Events));
  Doc.set("displayTimeUnit", Json::string("ms"));
  return Doc.dump() + "\n";
}

//===----------------------------------------------------------------------===//
// SLO/burn-rate table (--slo)
//===----------------------------------------------------------------------===//

/// Burn windows used when re-aggregating an access log (matches the
/// serving::SloTracker windows; a /sloz document carries its own).
constexpr int kSloReportWindowsSeconds[] = {60, 300, 1800};

/// One (endpoint, model) row of the burn table, source-independent.
struct SloRow {
  std::string Endpoint;
  std::string Model;
  uint64_t Requests = 0;
  uint64_t Errors4xx = 0;
  uint64_t Errors5xx = 0;
  uint64_t Slow = 0;
  double P50Us = 0, P99Us = 0;
  std::string Exemplar; ///< "0x..." trace id of a bad request, "" = none.
  /// (window seconds, availability burn, latency burn); 0 s = all time.
  std::vector<std::tuple<int, double, double>> Burn;
};

double burnRate(uint64_t Bad, uint64_t Requests, double Objective) {
  if (Requests == 0)
    return 0.0;
  double Budget = 1.0 - Objective;
  if (Budget <= 0.0)
    Budget = 1e-9;
  return (static_cast<double>(Bad) / static_cast<double>(Requests)) / Budget;
}

/// Rows from a /sloz "msem.sloz.v1" document, as the tracker reported.
std::vector<SloRow> slozRows(const Json &Doc) {
  std::vector<SloRow> Rows;
  for (const Json &K : Doc["keys"].items()) {
    SloRow R;
    R.Endpoint = K["endpoint"].asString();
    R.Model = K["model"].asString();
    R.Requests = static_cast<uint64_t>(K["requests"].asDouble());
    R.Errors4xx = static_cast<uint64_t>(K["errors_4xx"].asDouble());
    R.Errors5xx = static_cast<uint64_t>(K["errors_5xx"].asDouble());
    R.Slow = static_cast<uint64_t>(K["slow"].asDouble());
    R.P50Us = K["latency"]["p50_us"].asDouble();
    R.P99Us = K["latency"]["p99_us"].asDouble();
    if (K.has("exemplar_trace"))
      R.Exemplar = K["exemplar_trace"].asString();
    for (const Json &W : K["burn"].items())
      R.Burn.emplace_back(static_cast<int>(W["window_s"].asDouble()),
                          W["availability_burn"].asDouble(),
                          W["latency_burn"].asDouble());
    Rows.push_back(std::move(R));
  }
  return Rows;
}

/// Rows re-aggregated from "msem.access.v1" lines: exact latency
/// quantiles from the raw samples, burn windows anchored at the last
/// logged request (an offline log has no live "now").
bool accessRows(const std::string &Text, double LatencyObjectiveMs,
                double AvailabilityObjective, std::vector<SloRow> &Rows,
                std::string *Error) {
  struct Record {
    int64_t UnixMs = 0;
    bool Bad5xx = false;
    bool Slow = false;
  };
  struct Agg {
    std::vector<Record> Records;
    std::vector<double> LatenciesUs;
    uint64_t Errors4xx = 0, Errors5xx = 0, Slow = 0;
    std::string Exemplar;
  };
  std::map<std::pair<std::string, std::string>, Agg> Keys;
  int64_t LastMs = 0;
  size_t LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    if (trimString(Line).empty())
      continue;
    std::string ParseError;
    Json V = Json::parse(Line, &ParseError);
    if (!ParseError.empty()) {
      if (Error)
        *Error = formatString("line %zu: %s", LineNo, ParseError.c_str());
      return false;
    }
    if (V["schema"].asString() != "msem.access.v1") {
      if (Error)
        *Error = formatString("line %zu: schema '%s' is not msem.access.v1",
                              LineNo, V["schema"].asString().c_str());
      return false;
    }
    Record Rec;
    Rec.UnixMs = static_cast<int64_t>(V["unix_ms"].asDouble());
    int Status = static_cast<int>(V["status"].asDouble());
    double LatencyUs = V["latency_us"].asDouble();
    Rec.Bad5xx = Status >= 500;
    Rec.Slow = LatencyUs > LatencyObjectiveMs * 1000.0;
    LastMs = std::max(LastMs, Rec.UnixMs);
    Agg &A = Keys[{V["endpoint"].asString(), V["model"].asString()}];
    A.LatenciesUs.push_back(LatencyUs);
    A.Errors4xx += Status >= 400 && Status < 500 ? 1 : 0;
    A.Errors5xx += Rec.Bad5xx ? 1 : 0;
    A.Slow += Rec.Slow ? 1 : 0;
    if ((Status >= 400 || Rec.Slow) && V.has("trace"))
      A.Exemplar = V["trace"].asString();
    A.Records.push_back(Rec);
  }

  for (auto &[Key, A] : Keys) {
    SloRow R;
    R.Endpoint = Key.first;
    R.Model = Key.second;
    R.Requests = A.Records.size();
    R.Errors4xx = A.Errors4xx;
    R.Errors5xx = A.Errors5xx;
    R.Slow = A.Slow;
    R.Exemplar = A.Exemplar;
    std::sort(A.LatenciesUs.begin(), A.LatenciesUs.end());
    auto Quantile = [&](double Q) {
      return A.LatenciesUs.empty()
                 ? 0.0
                 : A.LatenciesUs[static_cast<size_t>(
                       Q * (A.LatenciesUs.size() - 1))];
    };
    R.P50Us = Quantile(0.50);
    R.P99Us = Quantile(0.99);
    for (int WindowS : kSloReportWindowsSeconds) {
      uint64_t Req = 0, Bad5 = 0, Slow = 0;
      for (const Record &Rec : A.Records) {
        if (Rec.UnixMs <= LastMs - static_cast<int64_t>(WindowS) * 1000)
          continue;
        ++Req;
        Bad5 += Rec.Bad5xx ? 1 : 0;
        Slow += Rec.Slow ? 1 : 0;
      }
      R.Burn.emplace_back(WindowS, burnRate(Bad5, Req, AvailabilityObjective),
                          burnRate(Slow, Req, AvailabilityObjective));
    }
    R.Burn.emplace_back(0,
                        burnRate(A.Errors5xx, R.Requests,
                                 AvailabilityObjective),
                        burnRate(A.Slow, R.Requests, AvailabilityObjective));
    Rows.push_back(std::move(R));
  }
  return true;
}

std::string renderBurnTable(const std::vector<SloRow> &Rows) {
  std::vector<std::string> Headers = {"Endpoint", "Model",  "Req",
                                      "4xx",      "5xx",    "Slow",
                                      "p50 us",   "p99 us"};
  if (!Rows.empty())
    for (const auto &[WindowS, AvailBurn, LatBurn] : Rows.front().Burn)
      Headers.push_back(WindowS ? formatString("burn %ds", WindowS)
                                : std::string("burn all"));
  Headers.push_back("exemplar");
  TablePrinter T(Headers);
  for (const SloRow &R : Rows) {
    std::vector<std::string> Cells = {
        R.Endpoint,
        R.Model.empty() ? "-" : R.Model,
        formatString("%llu", static_cast<unsigned long long>(R.Requests)),
        formatString("%llu", static_cast<unsigned long long>(R.Errors4xx)),
        formatString("%llu", static_cast<unsigned long long>(R.Errors5xx)),
        formatString("%llu", static_cast<unsigned long long>(R.Slow)),
        formatString("%.1f", R.P50Us),
        formatString("%.1f", R.P99Us)};
    for (const auto &[WindowS, AvailBurn, LatBurn] : R.Burn)
      Cells.push_back(formatString("%.2f/%.2f", AvailBurn, LatBurn));
    Cells.push_back(R.Exemplar.empty() ? "-" : R.Exemplar);
    T.addRow(Cells);
  }
  std::string Out = "Serving SLO burn rates (availability/latency; 1.0 = "
                    "burning the error budget at the sustainable rate):\n";
  Out += T.render();
  return Out;
}

/// A parsed collapsed-stack profile (SampleProfiler output): per-stack
/// sample counts plus the attribution split needed for the coverage line.
struct ProfileData {
  std::vector<std::pair<std::string, uint64_t>> Stacks;
  uint64_t Total = 0;
  uint64_t Attributed = 0; ///< Samples landing in named spans.
};

/// Parses "stack count" lines (flamegraph.pl collapsed format). Returns
/// false with a diagnostic on a malformed line.
bool parseCollapsedProfile(const std::string &Text, ProfileData &Out,
                           std::string *Error) {
  size_t LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    if (trimString(Line).empty())
      continue;
    size_t Space = Line.rfind(' ');
    if (Space == std::string::npos || Space == 0) {
      if (Error)
        *Error = formatString("line %zu: want \"stack count\"", LineNo);
      return false;
    }
    char *End = nullptr;
    uint64_t Count = std::strtoull(Line.c_str() + Space + 1, &End, 10);
    if (End == Line.c_str() + Space + 1 || *End != '\0') {
      if (Error)
        *Error = formatString("line %zu: malformed sample count", LineNo);
      return false;
    }
    std::string Stack = Line.substr(0, Space);
    Out.Total += Count;
    if (Stack != "(no span)")
      Out.Attributed += Count;
    Out.Stacks.emplace_back(std::move(Stack), Count);
  }
  return true;
}

/// Merges duplicate stacks (the same frames sampled in several worker
/// profiles sum into one fleet-wide count) and sorts by weight.
void finalizeProfile(ProfileData &P) {
  std::map<std::string, uint64_t> Summed;
  for (auto &[Stack, Count] : P.Stacks)
    Summed[Stack] += Count;
  P.Stacks.assign(Summed.begin(), Summed.end());
  std::sort(P.Stacks.begin(), P.Stacks.end(),
            [](const auto &A, const auto &B) {
              return A.second != B.second ? A.second > B.second
                                          : A.first < B.first;
            });
}

std::string renderProfileSection(const ProfileData &P, size_t Top) {
  std::string Out = "== sampling profile ==\n";
  double Coverage = P.Total ? 100.0 * static_cast<double>(P.Attributed) /
                                  static_cast<double>(P.Total)
                            : 0.0;
  Out += formatString("%llu samples, %.1f%% attributed to named spans\n",
                      static_cast<unsigned long long>(P.Total), Coverage);
  TablePrinter T({"samples", "share", "stack"});
  size_t Shown = 0;
  for (const auto &[Stack, Count] : P.Stacks) {
    if (Shown++ >= Top)
      break;
    T.addRow({formatString("%llu", static_cast<unsigned long long>(Count)),
           formatString("%.1f%%", P.Total ? 100.0 *
                                                static_cast<double>(Count) /
                                                static_cast<double>(P.Total)
                                          : 0.0),
           Stack});
  }
  Out += T.render();
  return Out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: msem_report [--check] --events FILE [--events FILE ...]\n"
      "                   [--metrics FILE ...] [--profile FILE ...]\n"
      "                   [--merge-traces DIR] [--trace-out FILE]\n"
      "                   [--slo FILE] [--slo-latency-ms MS]\n"
      "                   [--slo-availability X]\n"
      "                   [--html OUT] [--top N]\n"
      "       msem_report --version\n"
      "\n"
      "events:  structured span JSONL written by MSEM_TELEMETRY=events\n"
      "metrics: snapshot written by MSEM_TELEMETRY=jsonl (JSONL or\n"
      "         OpenMetrics text; autodetected)\n"
      "profile: collapsed flamegraph stacks written by MSEM_PROFILE\n"
      "         (several files merge: duplicate stacks sum)\n"
      "--merge-traces DIR\n"
      "         splice every events*.jsonl in DIR (a campaign shard dir)\n"
      "         into one stitched timeline; also writes a Chrome trace to\n"
      "         --trace-out (default DIR/trace-merged.json)\n"
      "--slo FILE\n"
      "         SLO burn-rate table from a /sloz msem.sloz.v1 capture or\n"
      "         an msem.access.v1 access log (autodetected); objectives\n"
      "         for access-log aggregation come from --slo-latency-ms\n"
      "         (default 100) and --slo-availability (default 0.999)\n"
      "--check: validate only -- non-zero exit on schema-invalid events,\n"
      "         an empty span tree, invalid OpenMetrics, a malformed\n"
      "         profile or a malformed SLO source\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> EventFiles, MetricFiles, ProfileFiles, SloFiles;
  std::string HtmlPath, MergeTracesDir, TraceOut;
  bool Check = false;
  size_t Top = 10;
  double SloLatencyMs = 100.0;
  double SloAvailability = 0.999;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "msem_report: %s wants a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--events")
      EventFiles.push_back(Value("--events"));
    else if (Arg == "--metrics")
      MetricFiles.push_back(Value("--metrics"));
    else if (Arg == "--profile")
      ProfileFiles.push_back(Value("--profile"));
    else if (Arg == "--merge-traces")
      MergeTracesDir = Value("--merge-traces");
    else if (Arg == "--trace-out")
      TraceOut = Value("--trace-out");
    else if (Arg == "--slo")
      SloFiles.push_back(Value("--slo"));
    else if (Arg == "--slo-latency-ms")
      SloLatencyMs = std::strtod(Value("--slo-latency-ms"), nullptr);
    else if (Arg == "--slo-availability")
      SloAvailability = std::strtod(Value("--slo-availability"), nullptr);
    else if (Arg == "--html")
      HtmlPath = Value("--html");
    else if (Arg == "--check")
      Check = true;
    else if (Arg == "--top")
      Top = static_cast<size_t>(
          std::strtoull(Value("--top"), nullptr, 10));
    else if (Arg == "--version") {
      std::printf("msem_report %s\n", buildStamp().c_str());
      return 0;
    } else
      return usage();
  }
  if (EventFiles.empty() && MetricFiles.empty() && ProfileFiles.empty() &&
      MergeTracesDir.empty() && SloFiles.empty())
    return usage();

  Report R;
  std::string Error;
  for (const std::string &Path : EventFiles) {
    std::string Text;
    if (!readFileText(Path, Text, &Error)) {
      std::fprintf(stderr, "msem_report: %s\n", Error.c_str());
      return 1;
    }
    EventLog Log;
    if (!parseEventsJsonl(Text, Log, &Error)) {
      std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                   Error.c_str());
      return 1;
    }
    if (R.Build.empty())
      R.Build = Log.Build;
    for (SpanEvent &S : Log.Spans)
      R.Spans.push_back(std::move(S));
  }

  // --merge-traces: every events*.jsonl in the directory, wall-anchored
  // onto one timeline.
  std::vector<TraceSource> TraceSources;
  if (!MergeTracesDir.empty()) {
    std::vector<std::string> Files;
    std::error_code Ec;
    for (const auto &Entry :
         std::filesystem::directory_iterator(MergeTracesDir, Ec)) {
      std::string Name = Entry.path().filename().string();
      if (Name.rfind("events", 0) == 0 &&
          Name.size() >= 6 + 6 /* "events" + ".jsonl" */ &&
          Name.compare(Name.size() - 6, 6, ".jsonl") == 0)
        Files.push_back(Entry.path().string());
    }
    if (Ec) {
      std::fprintf(stderr, "msem_report: %s: %s\n", MergeTracesDir.c_str(),
                   Ec.message().c_str());
      return 1;
    }
    if (Files.empty()) {
      std::fprintf(stderr,
                   "msem_report: no events*.jsonl under '%s' (workers "
                   "write them when the campaign runs with "
                   "MSEM_TELEMETRY=events)\n",
                   MergeTracesDir.c_str());
      return 1;
    }
    std::sort(Files.begin(), Files.end());

    std::vector<EventLog> Logs;
    uint64_t BaseUnixNs = 0;
    for (const std::string &Path : Files) {
      std::string Text;
      EventLog Log;
      if (!readFileText(Path, Text, &Error) ||
          !parseEventsJsonl(Text, Log, &Error)) {
        std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                     Error.c_str());
        return 1;
      }
      if (Log.UnixNs && (!BaseUnixNs || Log.UnixNs < BaseUnixNs))
        BaseUnixNs = Log.UnixNs;
      Logs.push_back(std::move(Log));
    }
    for (size_t I = 0; I < Logs.size(); ++I) {
      // Each file's spans are monotonic offsets from its own telemetry
      // init; the unix_ns anchor shifts them onto the earliest file's
      // axis. Anchor-less (pre-field) logs stay at their raw offsets.
      uint64_t Offset =
          Logs[I].UnixNs && BaseUnixNs ? Logs[I].UnixNs - BaseUnixNs : 0;
      TraceSource Src;
      Src.Label =
          std::filesystem::path(Files[I]).filename().stem().string();
      for (SpanEvent &S : Logs[I].Spans) {
        S.StartNs += Offset;
        Src.Spans.push_back(S);
        R.Spans.push_back(std::move(S));
      }
      if (R.Build.empty())
        R.Build = Logs[I].Build;
      TraceSources.push_back(std::move(Src));
    }
  }

  // --slo: a /sloz capture or an access log, autodetected per file.
  std::vector<SloRow> SloRows;
  bool HaveSlo = false;
  for (const std::string &Path : SloFiles) {
    std::string Text;
    if (!readFileText(Path, Text, &Error)) {
      std::fprintf(stderr, "msem_report: %s\n", Error.c_str());
      return 1;
    }
    std::string ParseError;
    Json Doc = Json::parse(Text, &ParseError);
    if (ParseError.empty() && Doc["schema"].asString() == "msem.sloz.v1") {
      std::vector<SloRow> Rows = slozRows(Doc);
      SloRows.insert(SloRows.end(), Rows.begin(), Rows.end());
    } else if (!accessRows(Text, SloLatencyMs, SloAvailability, SloRows,
                           &Error)) {
      std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                   Error.c_str());
      return 1;
    }
    HaveSlo = true;
  }

  for (const std::string &Path : MetricFiles) {
    std::string Text;
    if (!readFileText(Path, Text, &Error)) {
      std::fprintf(stderr, "msem_report: %s\n", Error.c_str());
      return 1;
    }
    if (!Text.empty() && Text[0] == '#') {
      // OpenMetrics exposition text: validate; the terminal report reads
      // the richer JSONL form, so exposition files are check-only.
      if (!validateOpenMetrics(Text, &Error)) {
        std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                     Error.c_str());
        return 1;
      }
    } else {
      MetricsSnapshot M;
      if (!parseMetricsJsonl(Text, M, &Error)) {
        std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                     Error.c_str());
        return 1;
      }
      // Concatenate: later files append (multi-process runs).
      auto &D = R.Metrics;
      D.Counters.insert(D.Counters.end(), M.Counters.begin(),
                        M.Counters.end());
      D.Gauges.insert(D.Gauges.end(), M.Gauges.begin(), M.Gauges.end());
      D.Timers.insert(D.Timers.end(), M.Timers.begin(), M.Timers.end());
      D.Histograms.insert(D.Histograms.end(), M.Histograms.begin(),
                          M.Histograms.end());
      D.SeriesList.insert(D.SeriesList.end(), M.SeriesList.begin(),
                          M.SeriesList.end());
      R.HaveMetrics = true;
    }
  }

  ProfileData Profile;
  bool HaveProfile = false;
  for (const std::string &Path : ProfileFiles) {
    std::string Text;
    if (!readFileText(Path, Text, &Error) ||
        !parseCollapsedProfile(Text, Profile, &Error)) {
      std::fprintf(stderr, "msem_report: %s: %s\n", Path.c_str(),
                   Error.c_str());
      return 1;
    }
    HaveProfile = true;
  }
  if (HaveProfile)
    finalizeProfile(Profile);

  assemble(R, Top);

  if (!TraceSources.empty() && !Check) {
    std::string Out = TraceOut.empty()
                          ? (std::filesystem::path(MergeTracesDir) /
                             "trace-merged.json")
                                .string()
                          : TraceOut;
    if (!writeFileAtomic(Out, renderChromeTrace(TraceSources), &Error)) {
      std::fprintf(stderr, "msem_report: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "msem_report: wrote stitched Chrome trace %s "
                         "(%zu sources)\n",
                 Out.c_str(), TraceSources.size());
  }

  if (Check) {
    if ((!EventFiles.empty() || !TraceSources.empty()) &&
        R.Tree.Roots.empty()) {
      std::fprintf(stderr, "msem_report: event log has an empty span tree\n");
      return 1;
    }
    if (HaveSlo && SloRows.empty()) {
      std::fprintf(stderr,
                   "msem_report: SLO input carries no (endpoint, model) "
                   "keys\n");
      return 1;
    }
    std::printf("msem_report: OK -- %zu spans, depth %zu\n", R.Spans.size(),
                R.Tree.depth());
    return 0;
  }

  if (!HtmlPath.empty()) {
    if (!writeFileAtomic(HtmlPath, renderHtml(R, Top), &Error)) {
      std::fprintf(stderr, "msem_report: %s\n", Error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", HtmlPath.c_str());
    return 0;
  }

  if (!EventFiles.empty() || !MetricFiles.empty() || !TraceSources.empty())
    std::fputs(renderText(R, Top).c_str(), stdout);
  if (HaveSlo)
    std::fputs(renderBurnTable(SloRows).c_str(), stdout);
  if (HaveProfile)
    std::fputs(renderProfileSection(Profile, Top).c_str(), stdout);
  return 0;
}
