//===- tools/msem_serve.cpp - Networked prediction server ------------------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The registry, served over the network: msem_serve binds a
// thread-per-core epoll HTTP/1.1 server (serving/HttpServer) onto the
// process-wide route table and answers msem.predict.v1 requests from
// published model artifacts -- the same PredictionService the batch CLI
// uses, so a row predicted over HTTP is bitwise identical to the same
// row predicted by `msem_predict --in`.
//
//   msem_serve --registry DIR [--host H] [--port P] [--threads N]
//              [--reload-ms MS] [--port-file FILE]
//              [--max-rows N] [--drift-threshold X]
//              [--slo-latency-ms MS] [--slo-availability X]
//              [--expose-introspection]
//
// Endpoints (one port serves them all):
//
//   POST /v1/predict   msem.predict.v1 document in; json/csv/jsonl out
//   GET  /v1/models    the manifest as a JSON inventory
//   GET  /metrics      live OpenMetrics exposition (serving histograms
//                      and msem_red_* families included)
//   GET  /sloz         msem.sloz.v1: per-(endpoint, model) RED totals,
//                      latency quantiles, exemplar trace ids and
//                      multi-window error-budget burn rates
//   GET  /healthz      liveness + registered health providers
//   GET  /statusz      status sections (serving SLO table, reload state)
//   GET  /             endpoint index
//
// Every request outcome is also recorded by a serving::SloTracker:
// MSEM_ACCESS_LOG=FILE appends one "msem.access.v1" JSONL object per
// request, carrying the trace id that links the line back to its span
// tree. Recording happens after the response bytes are built, so the
// SLO engine can never perturb a prediction.
//
// The introspection plane (/metrics, /statusz, /tracez, /profilez) was
// designed loopback-only, so it rides the serving port only when --host
// is a loopback address. On any other host the server carries just the
// serving routes plus /healthz; pass --expose-introspection to serve
// the full plane anyway (unauthenticated -- put it behind a proxy).
//
// Hot reload: a watch thread polls the registry manifest's change
// signature every --reload-ms; any publish drops the artifact cache, so
// the next request on each key deserializes the new version while
// requests already in flight drain on the artifacts they pinned at
// admission. Zero downtime, no locks across the cutover.
//
// --port 0 asks the kernel for a free port; --port-file writes the bound
// port (atomic rename) so scripts can wait for it.
//
//===----------------------------------------------------------------------===//

#include "registry/ServingMonitor.h"
#include "serving/HttpServer.h"
#include "serving/PredictionService.h"
#include "serving/SloTracker.h"
#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/StatsServer.h"
#include "telemetry/Introspection.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace msem;

namespace {

volatile std::sig_atomic_t SignalFlag = 0;

void onSignal(int Sig) { SignalFlag = Sig; }

int usage() {
  std::fprintf(
      stderr,
      "usage: msem_serve --registry DIR [options]\n"
      "       msem_serve --version\n"
      "\n"
      "  --registry DIR        registry root (or MSEM_REGISTRY_DIR)\n"
      "  --host H              listen address (default 127.0.0.1)\n"
      "  --port P              listen port (default 8707; 0 = kernel-"
      "assigned)\n"
      "  --port-file FILE      write the bound port to FILE once listening\n"
      "  --threads N           event-loop threads (default 2)\n"
      "  --reload-ms MS        manifest watch period (default 1000; 0 "
      "disables)\n"
      "  --max-rows N          per-request row limit (default 4096)\n"
      "  --idle-timeout-ms MS  close connections idle this long (default "
      "30000)\n"
      "  --drift-threshold X   rolling-MAPE drift multiple "
      "(MSEM_DRIFT_THRESHOLD)\n"
      "  --slo-latency-ms MS   latency objective: slower responses burn "
      "the\n"
      "                        latency error budget (default 100)\n"
      "  --slo-availability X  good-fraction objective in (0,1) shared "
      "by\n"
      "                        both SLOs (default 0.999)\n"
      "  --expose-introspection\n"
      "                        serve /metrics, /statusz, /tracez and\n"
      "                        /profilez on a non-loopback --host too\n"
      "                        (unauthenticated; loopback hosts always\n"
      "                        get them)\n");
  return 2;
}

/// True for the addresses the AF_INET listener treats as loopback (the
/// whole 127.0.0.0/8 block).
bool isLoopbackHost(const std::string &Host) {
  return Host == "localhost" || Host.rfind("127.", 0) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string RegistryDir = env().RegistryDir;
  std::string Host = "127.0.0.1";
  std::string PortFile;
  int Port = 8707;
  int Threads = 2;
  int ReloadMs = 1000;
  int IdleTimeoutMs = 30000;
  size_t MaxRows = 4096;
  bool ExposeIntrospection = false;
  ServingMonitor::Options MonOpts = ServingMonitor::optionsFromEnv();
  serving::SloTracker::Options SloOpts;
  SloOpts.AccessLogPath = env().AccessLog;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "msem_serve: %s wants a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--registry")
      RegistryDir = Value("--registry");
    else if (Arg == "--host")
      Host = Value("--host");
    else if (Arg == "--port")
      Port = std::atoi(Value("--port"));
    else if (Arg == "--port-file")
      PortFile = Value("--port-file");
    else if (Arg == "--threads")
      Threads = std::atoi(Value("--threads"));
    else if (Arg == "--reload-ms")
      ReloadMs = std::atoi(Value("--reload-ms"));
    else if (Arg == "--idle-timeout-ms")
      IdleTimeoutMs = std::atoi(Value("--idle-timeout-ms"));
    else if (Arg == "--max-rows")
      MaxRows = static_cast<size_t>(
          std::strtoull(Value("--max-rows"), nullptr, 10));
    else if (Arg == "--drift-threshold")
      MonOpts.DriftThreshold =
          std::strtod(Value("--drift-threshold"), nullptr);
    else if (Arg == "--slo-latency-ms")
      SloOpts.LatencyObjectiveMs =
          std::strtod(Value("--slo-latency-ms"), nullptr);
    else if (Arg == "--slo-availability")
      SloOpts.AvailabilityObjective =
          std::strtod(Value("--slo-availability"), nullptr);
    else if (Arg == "--expose-introspection")
      ExposeIntrospection = true;
    else if (Arg == "--version") {
      std::printf("msem_serve %s\n", buildStamp().c_str());
      return 0;
    } else
      return usage();
  }

  if (RegistryDir.empty()) {
    std::fprintf(
        stderr,
        "msem_serve: no registry (--registry or MSEM_REGISTRY_DIR)\n");
    return 2;
  }

  // /metrics, /tracez, /profilez and the telemetry status section land on
  // the process-wide router. That plane is unauthenticated and was
  // loopback-only by design, so the epoll transport serves it only when
  // the listen address is loopback (or --expose-introspection says so);
  // a public host gets a dedicated router carrying just the serving
  // routes plus /healthz.
  telemetry::ensureIntrospection();
  bool ServeIntrospection = ExposeIntrospection || isLoopbackHost(Host);

  HttpRouter PublicRouter; ///< Outlives Service's ScopedRoutes below.
  HttpRouter &ServeRouter =
      ServeIntrospection ? StatsServer::router() : PublicRouter;

  if (!(SloOpts.AvailabilityObjective > 0.0 &&
        SloOpts.AvailabilityObjective < 1.0)) {
    std::fprintf(stderr,
                 "msem_serve: --slo-availability wants a value in (0,1)\n");
    return 2;
  }
  serving::SloTracker Slo(SloOpts);
  // /sloz rides the introspection plane: the loopback StatsServer router
  // always carries it, and the serving port exposes it exactly when it
  // exposes /metrics.
  ScopedRoute SlozRoute(StatsServer::router(), "GET", "/sloz",
                        [&Slo](const HttpRequest &) {
                          HttpResponse Resp;
                          Resp.ContentType = "application/json";
                          Resp.Body = Slo.renderSloz().dumpPretty();
                          return Resp;
                        });

  serving::PredictionService::Options SvcOpts;
  SvcOpts.RegistryDir = RegistryDir;
  SvcOpts.MaxBatchRows = MaxRows;
  SvcOpts.Monitor = MonOpts;
  SvcOpts.Slo = &Slo;
  serving::PredictionService Service(std::move(SvcOpts));
  Service.registerRoutes(ServeRouter);
  if (ReloadMs > 0)
    Service.startReloadWatch(ReloadMs);

  std::vector<ScopedRoute> PublicRoutes;
  PublicRoutes.reserve(2); // Also sidesteps a GCC-12 -Warray-bounds FP.
  if (!ServeIntrospection) {
    PublicRoutes.emplace_back(PublicRouter, "GET", "/healthz",
                              [](const HttpRequest &R) {
                                return StatsServer::router().dispatch(R);
                              });
    PublicRoutes.emplace_back(
        PublicRouter, "GET", "/", [&PublicRouter](const HttpRequest &) {
          HttpResponse Resp;
          Resp.Body = "msem_serve endpoints:\n";
          for (const std::string &Path : PublicRouter.paths())
            Resp.Body += "  " + Path + "\n";
          return Resp;
        });
    std::fprintf(stderr,
                 "msem_serve: host '%s' is not loopback; /metrics, "
                 "/statusz, /tracez and /profilez stay off this port "
                 "(--expose-introspection overrides)\n",
                 Host.c_str());
  }

  serving::HttpServer::Options SrvOpts;
  SrvOpts.Host = Host;
  SrvOpts.Port = Port;
  SrvOpts.Threads = Threads;
  SrvOpts.IdleTimeoutMs = IdleTimeoutMs;
  SrvOpts.Slo = &Slo;
  serving::HttpServer Server(ServeRouter, SrvOpts);

  ScopedStatusProvider ServeStatus("serve", [&] {
    serving::HttpServer::Stats S = Server.stats();
    return formatString(
        "listen: %s:%d (%d loops)\nregistry: %s\nreloads: %llu\n"
        "accepted: %llu\nrequests: %llu\nparse_errors: %llu\n"
        "timed_out: %llu\n",
        Server.options().Host.c_str(), Server.port(),
        Server.options().Threads, Service.registry().options().Dir.c_str(),
        static_cast<unsigned long long>(Service.reloadCount()),
        static_cast<unsigned long long>(S.Accepted),
        static_cast<unsigned long long>(S.Requests),
        static_cast<unsigned long long>(S.ParseErrors),
        static_cast<unsigned long long>(S.TimedOut));
  });

  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "msem_serve: %s\n", Error.c_str());
    return 1;
  }

  if (!PortFile.empty() &&
      !writeFileAtomic(PortFile, std::to_string(Server.port()) + "\n",
                       &Error)) {
    std::fprintf(stderr, "msem_serve: %s\n", Error.c_str());
    Server.stop();
    return 1;
  }

  std::vector<RegistryEntry> Models = Service.registry().list();
  std::fprintf(stderr,
               "msem_serve: listening on %s:%d (%d loops), registry '%s' "
               "(%zu models), build %s\n",
               Host.c_str(), Server.port(), Threads, RegistryDir.c_str(),
               Models.size(), buildStamp().c_str());

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (!SignalFlag)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::fprintf(stderr, "msem_serve: signal %d, draining\n",
               static_cast<int>(SignalFlag));
  Server.stop();
  Service.stopReloadWatch();
  return 0;
}
