//===- tools/msem_bench_diff.cpp - Benchmark regression sentinel ----------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Compares fresh results/BENCH_*.json files against the committed
// baselines in results/baselines/ and reports per-metric deltas with
// noise-tolerant thresholds:
//
//   msem_bench_diff --against results/baselines [--results results]
//       delta table on stdout; exit 0 regardless of verdicts.
//
//   msem_bench_diff --against results/baselines --fail-on-regress
//       the CI gate: exit 1 on any regression, config mismatch or
//       unparseable file (tools/msem_lint.sh runs this after the fast
//       benches).
//
//   ... --markdown deltas.md
//       also writes the GitHub-flavoured markdown delta table.
//
// Thresholds: --threshold R (default 0.10) for model-quality metrics,
// --time-threshold R (default 0.50) for timing/throughput metrics,
// --tail-threshold R (default 1.50) for tail-latency quantiles
// (p95/p99/max_us), whose single-run values are jitter-dominated; see
// support/BenchCompare.h for the direction vocabulary. Baselines are
// recorded with tools/msem_bench_baseline.sh at a pinned scale, so config
// drift (different MSEM_TRAIN_N etc.) is a hard failure rather than a
// silent apples-to-oranges pass.
//
//===----------------------------------------------------------------------===//

#include "support/BenchCompare.h"
#include "support/BuildInfo.h"
#include "support/FileSystem.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace msem;
using namespace msem::bench;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: msem_bench_diff --against BASELINE_DIR [--results DIR]\n"
      "                       [--threshold R] [--time-threshold R]\n"
      "                       [--tail-threshold R]\n"
      "                       [--wall-time] [--markdown OUT]\n"
      "                       [--fail-on-regress]\n"
      "       msem_bench_diff --version\n"
      "\n"
      "Compares BENCH_*.json results (default dir: results) against the\n"
      "committed baselines and classifies every shared metric as ok /\n"
      "IMPROVED / REGRESSED. --fail-on-regress exits non-zero on any\n"
      "regression, config mismatch or unreadable file.\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string BaselineDir, ResultsDir = "results", MarkdownPath;
  CompareOptions Opts;
  bool FailOnRegress = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "msem_bench_diff: %s wants a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--against")
      BaselineDir = Value("--against");
    else if (Arg == "--results")
      ResultsDir = Value("--results");
    else if (Arg == "--threshold")
      Opts.MetricThreshold = std::strtod(Value("--threshold"), nullptr);
    else if (Arg == "--time-threshold")
      Opts.TimeThreshold = std::strtod(Value("--time-threshold"), nullptr);
    else if (Arg == "--tail-threshold")
      Opts.TailThreshold = std::strtod(Value("--tail-threshold"), nullptr);
    else if (Arg == "--wall-time")
      Opts.CompareWallTime = true;
    else if (Arg == "--markdown")
      MarkdownPath = Value("--markdown");
    else if (Arg == "--fail-on-regress")
      FailOnRegress = true;
    else if (Arg == "--version") {
      std::printf("msem_bench_diff %s\n", buildStamp().c_str());
      return 0;
    } else
      return usage();
  }
  if (BaselineDir.empty())
    return usage();

  std::vector<std::string> LoadErrors;
  std::vector<BenchResult> Baseline = loadBenchDir(BaselineDir, &LoadErrors);
  std::vector<BenchResult> Current = loadBenchDir(ResultsDir, &LoadErrors);
  if (Baseline.empty() && LoadErrors.empty()) {
    std::fprintf(stderr,
                 "msem_bench_diff: no BENCH_*.json baselines in %s "
                 "(record them with tools/msem_bench_baseline.sh)\n",
                 BaselineDir.c_str());
    return FailOnRegress ? 1 : 0;
  }

  CompareReport Report = compareBenches(Baseline, Current, Opts);
  Report.LoadErrors = std::move(LoadErrors);

  std::fputs(renderCompareText(Report).c_str(), stdout);
  if (!MarkdownPath.empty()) {
    std::string Error;
    if (!writeFileAtomic(MarkdownPath, renderCompareMarkdown(Report),
                         &Error)) {
      std::fprintf(stderr, "msem_bench_diff: %s\n", Error.c_str());
      return 1;
    }
  }

  if (FailOnRegress && Report.hasFailures()) {
    std::fprintf(stderr, "msem_bench_diff: FAILED (%zu regressions, %zu "
                         "mismatches, %zu errors)\n",
                 Report.regressions(), Report.Mismatches.size(),
                 Report.LoadErrors.size());
    return 1;
  }
  return 0;
}
