#!/usr/bin/env bash
# msem_tsan: ThreadSanitizer run of the concurrency-sensitive test suite.
#
# Builds the tree with -fsanitize=thread in a dedicated build directory,
# then runs the tests that exercise the parallel engine -- the thread-pool
# unit tests, the MSEM_THREADS=1-vs-8 determinism suite, the telemetry
# stress test, the simulator re-entrancy test, the campaign
# checkpoint/resume suite and the registry publish/fetch suite -- with a
# 4-thread global pool and telemetry enabled, so every lock and atomic in
# the parallel measurement/fitting/serving stack is exercised under the
# race detector. Any TSan report fails the run (halt_on_error).
#
# Usage: tools/msem_tsan.sh [build-dir]   (default: build-tsan)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

TESTS=(support_test parallel_test trace_replay_test telemetry_test sampling_test registry_test campaign_test)

cmake -B "$BUILD_DIR" -S . -DMSEM_TSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export MSEM_THREADS=4
export MSEM_TELEMETRY=summary
for T in "${TESTS[@]}"; do
  echo "== tsan: $T (MSEM_THREADS=$MSEM_THREADS) =="
  "$BUILD_DIR/tests/$T"
done

echo "msem_tsan: OK (no data races reported)"
