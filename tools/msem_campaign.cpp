//===- tools/msem_campaign.cpp - Distributed campaign CLI ------------------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
// The consolidated campaign command surface: run a campaign (single- or
// multi-process), act as a measurement worker, merge worker shards into a
// checkpoint offline, or print a canonical checkpoint digest for
// byte-comparison across runs. See --help for the full inventory.
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "campaign/Checkpoint.h"
#include "campaign/Coordinator.h"
#include "campaign/ShardStore.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/Json.h"
#include "telemetry/Introspection.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace msem;

namespace {

const char *kUsage = R"(msem_campaign -- run, distribute, and inspect measurement campaigns

USAGE
  msem_campaign run    [--workload NAME]... [--workers N] [--shard-dir DIR]
                       [--checkpoint PATH] [--registry DIR] [--resume]
  msem_campaign worker [--dir DIR] [--id K]
  msem_campaign merge  --dir DIR --checkpoint PATH
  msem_campaign digest --checkpoint PATH
  msem_campaign --help

SUBCOMMANDS
  run     Runs a campaign at the environment-configured scale. With
          --workers N > 0 (or MSEM_WORKERS), measurement fans out across N
          worker processes through a shared shard directory; the merged
          checkpoint, registry artifacts and predictions are bitwise
          identical to the single-process run at any worker count and any
          MSEM_THREADS. --resume continues the checkpoint at --checkpoint
          instead of starting fresh (same distribution rules).
  worker  Joins the campaign at the shard directory as worker K: measures
          its share of every round plan (point index I belongs to worker
          I mod N) and writes incremental atomic shard files, so kill -9
          costs only the points not yet flushed. Identity comes from
          --dir/--id or MSEM_WORKER_DIR/MSEM_WORKER_ID (the coordinator
          sets the latter for spawned workers). Exits when the coordinator
          publishes the shutdown sentinel.
  merge   Offline recovery: folds every completed outcome in DIR's worker
          shard files into the checkpoint at PATH (multi-host runs where
          the coordinator died; normally the coordinator merges live).
  digest  Prints the checkpoint's canonical content -- timing, build-stamp
          and path fields stripped -- so two runs can be byte-compared
          (`cmp <(msem_campaign digest ...) <(msem_campaign digest ...)`).

ENVIRONMENT
  MSEM_WORKERS            worker processes for `run` (0 = single-process)
  MSEM_SHARD_DIR          shard directory ("" = <checkpoint>.shards)
  MSEM_WORKER_DIR         worker identity: shard directory (set by the
  MSEM_WORKER_ID            coordinator for the workers it spawns)
  MSEM_WORKER_KILL_AFTER  "w:n" test hook: worker w SIGKILLs itself after
                          n fresh measurements, once per shard directory
  MSEM_THREADS            threads per process (workers inherit it)
  MSEM_TRAIN_N/MSEM_TEST_N/MSEM_INPUT/MSEM_CACHE/MSEM_SEED
                          campaign scale (see README)
  MSEM_REGISTRY_DIR       model registry root ("" = no publishing)
  MSEM_FAULT_RATE         deterministic fault injection in [0,1]
  MSEM_STATS_PORT         live introspection: /statusz and /healthz grow a
                          "workers" section while a campaign is distributed

Campaign checkpoints and every shard-directory file carry
schema_version "msem.campaign.v1"; loaders accept v1 and legacy
unversioned checkpoints and reject newer versions.
)";

int usageError(const char *Message) {
  std::fprintf(stderr, "msem_campaign: %s\n(run `msem_campaign --help`)\n",
               Message);
  return 2;
}

/// Tiny flag scanner: "--name VALUE" pairs plus bare flags.
struct Args {
  std::vector<std::string> Tokens;

  bool flag(const char *Name) {
    for (auto It = Tokens.begin(); It != Tokens.end(); ++It)
      if (*It == Name) {
        Tokens.erase(It);
        return true;
      }
    return false;
  }

  bool value(const char *Name, std::string &Out) {
    for (auto It = Tokens.begin(); It != Tokens.end(); ++It)
      if (*It == Name && It + 1 != Tokens.end()) {
        Out = *(It + 1);
        Tokens.erase(It, It + 2);
        return true;
      }
    return false;
  }

  std::vector<std::string> values(const char *Name) {
    std::vector<std::string> Out;
    std::string V;
    while (value(Name, V))
      Out.push_back(V);
    return Out;
  }
};

InputSet inputFromEnv() {
  const std::string &Input = env().Input;
  return Input == "ref"    ? InputSet::Ref
         : Input == "test" ? InputSet::Test
                           : InputSet::Train;
}

/// The spec `run` executes: the bench-standard scale (one-shot design of
/// MSEM_TRAIN_N points) over the requested workloads.
ExperimentSpec specFromEnv(const std::vector<std::string> &Workloads) {
  const EnvConfig &E = env();
  ExperimentSpec Spec;
  Spec.Name = "msem_campaign";
  Spec.InitialDesignSize = static_cast<size_t>(E.TrainN);
  Spec.MaxDesignSize = static_cast<size_t>(E.TrainN);
  Spec.TestSize = static_cast<size_t>(E.TestN);
  Spec.TargetMape = 0.0; // Fit exactly once at the requested size.
  Spec.CandidateCount = std::max<size_t>(1200, Spec.InitialDesignSize * 4);
  Spec.Seed = E.Seed;
  Spec.CacheDir = E.CacheDir;
  for (const std::string &W : Workloads) {
    ExperimentJob Job;
    Job.Workload = W;
    Job.Input = inputFromEnv();
    Spec.Jobs.push_back(std::move(Job));
  }
  return Spec;
}

int reportResult(const ExperimentResult &Result) {
  std::printf("status: %s\n", campaignStatusName(Result.Status));
  if (!Result.Error.empty())
    std::printf("error: %s\n", Result.Error.c_str());
  std::printf("simulations: %zu  wall_seconds: %.2f\n", Result.SimulationsUsed,
              Result.WallSeconds);
  for (const ExperimentJobResult &JR : Result.Jobs)
    std::printf("job %s|%s|%s: %s  mape=%.4f  r2=%.4f\n",
                JR.Job.Workload.c_str(), inputSetName(JR.Job.Input),
                responseMetricName(JR.Job.Metric), jobStateName(JR.State),
                JR.Build.TestQuality.Mape, JR.Build.TestQuality.R2);
  return Result.ok() ? 0 : 1;
}

int runMain(Args Cli) {
  std::vector<std::string> Workloads = Cli.values("--workload");
  if (Workloads.empty())
    Workloads.push_back("art");

  std::string Value;
  int Workers = static_cast<int>(env().Workers);
  if (Cli.value("--workers", Value))
    Workers = std::atoi(Value.c_str());
  std::string ShardDir = env().ShardDir;
  Cli.value("--shard-dir", ShardDir);
  std::string CheckpointPath;
  Cli.value("--checkpoint", CheckpointPath);
  std::string RegistryDir;
  Cli.value("--registry", RegistryDir);
  bool Resume = Cli.flag("--resume");
  if (!Cli.Tokens.empty())
    return usageError(("unknown argument '" + Cli.Tokens.front() +
                       "' for run")
                          .c_str());
  if (Resume && CheckpointPath.empty())
    return usageError("--resume requires --checkpoint");

  telemetry::ensureIntrospection();
  ExperimentResult Result;
  if (Workers > 0) {
    CoordinatorOptions Opts;
    Opts.Workers = Workers;
    Opts.ShardDir = ShardDir;
    std::printf("distributed campaign: %d worker(s), shard dir %s\n", Workers,
                !Opts.ShardDir.empty() ? Opts.ShardDir.c_str()
                                       : "(derived from checkpoint)");
    Coordinator C(std::move(Opts));
    if (Resume) {
      Result = C.resume(CheckpointPath);
    } else {
      ExperimentSpec Spec = specFromEnv(Workloads);
      Spec.CheckpointPath = CheckpointPath;
      Spec.RegistryDir = RegistryDir;
      Result = C.run(std::move(Spec));
    }
  } else if (Resume) {
    Result = Campaign::resume(CheckpointPath);
  } else {
    ExperimentSpec Spec = specFromEnv(Workloads);
    Spec.CheckpointPath = CheckpointPath;
    Spec.RegistryDir = RegistryDir;
    Result = runExperiment(Spec);
  }
  return reportResult(Result);
}

int workerMain(Args Cli) {
  WorkerOptions Opts;
  Opts.Dir = getEnvString("MSEM_WORKER_DIR", "");
  Opts.Worker = static_cast<int>(getEnvInt("MSEM_WORKER_ID", -1));
  Opts.KillAfter = env().WorkerKillAfter;
  std::string Value;
  if (Cli.value("--dir", Value))
    Opts.Dir = Value;
  if (Cli.value("--id", Value))
    Opts.Worker = std::atoi(Value.c_str());
  if (!Cli.Tokens.empty())
    return usageError(("unknown argument '" + Cli.Tokens.front() +
                       "' for worker")
                          .c_str());
  return runWorker(Opts);
}

int mergeMain(Args Cli) {
  std::string Dir, CheckpointPath;
  if (!Cli.value("--dir", Dir) || !Cli.value("--checkpoint", CheckpointPath))
    return usageError("merge requires --dir and --checkpoint");

  CampaignCheckpoint Ckpt;
  std::string Error;
  if (!loadCheckpoint(CheckpointPath, Ckpt, &Error)) {
    std::fprintf(stderr, "msem_campaign merge: %s\n", Error.c_str());
    return 1;
  }
  CampaignManifest Manifest;
  if (!loadManifest(manifestPath(Dir), Manifest, &Error)) {
    std::fprintf(stderr, "msem_campaign merge: %s\n", Error.c_str());
    return 1;
  }

  ShardStore Store;
  Store.restore(std::move(Ckpt.Surfaces));
  size_t ShardFiles = 0, Merged = 0;
  // Rounds are dense from 1: stop at the first round with no shard file
  // from any worker. Within a round, workers merge in sequential order.
  for (uint64_t Round = 1;; ++Round) {
    bool Any = false;
    for (int K = 0; K < Manifest.Workers; ++K) {
      WorkerShard Shard;
      if (!loadWorkerShard(workerShardPath(Dir, Round, K), Shard, &Error))
        continue;
      Any = true;
      ++ShardFiles;
      ExperimentJob Job;
      Job.Workload = Shard.Surface.Workload;
      Job.Input = Shard.Surface.Input;
      Job.Metric = Shard.Surface.Metric;
      SurfaceShard Incoming;
      for (size_t J = 0; J < Shard.Outcomes.size(); ++J) {
        if (!Shard.Outcomes[J].Ok)
          continue; // Skipped/faulted points are not responses.
        Incoming.Points.push_back(Shard.Points[J]);
        Incoming.Values.push_back(Shard.Outcomes[J].Value);
        ++Merged;
      }
      Store.merge(surfaceKeyFor(Job), Incoming);
    }
    if (!Any)
      break;
  }

  Ckpt.Surfaces = Store.shards();
  if (!saveCheckpoint(Ckpt, CheckpointPath, &Error)) {
    std::fprintf(stderr, "msem_campaign merge: %s\n", Error.c_str());
    return 1;
  }
  std::printf("merged %zu outcome(s) from %zu shard file(s) into %s\n",
              Merged, ShardFiles, CheckpointPath.c_str());
  return 0;
}

int digestMain(Args Cli) {
  std::string CheckpointPath;
  if (!Cli.value("--checkpoint", CheckpointPath))
    return usageError("digest requires --checkpoint");

  CampaignCheckpoint Ckpt;
  std::string Error;
  if (!loadCheckpoint(CheckpointPath, Ckpt, &Error)) {
    std::fprintf(stderr, "msem_campaign digest: %s\n", Error.c_str());
    return 1;
  }
  // Strip everything that legitimately varies between two runs of the
  // same campaign -- wall time, build stamp, and the file-system paths the
  // runs were pointed at -- leaving the deterministic content: jobs,
  // measured surfaces, simulation spend, design/tuning configuration.
  Ckpt.WallSecondsSpent = 0;
  Ckpt.Build.clear();
  Ckpt.CachePath.clear();
  Ckpt.Spec.CheckpointPath.clear();
  Ckpt.Spec.CacheDir.clear();
  Ckpt.Spec.RegistryDir.clear();
  std::string Digest = serializeCheckpoint(Ckpt).dumpPretty();
  std::fwrite(Digest.data(), 1, Digest.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usageError("a subcommand is required");
  std::string Sub = Argv[1];
  if (Sub == "--help" || Sub == "-h" || Sub == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  Args Cli;
  for (int I = 2; I < Argc; ++I)
    Cli.Tokens.push_back(Argv[I]);
  if (Sub == "run")
    return runMain(std::move(Cli));
  if (Sub == "worker")
    return workerMain(std::move(Cli));
  if (Sub == "merge")
    return mergeMain(std::move(Cli));
  if (Sub == "digest")
    return digestMain(std::move(Cli));
  return usageError(("unknown subcommand '" + Sub + "'").c_str());
}
