//===- tools/msem_predict.cpp - Batched model-serving engine ----------------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Serves predictions from published model artifacts -- the paper's payoff
// made operational: once a campaign has trained and published a model,
// answering "how many cycles would this configuration take?" needs no
// simulator, no workload and no re-fitting, just the registry directory.
//
// The prediction pipeline itself lives in serving/PredictionService --
// the same facade tools/msem_serve exposes over HTTP -- so the CLI and
// the network server cannot drift: both parse the msem.predict.v1 row
// formats, run the same admission queue and render through the same
// serializers, byte for byte.
//
//   msem_predict --registry DIR --list
//       every published model with its held-out quality
//
//   msem_predict --registry DIR --key art,train,cycles,rbf,joint
//                --in requests.csv [--out predictions.csv]
//       batched serving: requests in (CSV with a parameter-name header, or
//       JSON-lines arrays), predictions out. Batches run on the global
//       thread pool (MSEM_THREADS); output is bitwise identical at any
//       thread count.
//
//   msem_predict --registry DIR --key art,train,cycles,rbf,constrained
//                --compare aggressive --in requests.csv
//       cross-platform mode (the Table 5/7 question): predicts every
//       request under two platforms' frozen-machine artifacts and reports
//       the cycle ratio.
//
//   msem_predict --registry DIR --key ... --gen 64 [--seed S]
//       emits a random request CSV for the keyed artifact's space (handy
//       for smoke tests and benchmarks).
//
//   msem_predict --registry DIR --key ... --in FILE --emit-request
//                [--format json|csv|jsonl]
//       emits the msem.predict.v1 request document for FILE's rows instead
//       of predicting -- the POST body a client sends msem_serve.
//
//   msem_predict --smoke DIR
//       end-to-end self-check: runs a tiny campaign that publishes into
//       DIR, then re-serves the campaign's own test design purely from the
//       artifacts and verifies the predictions match bitwise.
//
// Requests are raw parameter values (one column per parameter, in the
// artifact's embedded parameter order). Rows may carry all parameters or
// only the leading compiler parameters; frozen-machine artifacts pin the
// microarchitectural coordinates either way.
//
//===----------------------------------------------------------------------===//

#include "campaign/Experiment.h"
#include "registry/ModelRegistry.h"
#include "registry/ServingMonitor.h"
#include "serving/PredictionService.h"
#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "telemetry/Introspection.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace msem;

namespace {

//===----------------------------------------------------------------------===//
// Small IO helpers
//===----------------------------------------------------------------------===//

bool readFileOrStdin(const std::string &Path, std::string &Out,
                     std::string &Error) {
  FILE *F = Path == "-" ? stdin : std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  char Buf[1 << 14];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  if (F != stdin)
    std::fclose(F);
  return true;
}

/// Reads the --in rows through the shared schema parser.
bool readRequests(const std::string &Path, std::vector<DesignPoint> &Rows,
                  bool &FromJsonl, std::string &Error) {
  std::string Text;
  if (!readFileOrStdin(Path, Text, Error))
    return false;
  if (!serving::parseRowsText(Text, Rows, FromJsonl, Error)) {
    if (Error == "no request rows")
      Error = "'" + Path + "' holds no requests";
    return false;
  }
  return true;
}

/// Reads ground-truth values for --actuals: one numeric per line (an
/// unparseable first line is treated as a CSV header and skipped).
bool readActuals(const std::string &Path, std::vector<double> &Out,
                 std::string &Error) {
  std::string Text;
  if (!readFileOrStdin(Path, Text, Error))
    return false;
  std::vector<std::string> Lines;
  for (const std::string &Line : splitString(Text, '\n')) {
    std::string T = trimString(Line);
    if (!T.empty())
      Lines.push_back(std::move(T));
  }
  for (size_t I = 0; I < Lines.size(); ++I) {
    char *End = nullptr;
    double V = std::strtod(Lines[I].c_str(), &End);
    if (End == Lines[I].c_str() || *End != '\0') {
      if (I == 0)
        continue; // Header line.
      Error = "actuals line " + std::to_string(I + 1) + ": bad number '" +
              Lines[I] + "'";
      return false;
    }
    Out.push_back(V);
  }
  if (Out.empty()) {
    Error = "'" + Path + "' holds no actuals";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Modes
//===----------------------------------------------------------------------===//

int runList(ModelRegistry &Reg) {
  std::string Error;
  std::vector<RegistryEntry> Entries = Reg.list(&Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }
  std::printf("workload,input,metric,technique,platform,mape,rmse,r2,file\n");
  for (const RegistryEntry &E : Entries)
    std::printf("%s,%s,%s,%s,%s,%.4g,%.6g,%.6g,%s\n", E.Key.Workload.c_str(),
                inputSetName(E.Key.Input), responseMetricName(E.Key.Metric),
                E.Key.Technique.c_str(), E.Key.Platform.c_str(),
                E.Quality.Mape, E.Quality.Rmse, E.Quality.R2,
                E.File.c_str());
  return 0;
}

int runGen(ModelRegistry &Reg, const ModelKey &Key, size_t N, uint64_t Seed,
           FILE *Out) {
  std::string Error;
  std::shared_ptr<const ModelArtifact> A = Reg.fetch(Key, &Error);
  if (!A) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }
  const ParameterSpace &Space = A->Info.Space;
  Rng R(Seed);
  std::vector<DesignPoint> Rows;
  Rows.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Rows.push_back(Space.randomPoint(R));
  std::string Csv = serving::renderRowsCsv(Space, Rows);
  std::fwrite(Csv.data(), 1, Csv.size(), Out);
  return 0;
}

void printArtifactBanner(const ModelArtifact &A) {
  std::fprintf(stderr,
               "# model %s: campaign '%s', %s at train=%zu/test=%zu, "
               "mape=%.3g%% r2=%.4g%s\n",
               A.Info.Key.id().c_str(), A.Info.Campaign.c_str(),
               A.Info.StopReason.c_str(), A.Info.TrainSize, A.Info.TestSize,
               A.Info.Quality.Mape, A.Info.Quality.R2,
               A.Info.HasFrozenMachine ? ", frozen machine" : "");
}

/// --emit-request: the rows rendered as the POST body msem_serve accepts.
int runEmitRequest(const serving::PredictRequest &Req, FILE *Out) {
  std::string Doc = serving::serializePredictRequest(Req).dumpPretty();
  std::fwrite(Doc.data(), 1, Doc.size(), Out);
  return 0;
}

int runServe(serving::PredictionService &Service, const ModelKey &Key,
             const std::string &InPath, const std::string &ComparePlatform,
             FILE *Out, const std::string &ActualsPath, bool CheckDrift,
             bool EmitRequest, serving::PredictFormat EmitFormat) {
  std::string Error;
  ModelRegistry &Reg = Service.registry();

  serving::PredictRequest Req;
  Req.Key = Key;
  Req.ComparePlatform = ComparePlatform;
  bool FromJsonl = false;
  if (!readRequests(InPath, Req.Rows, FromJsonl, Error)) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }

  if (EmitRequest) {
    Req.Format = EmitFormat;
    return runEmitRequest(Req, Out);
  }

  std::shared_ptr<const ModelArtifact> A = Reg.fetch(Key, &Error);
  if (!A) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }
  printArtifactBanner(*A);

  // One trace per serving request, rooted on the (artifact, input)
  // identity so re-serving the same file reproduces the same span tree.
  telemetry::ScopedTimer ReqSpan(
      "predict.request",
      telemetry::ScopedTimer::TraceRoot{
          telemetry::deriveTraceId(A->Info.Key.id() + "|" + InPath, 0)});
  if (ReqSpan.capturing())
    ReqSpan.setDetail(A->Info.Key.id());

  if (!ComparePlatform.empty()) {
    ModelKey OtherKey = Key;
    OtherKey.Platform = ComparePlatform;
    std::shared_ptr<const ModelArtifact> B = Reg.fetch(OtherKey, &Error);
    if (!B) {
      std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
      return 1;
    }
    printArtifactBanner(*B);
  }

  serving::PredictResponse Resp;
  if (Service.predict(Req, Resp, Error, /*Strict=*/true) != 200) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }

  ServingMonitor &Monitor = Service.monitor();
  if (!ActualsPath.empty()) {
    std::vector<double> Actuals;
    if (!readActuals(ActualsPath, Actuals, Error)) {
      std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
      return 1;
    }
    if (Actuals.size() != Resp.Predictions.size()) {
      std::fprintf(stderr, "msem_predict: %zu actuals for %zu requests\n",
                   Actuals.size(), Resp.Predictions.size());
      return 1;
    }
    for (size_t I = 0; I < Resp.Predictions.size(); ++I)
      Monitor.recordResidual(A->Info.Key.id(), Resp.Predictions[I],
                             Actuals[I]);
  }

  // Render through the shared serializers (the serve-smoke bitwise
  // contract): JSON-lines inputs keep their historical JSON-lines output,
  // everything else is the CSV rendering.
  std::string Rendered = ComparePlatform.empty() && FromJsonl
                             ? serving::renderPredictJsonl(Resp)
                             : serving::renderPredictCsv(Resp);
  std::fwrite(Rendered.data(), 1, Rendered.size(), Out);

  // The serving SLO epilogue: print the per-model monitor table when it
  // has anything to say, and honor --check-drift.
  if (!ActualsPath.empty() || Monitor.anyDrift())
    std::fprintf(stderr, "%s", Monitor.renderSummary().c_str());
  if (CheckDrift && Monitor.anyDrift()) {
    std::fprintf(stderr,
                 "msem_predict: drift detected (rolling MAPE exceeds "
                 "threshold x published MAPE)\n");
    return 3;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// --smoke: publish -> serve -> bitwise verification
//===----------------------------------------------------------------------===//

int runSmoke(const std::string &Dir) {
  // A tiny but complete campaign: one RBF job plus one tuning platform,
  // publishing into Dir.
  ExperimentSpec Spec;
  Spec.Name = "predict-smoke";
  Spec.Jobs = {{"art", InputSet::Train, ResponseMetric::Cycles,
                ModelTechnique::Rbf, 0}};
  Spec.InitialDesignSize = 10;
  Spec.MaxDesignSize = 10;
  Spec.TestSize = 5;
  Spec.TargetMape = 0.0;
  Spec.CandidateCount = 150;
  Spec.RegistryDir = Dir;
  Spec.TunePlatforms = {{"typical", MachineConfig::typical()}};
  Spec.Ga.Population = 8;
  Spec.Ga.Generations = 2;
  Spec.Ga.StallGenerations = 2;

  ExperimentResult R = runExperiment(Spec);
  if (!R.ok()) {
    std::fprintf(stderr, "smoke: campaign failed: %s\n", R.Error.c_str());
    return 1;
  }
  const ModelBuildResult &Build = R.Jobs[0].Build;
  ParameterSpace Space = makeSpace(Spec.Space);

  // Serve the campaign's own test design from the artifacts alone,
  // through a fresh PredictionService (nothing shared with the
  // campaign's publisher) -- the same facade msem_serve runs.
  telemetry::ScopedTimer ServeSpan(
      "predict.request", telemetry::ScopedTimer::TraceRoot{
                             telemetry::deriveTraceId("predict-smoke", 0)});
  serving::PredictionService::Options SvcOpts;
  SvcOpts.RegistryDir = Dir;
  SvcOpts.Monitor = ServingMonitor::optionsFromEnv();
  serving::PredictionService Service(std::move(SvcOpts));

  std::string Error;
  serving::PredictRequest Req;
  Req.Key.Workload = "art";
  Req.Key.Input = InputSet::Train;
  Req.Key.Metric = ResponseMetric::Cycles;
  Req.Key.Technique = "rbf";
  Req.Key.Platform = "joint";
  Req.Rows = Build.TestPoints;

  serving::PredictResponse Served;
  if (Service.predict(Req, Served, Error, /*Strict=*/true) != 200) {
    std::fprintf(stderr, "smoke: %s\n", Error.c_str());
    return 1;
  }
  size_t Mismatches = 0;
  for (size_t I = 0; I < Build.TestPoints.size(); ++I) {
    double Expected =
        Build.FittedModel->predict(Space.encode(Build.TestPoints[I]));
    if (Served.Predictions[I] != Expected) // Bitwise: save/load is exact.
      ++Mismatches;
  }

  // The frozen-machine artifact must agree with freezing in-process.
  Req.Key.Platform = "typical";
  serving::PredictResponse ServedFrozen;
  if (Service.predict(Req, ServedFrozen, Error, /*Strict=*/true) != 200) {
    std::fprintf(stderr, "smoke: %s\n", Error.c_str());
    return 1;
  }
  for (size_t I = 0; I < Build.TestPoints.size(); ++I) {
    DesignPoint Frozen = Build.TestPoints[I];
    Space.freezeMachine(Frozen, MachineConfig::typical());
    double Expected = Build.FittedModel->predict(Space.encode(Frozen));
    if (ServedFrozen.Predictions[I] != Expected)
      ++Mismatches;
  }

  std::vector<RegistryEntry> Entries = Service.registry().list(&Error);
  if (Entries.size() < 2) {
    std::fprintf(stderr, "smoke: manifest lists %zu models, expected >= 2\n",
                 Entries.size());
    return 1;
  }
  if (Mismatches) {
    std::fprintf(stderr,
                 "smoke: FAIL -- %zu served predictions differ from the "
                 "in-process model\n",
                 Mismatches);
    return 1;
  }
  std::printf("smoke: OK -- %zu models published, %zu predictions served "
              "bitwise-identical from artifacts\n",
              Entries.size(), 2 * Build.TestPoints.size());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: msem_predict --registry DIR --list\n"
      "       msem_predict --registry DIR --key W,I,M,T[,P] --in FILE "
      "[--out FILE] [--compare PLATFORM]\n"
      "           [--actuals FILE] [--drift-threshold X] [--check-drift]\n"
      "       msem_predict --registry DIR --key W,I,M,T[,P] --in FILE "
      "--emit-request [--format F]\n"
      "       msem_predict --registry DIR --key W,I,M,T[,P] --gen N "
      "[--seed S] [--out FILE]\n"
      "       msem_predict --smoke DIR\n"
      "       msem_predict --version\n"
      "\n"
      "key fields: workload, input (test|train|ref), metric "
      "(cycles|energy|codesize),\n"
      "            technique (linear|mars|rbf), platform (default: joint)\n"
      "requests:   CSV with a parameter-name header, or JSON-lines arrays; "
      "'-' = stdin\n"
      "registry:   --registry overrides MSEM_REGISTRY_DIR\n"
      "emit:       --emit-request prints the msem.predict.v1 POST body for "
      "msem_serve\n"
      "            instead of predicting (--format json|csv|jsonl selects "
      "the response\n"
      "            rendering the document asks for)\n"
      "monitoring: --actuals feeds ground truth to the rolling-error "
      "monitor;\n"
      "            --check-drift exits 3 when rolling MAPE exceeds\n"
      "            threshold x the artifact's published MAPE "
      "(MSEM_DRIFT_THRESHOLD)\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  // Live introspection plane (no-op without MSEM_STATS_PORT/MSEM_PROFILE):
  // a serving process exposes /metrics, /healthz, /statusz while it runs.
  telemetry::ensureIntrospection();
  std::string RegistryDir = env().RegistryDir;
  std::string KeySpec, InPath, OutPath, ComparePlatform, SmokeDir;
  std::string ActualsPath;
  bool List = false;
  bool CheckDrift = false;
  bool EmitRequest = false;
  serving::PredictFormat EmitFormat = serving::PredictFormat::Json;
  size_t GenN = 0;
  uint64_t GenSeed = 0x5EED;
  ServingMonitor::Options MonOpts = ServingMonitor::optionsFromEnv();

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "msem_predict: %s wants a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--registry")
      RegistryDir = Value("--registry");
    else if (Arg == "--key")
      KeySpec = Value("--key");
    else if (Arg == "--in")
      InPath = Value("--in");
    else if (Arg == "--out")
      OutPath = Value("--out");
    else if (Arg == "--compare")
      ComparePlatform = Value("--compare");
    else if (Arg == "--gen")
      GenN = static_cast<size_t>(std::strtoull(Value("--gen"), nullptr, 10));
    else if (Arg == "--seed")
      GenSeed = std::strtoull(Value("--seed"), nullptr, 0);
    else if (Arg == "--list")
      List = true;
    else if (Arg == "--smoke")
      SmokeDir = Value("--smoke");
    else if (Arg == "--actuals")
      ActualsPath = Value("--actuals");
    else if (Arg == "--drift-threshold")
      MonOpts.DriftThreshold = std::strtod(Value("--drift-threshold"),
                                           nullptr);
    else if (Arg == "--check-drift")
      CheckDrift = true;
    else if (Arg == "--emit-request")
      EmitRequest = true;
    else if (Arg == "--format") {
      std::string F = Value("--format");
      if (F == "json")
        EmitFormat = serving::PredictFormat::Json;
      else if (F == "csv")
        EmitFormat = serving::PredictFormat::Csv;
      else if (F == "jsonl")
        EmitFormat = serving::PredictFormat::Jsonl;
      else {
        std::fprintf(stderr, "msem_predict: unknown --format '%s'\n",
                     F.c_str());
        return 2;
      }
    } else if (Arg == "--version") {
      std::printf("msem_predict %s\n", buildStamp().c_str());
      return 0;
    } else
      return usage();
  }

  if (!SmokeDir.empty())
    return runSmoke(SmokeDir);
  if (RegistryDir.empty()) {
    std::fprintf(stderr,
                 "msem_predict: no registry (--registry or "
                 "MSEM_REGISTRY_DIR)\n");
    return 2;
  }

  serving::PredictionService::Options SvcOpts;
  SvcOpts.RegistryDir = RegistryDir;
  // The CLI has no request-size cap: it serves exactly the file it was
  // handed, however large.
  SvcOpts.MaxBatchRows = static_cast<size_t>(-1);
  SvcOpts.MaxQueueRows = static_cast<size_t>(-1);
  SvcOpts.Monitor = MonOpts;
  serving::PredictionService Service(std::move(SvcOpts));
  if (List)
    return runList(Service.registry());

  ModelKey Key;
  std::string Error;
  if (KeySpec.empty() || !serving::parseKeySpec(KeySpec, Key, Error)) {
    if (!Error.empty())
      std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return usage();
  }

  FILE *Out = stdout;
  if (!OutPath.empty() && OutPath != "-") {
    Out = std::fopen(OutPath.c_str(), "wb");
    if (!Out) {
      std::fprintf(stderr, "msem_predict: cannot write '%s'\n",
                   OutPath.c_str());
      return 1;
    }
  }

  int Rc;
  if (GenN)
    Rc = runGen(Service.registry(), Key, GenN, GenSeed, Out);
  else if (!InPath.empty())
    Rc = runServe(Service, Key, InPath, ComparePlatform, Out, ActualsPath,
                  CheckDrift, EmitRequest, EmitFormat);
  else
    Rc = usage();

  if (Out != stdout)
    std::fclose(Out);
  return Rc;
}
