//===- tools/msem_predict.cpp - Batched model-serving engine ----------------===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Serves predictions from published model artifacts -- the paper's payoff
// made operational: once a campaign has trained and published a model,
// answering "how many cycles would this configuration take?" needs no
// simulator, no workload and no re-fitting, just the registry directory.
//
//   msem_predict --registry DIR --list
//       every published model with its held-out quality
//
//   msem_predict --registry DIR --key art,train,cycles,rbf,joint
//                --in requests.csv [--out predictions.csv]
//       batched serving: requests in (CSV with a parameter-name header, or
//       JSON-lines arrays), predictions out. Batches run on the global
//       thread pool (MSEM_THREADS); output is bitwise identical at any
//       thread count.
//
//   msem_predict --registry DIR --key art,train,cycles,rbf,constrained
//                --compare aggressive --in requests.csv
//       cross-platform mode (the Table 5/7 question): predicts every
//       request under two platforms' frozen-machine artifacts and reports
//       the cycle ratio.
//
//   msem_predict --registry DIR --key ... --gen 64 [--seed S]
//       emits a random request CSV for the keyed artifact's space (handy
//       for smoke tests and benchmarks).
//
//   msem_predict --smoke DIR
//       end-to-end self-check: runs a tiny campaign that publishes into
//       DIR, then re-serves the campaign's own test design purely from the
//       artifacts and verifies the predictions match bitwise.
//
// Requests are raw parameter values (one column per parameter, in the
// artifact's embedded parameter order). Rows may carry all parameters or
// only the leading compiler parameters; frozen-machine artifacts pin the
// microarchitectural coordinates either way.
//
//===----------------------------------------------------------------------===//

#include "campaign/Experiment.h"
#include "registry/ModelRegistry.h"
#include "registry/ServingMonitor.h"
#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "telemetry/Introspection.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace msem;

namespace {

//===----------------------------------------------------------------------===//
// Small CLI / IO helpers
//===----------------------------------------------------------------------===//

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t End = S.find(Sep, Start);
    Out.push_back(S.substr(Start, End == std::string::npos ? End
                                                           : End - Start));
    if (End == std::string::npos)
      break;
    Start = End + 1;
  }
  return Out;
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

/// "workload,input,metric,technique[,platform]" -> ModelKey.
bool parseKey(const std::string &Spec, ModelKey &Out, std::string &Error) {
  std::vector<std::string> Parts = splitOn(Spec, ',');
  if (Parts.size() < 4 || Parts.size() > 5) {
    Error = "--key wants workload,input,metric,technique[,platform]";
    return false;
  }
  Out.Workload = trim(Parts[0]);
  if (!inputSetFromName(trim(Parts[1]), Out.Input)) {
    Error = "unknown input set '" + Parts[1] + "'";
    return false;
  }
  if (!responseMetricFromName(trim(Parts[2]), Out.Metric)) {
    Error = "unknown metric '" + Parts[2] + "'";
    return false;
  }
  Out.Technique = trim(Parts[3]);
  Out.Platform = Parts.size() == 5 ? trim(Parts[4]) : "joint";
  return true;
}

bool readLines(const std::string &Path, std::vector<std::string> &Out,
               std::string &Error) {
  FILE *F = Path == "-" ? stdin : std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Text;
  char Buf[1 << 14];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  if (F != stdin)
    std::fclose(F);
  for (const std::string &Line : splitOn(Text, '\n')) {
    std::string T = trim(Line);
    if (!T.empty())
      Out.push_back(std::move(T));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

/// Parsed request file: raw-valued rows, all the same width.
struct RequestSet {
  std::vector<DesignPoint> Rows;
  bool FromJsonl = false;
};

bool parseCsvRow(const std::string &Line, DesignPoint &Out,
                 std::string &Error) {
  for (const std::string &Cell : splitOn(Line, ',')) {
    std::string T = trim(Cell);
    char *End = nullptr;
    long long V = std::strtoll(T.c_str(), &End, 10);
    if (End == T.c_str() || *End != '\0') {
      Error = "bad integer '" + T + "'";
      return false;
    }
    Out.push_back(V);
  }
  return true;
}

/// Reads requests from \p Path. JSON-lines when every line starts with
/// '[' (each line one array of raw values); CSV with a header line of
/// parameter names otherwise.
bool readRequests(const std::string &Path, RequestSet &Out,
                  std::string &Error) {
  std::vector<std::string> Lines;
  if (!readLines(Path, Lines, Error))
    return false;
  if (Lines.empty()) {
    Error = "'" + Path + "' holds no requests";
    return false;
  }

  if (Lines.front()[0] == '[') {
    Out.FromJsonl = true;
    for (size_t I = 0; I < Lines.size(); ++I) {
      std::string ParseError;
      Json Row = Json::parse(Lines[I], &ParseError);
      if (!ParseError.empty() || Row.kind() != Json::Kind::Array) {
        Error = "request line " + std::to_string(I + 1) + ": " +
                (ParseError.empty() ? "expected an array" : ParseError);
        return false;
      }
      DesignPoint P;
      P.reserve(Row.size());
      for (const Json &V : Row.items())
        P.push_back(V.asInt());
      Out.Rows.push_back(std::move(P));
    }
  } else {
    // CSV; line 0 is the parameter-name header.
    for (size_t I = 1; I < Lines.size(); ++I) {
      DesignPoint P;
      if (!parseCsvRow(Lines[I], P, Error)) {
        Error = "request line " + std::to_string(I + 1) + ": " + Error;
        return false;
      }
      Out.Rows.push_back(std::move(P));
    }
  }

  for (size_t I = 1; I < Out.Rows.size(); ++I)
    if (Out.Rows[I].size() != Out.Rows.front().size()) {
      Error = "request rows disagree on width";
      return false;
    }
  return !Out.Rows.empty() || (Error = "no request rows", false);
}

/// Turns one raw request row into the full design point the artifact's
/// model expects: full-width rows pass through, compiler-only rows are
/// padded, and frozen-machine artifacts pin the Table-2 coordinates.
bool requestToPoint(const DesignPoint &Row, const ModelArtifact &A,
                    DesignPoint &Out, std::string &Error) {
  const ParameterSpace &Space = A.Info.Space;
  if (Row.size() == Space.size()) {
    Out = Row;
  } else if (Row.size() == Space.numCompilerParams() &&
             Row.size() < Space.size()) {
    if (!A.Info.HasFrozenMachine) {
      Error = "compiler-only request against artifact '" + A.Info.Key.id() +
              "', which has no frozen machine configuration";
      return false;
    }
    Out = Row;
    for (size_t I = Row.size(); I < Space.size(); ++I)
      Out.push_back(Space.param(I).low());
  } else {
    Error = "request width " + std::to_string(Row.size()) +
            " matches neither the full space (" +
            std::to_string(Space.size()) + ") nor the compiler prefix (" +
            std::to_string(Space.numCompilerParams()) + ")";
    return false;
  }
  if (A.Info.HasFrozenMachine)
    Space.freezeMachine(Out, A.Info.Machine);
  return true;
}

//===----------------------------------------------------------------------===//
// Batched prediction
//===----------------------------------------------------------------------===//

/// Predicts every request with \p A's model on the global thread pool.
/// Each slot is an independent pure function of its row, so the output is
/// bitwise identical at any MSEM_THREADS. Returns false on the first
/// malformed row (checked up front, before any prediction). \p Monitor
/// (optional) accumulates the serving statistics.
bool predictAll(const ModelArtifact &A, const std::vector<DesignPoint> &Rows,
                std::vector<double> &Out, std::string &Error,
                ServingMonitor *Monitor = nullptr) {
  std::vector<DesignPoint> Points(Rows.size());
  for (size_t I = 0; I < Rows.size(); ++I)
    if (!requestToPoint(Rows[I], A, Points[I], Error)) {
      Error = "request " + std::to_string(I + 1) + ": " + Error;
      if (Monitor)
        Monitor->recordError(A.Info.Key.id());
      return false;
    }

  telemetry::ScopedTimer Span("predict.batch");
  if (Span.capturing())
    Span.setDetail(A.Info.Key.id());
  Out = globalThreadPool().parallelMap(
      Points.size(),
      [&](size_t I) {
        // Keyed on the row index: rows run in parallel, so the key keeps
        // span identity independent of the schedule.
        telemetry::ScopedTimer RowSpan("predict.row", I);
        return A.M->predict(A.Info.Space.encode(Points[I]));
      },
      "predict");
  telemetry::count("predict.requests", Rows.size());
  telemetry::count("predict.batches");
  if (telemetry::enabled() && !Rows.empty()) {
    // Per-request latency in microseconds, amortized over the batch.
    double PerRequestUs =
        static_cast<double>(Span.elapsedNs()) / 1000.0 / Rows.size();
    telemetry::observe("predict.request_us", PerRequestUs,
                       {1, 10, 100, 1000, 10000});
  }
  if (Monitor)
    Monitor->recordBatch(A.Info.Key.id(), Rows.size(), Span.elapsedNs(),
                         A.Info.Quality.Mape);
  return true;
}

/// Reads ground-truth values for --actuals: one numeric per line (an
/// unparseable first line is treated as a CSV header and skipped).
bool readActuals(const std::string &Path, std::vector<double> &Out,
                 std::string &Error) {
  std::vector<std::string> Lines;
  if (!readLines(Path, Lines, Error))
    return false;
  for (size_t I = 0; I < Lines.size(); ++I) {
    char *End = nullptr;
    double V = std::strtod(Lines[I].c_str(), &End);
    if (End == Lines[I].c_str() || *End != '\0') {
      if (I == 0)
        continue; // Header line.
      Error = "actuals line " + std::to_string(I + 1) + ": bad number '" +
              Lines[I] + "'";
      return false;
    }
    Out.push_back(V);
  }
  if (Out.empty()) {
    Error = "'" + Path + "' holds no actuals";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Modes
//===----------------------------------------------------------------------===//

int runList(ModelRegistry &Reg) {
  std::string Error;
  std::vector<RegistryEntry> Entries = Reg.list(&Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }
  std::printf("workload,input,metric,technique,platform,mape,rmse,r2,file\n");
  for (const RegistryEntry &E : Entries)
    std::printf("%s,%s,%s,%s,%s,%.4g,%.6g,%.6g,%s\n", E.Key.Workload.c_str(),
                inputSetName(E.Key.Input), responseMetricName(E.Key.Metric),
                E.Key.Technique.c_str(), E.Key.Platform.c_str(),
                E.Quality.Mape, E.Quality.Rmse, E.Quality.R2,
                E.File.c_str());
  return 0;
}

int runGen(ModelRegistry &Reg, const ModelKey &Key, size_t N, uint64_t Seed,
           FILE *Out) {
  std::string Error;
  std::shared_ptr<const ModelArtifact> A = Reg.fetch(Key, &Error);
  if (!A) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }
  const ParameterSpace &Space = A->Info.Space;
  for (size_t I = 0; I < Space.size(); ++I)
    std::fprintf(Out, "%s%s", I ? "," : "", Space.param(I).Name.c_str());
  std::fprintf(Out, "\n");
  Rng R(Seed);
  for (size_t I = 0; I < N; ++I) {
    DesignPoint P = Space.randomPoint(R);
    for (size_t J = 0; J < P.size(); ++J)
      std::fprintf(Out, "%s%lld", J ? "," : "",
                   static_cast<long long>(P[J]));
    std::fprintf(Out, "\n");
  }
  return 0;
}

void printArtifactBanner(const ModelArtifact &A) {
  std::fprintf(stderr,
               "# model %s: campaign '%s', %s at train=%zu/test=%zu, "
               "mape=%.3g%% r2=%.4g%s\n",
               A.Info.Key.id().c_str(), A.Info.Campaign.c_str(),
               A.Info.StopReason.c_str(), A.Info.TrainSize, A.Info.TestSize,
               A.Info.Quality.Mape, A.Info.Quality.R2,
               A.Info.HasFrozenMachine ? ", frozen machine" : "");
}

int runServe(ModelRegistry &Reg, const ModelKey &Key,
             const std::string &InPath, const std::string &ComparePlatform,
             FILE *Out, const std::string &ActualsPath,
             ServingMonitor &Monitor, bool CheckDrift) {
  std::string Error;
  std::shared_ptr<const ModelArtifact> A = Reg.fetch(Key, &Error);
  if (!A) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }
  printArtifactBanner(*A);

  RequestSet Requests;
  if (!readRequests(InPath, Requests, Error)) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }

  // One trace per serving request, rooted on the (artifact, input)
  // identity so re-serving the same file reproduces the same span tree.
  telemetry::ScopedTimer ReqSpan(
      "predict.request",
      telemetry::ScopedTimer::TraceRoot{
          telemetry::deriveTraceId(A->Info.Key.id() + "|" + InPath, 0)});
  if (ReqSpan.capturing())
    ReqSpan.setDetail(A->Info.Key.id());

  std::vector<double> Pred;
  if (!predictAll(*A, Requests.Rows, Pred, Error, &Monitor)) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }

  if (!ActualsPath.empty()) {
    std::vector<double> Actuals;
    if (!readActuals(ActualsPath, Actuals, Error)) {
      std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
      return 1;
    }
    if (Actuals.size() != Pred.size()) {
      std::fprintf(stderr,
                   "msem_predict: %zu actuals for %zu requests\n",
                   Actuals.size(), Pred.size());
      return 1;
    }
    for (size_t I = 0; I < Pred.size(); ++I)
      Monitor.recordResidual(A->Info.Key.id(), Pred[I], Actuals[I]);
  }

  // The serving SLO epilogue: print the per-model monitor table when it
  // has anything to say, and honor --check-drift.
  auto Epilogue = [&]() -> int {
    if (!ActualsPath.empty() || Monitor.anyDrift())
      std::fprintf(stderr, "%s", Monitor.renderSummary().c_str());
    if (CheckDrift && Monitor.anyDrift()) {
      std::fprintf(stderr,
                   "msem_predict: drift detected (rolling MAPE exceeds "
                   "threshold x published MAPE)\n");
      return 3;
    }
    return 0;
  };

  const char *Metric = responseMetricName(Key.Metric);
  if (ComparePlatform.empty()) {
    if (Requests.FromJsonl) {
      for (size_t I = 0; I < Pred.size(); ++I)
        std::fprintf(Out, "{\"request\": %zu, \"prediction\": %.17g}\n", I,
                     Pred[I]);
    } else {
      std::fprintf(Out, "predicted_%s\n", Metric);
      for (double P : Pred)
        std::fprintf(Out, "%.17g\n", P);
    }
    return Epilogue();
  }

  // Cross-platform mode: the same requests under a second platform's
  // artifact, plus the ratio (the Table 5/7 "how much does the best
  // configuration shift across machines" question).
  ModelKey OtherKey = Key;
  OtherKey.Platform = ComparePlatform;
  std::shared_ptr<const ModelArtifact> B = Reg.fetch(OtherKey, &Error);
  if (!B) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }
  printArtifactBanner(*B);
  std::vector<double> PredB;
  if (!predictAll(*B, Requests.Rows, PredB, Error, &Monitor)) {
    std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(Out, "predicted_%s_%s,predicted_%s_%s,ratio\n", Metric,
               Key.Platform.c_str(), Metric, ComparePlatform.c_str());
  for (size_t I = 0; I < Pred.size(); ++I)
    std::fprintf(Out, "%.17g,%.17g,%.6g\n", Pred[I], PredB[I],
                 PredB[I] != 0 ? Pred[I] / PredB[I] : 0.0);
  return Epilogue();
}

//===----------------------------------------------------------------------===//
// --smoke: publish -> serve -> bitwise verification
//===----------------------------------------------------------------------===//

int runSmoke(const std::string &Dir) {
  // A tiny but complete campaign: one RBF job plus one tuning platform,
  // publishing into Dir.
  ExperimentSpec Spec;
  Spec.Name = "predict-smoke";
  Spec.Jobs = {{"art", InputSet::Train, ResponseMetric::Cycles,
                ModelTechnique::Rbf, 0}};
  Spec.InitialDesignSize = 10;
  Spec.MaxDesignSize = 10;
  Spec.TestSize = 5;
  Spec.TargetMape = 0.0;
  Spec.CandidateCount = 150;
  Spec.RegistryDir = Dir;
  Spec.TunePlatforms = {{"typical", MachineConfig::typical()}};
  Spec.Ga.Population = 8;
  Spec.Ga.Generations = 2;
  Spec.Ga.StallGenerations = 2;

  ExperimentResult R = runExperiment(Spec);
  if (!R.ok()) {
    std::fprintf(stderr, "smoke: campaign failed: %s\n", R.Error.c_str());
    return 1;
  }
  const ModelBuildResult &Build = R.Jobs[0].Build;
  ParameterSpace Space = makeSpace(Spec.Space);

  // Serve the campaign's own test design from the artifacts alone, in a
  // fresh registry handle (nothing shared with the campaign's publisher).
  telemetry::ScopedTimer ServeSpan(
      "predict.request", telemetry::ScopedTimer::TraceRoot{
                             telemetry::deriveTraceId("predict-smoke", 0)});
  ModelRegistry Reg({Dir, 4});
  std::string Error;
  ModelKey Key;
  Key.Workload = "art";
  Key.Input = InputSet::Train;
  Key.Metric = ResponseMetric::Cycles;
  Key.Technique = "rbf";
  Key.Platform = "joint";
  std::shared_ptr<const ModelArtifact> Joint = Reg.fetch(Key, &Error);
  if (!Joint) {
    std::fprintf(stderr, "smoke: %s\n", Error.c_str());
    return 1;
  }

  std::vector<double> Served;
  if (!predictAll(*Joint, Build.TestPoints, Served, Error)) {
    std::fprintf(stderr, "smoke: %s\n", Error.c_str());
    return 1;
  }
  size_t Mismatches = 0;
  for (size_t I = 0; I < Build.TestPoints.size(); ++I) {
    double Expected =
        Build.FittedModel->predict(Space.encode(Build.TestPoints[I]));
    if (Served[I] != Expected) // Bitwise: save/load must be exact.
      ++Mismatches;
  }

  // The frozen-machine artifact must agree with freezing in-process.
  Key.Platform = "typical";
  std::shared_ptr<const ModelArtifact> Platform = Reg.fetch(Key, &Error);
  if (!Platform) {
    std::fprintf(stderr, "smoke: %s\n", Error.c_str());
    return 1;
  }
  std::vector<double> ServedFrozen;
  if (!predictAll(*Platform, Build.TestPoints, ServedFrozen, Error)) {
    std::fprintf(stderr, "smoke: %s\n", Error.c_str());
    return 1;
  }
  for (size_t I = 0; I < Build.TestPoints.size(); ++I) {
    DesignPoint Frozen = Build.TestPoints[I];
    Space.freezeMachine(Frozen, MachineConfig::typical());
    double Expected = Build.FittedModel->predict(Space.encode(Frozen));
    if (ServedFrozen[I] != Expected)
      ++Mismatches;
  }

  std::vector<RegistryEntry> Entries = Reg.list(&Error);
  if (Entries.size() < 2) {
    std::fprintf(stderr, "smoke: manifest lists %zu models, expected >= 2\n",
                 Entries.size());
    return 1;
  }
  if (Mismatches) {
    std::fprintf(stderr,
                 "smoke: FAIL -- %zu served predictions differ from the "
                 "in-process model\n",
                 Mismatches);
    return 1;
  }
  std::printf("smoke: OK -- %zu models published, %zu predictions served "
              "bitwise-identical from artifacts\n",
              Entries.size(), 2 * Build.TestPoints.size());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: msem_predict --registry DIR --list\n"
      "       msem_predict --registry DIR --key W,I,M,T[,P] --in FILE "
      "[--out FILE] [--compare PLATFORM]\n"
      "           [--actuals FILE] [--drift-threshold X] [--check-drift]\n"
      "       msem_predict --registry DIR --key W,I,M,T[,P] --gen N "
      "[--seed S] [--out FILE]\n"
      "       msem_predict --smoke DIR\n"
      "       msem_predict --version\n"
      "\n"
      "key fields: workload, input (test|train|ref), metric "
      "(cycles|energy|codesize),\n"
      "            technique (linear|mars|rbf), platform (default: joint)\n"
      "requests:   CSV with a parameter-name header, or JSON-lines arrays; "
      "'-' = stdin\n"
      "registry:   --registry overrides MSEM_REGISTRY_DIR\n"
      "monitoring: --actuals feeds ground truth to the rolling-error "
      "monitor;\n"
      "            --check-drift exits 3 when rolling MAPE exceeds\n"
      "            threshold x the artifact's published MAPE "
      "(MSEM_DRIFT_THRESHOLD)\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  // Live introspection plane (no-op without MSEM_STATS_PORT/MSEM_PROFILE):
  // a serving process exposes /metrics, /healthz, /statusz while it runs.
  telemetry::ensureIntrospection();
  std::string RegistryDir = env().RegistryDir;
  std::string KeySpec, InPath, OutPath, ComparePlatform, SmokeDir;
  std::string ActualsPath;
  bool List = false;
  bool CheckDrift = false;
  size_t GenN = 0;
  uint64_t GenSeed = 0x5EED;
  ServingMonitor::Options MonOpts = ServingMonitor::optionsFromEnv();

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "msem_predict: %s wants a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--registry")
      RegistryDir = Value("--registry");
    else if (Arg == "--key")
      KeySpec = Value("--key");
    else if (Arg == "--in")
      InPath = Value("--in");
    else if (Arg == "--out")
      OutPath = Value("--out");
    else if (Arg == "--compare")
      ComparePlatform = Value("--compare");
    else if (Arg == "--gen")
      GenN = static_cast<size_t>(std::strtoull(Value("--gen"), nullptr, 10));
    else if (Arg == "--seed")
      GenSeed = std::strtoull(Value("--seed"), nullptr, 0);
    else if (Arg == "--list")
      List = true;
    else if (Arg == "--smoke")
      SmokeDir = Value("--smoke");
    else if (Arg == "--actuals")
      ActualsPath = Value("--actuals");
    else if (Arg == "--drift-threshold")
      MonOpts.DriftThreshold = std::strtod(Value("--drift-threshold"),
                                           nullptr);
    else if (Arg == "--check-drift")
      CheckDrift = true;
    else if (Arg == "--version") {
      std::printf("msem_predict %s\n", buildStamp().c_str());
      return 0;
    } else
      return usage();
  }

  if (!SmokeDir.empty())
    return runSmoke(SmokeDir);
  if (RegistryDir.empty()) {
    std::fprintf(stderr,
                 "msem_predict: no registry (--registry or "
                 "MSEM_REGISTRY_DIR)\n");
    return 2;
  }

  ModelRegistry Reg = ModelRegistry::fromEnv(RegistryDir);
  if (List)
    return runList(Reg);

  ModelKey Key;
  std::string Error;
  if (KeySpec.empty() || !parseKey(KeySpec, Key, Error)) {
    if (!Error.empty())
      std::fprintf(stderr, "msem_predict: %s\n", Error.c_str());
    return usage();
  }

  FILE *Out = stdout;
  if (!OutPath.empty() && OutPath != "-") {
    Out = std::fopen(OutPath.c_str(), "wb");
    if (!Out) {
      std::fprintf(stderr, "msem_predict: cannot write '%s'\n",
                   OutPath.c_str());
      return 1;
    }
  }

  int Rc;
  ServingMonitor Monitor(MonOpts);
  if (GenN)
    Rc = runGen(Reg, Key, GenN, GenSeed, Out);
  else if (!InPath.empty())
    Rc = runServe(Reg, Key, InPath, ComparePlatform, Out, ActualsPath,
                  Monitor, CheckDrift);
  else
    Rc = usage();

  if (Out != stdout)
    std::fclose(Out);
  return Rc;
}
