#!/usr/bin/env bash
# msem_lint: strict build + instrumented test run.
#
# Builds the whole tree with -Wall -Wextra -Werror in a dedicated build
# directory, then runs the full test suite with MSEM_TELEMETRY=summary so
# every telemetry-instrumented code path is exercised (metrics go to
# stderr; test results are unaffected). Finally hands off to
# tools/msem_tsan.sh, which rebuilds the concurrency-sensitive tests under
# -fsanitize=thread and runs them with MSEM_THREADS=4.
#
# Usage: tools/msem_lint.sh [build-dir]   (default: build-lint)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-lint}"

cmake -B "$BUILD_DIR" -S . -DMSEM_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
MSEM_TELEMETRY=summary ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# One explicit checkpoint/resume cycle through the campaign engine: the
# budget-pause chain (two resumes) and the SIGKILL + resume test, both of
# which must reproduce the uninterrupted run bitwise.
echo "== campaign resume cycle =="
MSEM_TELEMETRY=summary "$BUILD_DIR/tests/campaign_test" \
  --gtest_filter='CampaignTest.*:FaultPolicyTest.*'

# One publish -> serve cycle through the model registry: a tiny campaign
# publishes its artifacts, then msem_predict reloads them from disk and
# must reproduce the in-process predictions bitwise.
echo "== registry publish/predict smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$BUILD_DIR/tools/msem_predict" --smoke "$SMOKE_DIR/registry"
"$BUILD_DIR/tools/msem_predict" --registry "$SMOKE_DIR/registry" --list

# Serve smoke: the networked server must answer the exact bytes the batch
# CLI writes for the same rows (the shared-serializer contract). Generate
# a request set from the published artifact, predict it with the CLI,
# POST the msem.predict.v1 document to a live msem_serve, and compare
# bitwise. Then a tiny closed+open load run through the same stack.
echo "== serve smoke =="
KEY=art,train,cycles,rbf,joint
"$BUILD_DIR/tools/msem_predict" --registry "$SMOKE_DIR/registry" \
  --key "$KEY" --gen 32 --seed 7 --out "$SMOKE_DIR/serve-req.csv"
"$BUILD_DIR/tools/msem_predict" --registry "$SMOKE_DIR/registry" \
  --key "$KEY" --in "$SMOKE_DIR/serve-req.csv" \
  --out "$SMOKE_DIR/serve-cli.csv"
"$BUILD_DIR/tools/msem_predict" --registry "$SMOKE_DIR/registry" \
  --key "$KEY" --in "$SMOKE_DIR/serve-req.csv" --emit-request \
  --format csv --out "$SMOKE_DIR/serve-post.json"
rm -f "$SMOKE_DIR/serve.port" "$SMOKE_DIR/access.jsonl"
MSEM_ACCESS_LOG="$SMOKE_DIR/access.jsonl" \
  "$BUILD_DIR/tools/msem_serve" --registry "$SMOKE_DIR/registry" \
  --port 0 --port-file "$SMOKE_DIR/serve.port" --threads 2 \
  --slo-latency-ms 50 \
  2> "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 250); do
  [ -s "$SMOKE_DIR/serve.port" ] && break
  sleep 0.02
done
SERVE_PORT="$(cat "$SMOKE_DIR/serve.port")"
curl -fsS -X POST --data-binary "@$SMOKE_DIR/serve-post.json" \
  "http://127.0.0.1:$SERVE_PORT/v1/predict" > "$SMOKE_DIR/serve-http.csv"
cmp "$SMOKE_DIR/serve-cli.csv" "$SMOKE_DIR/serve-http.csv" || {
  echo "msem_lint: HTTP predictions differ from the CLI bytes" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$SERVE_PORT/v1/models" | grep -q '"models"'
curl -fsS "http://127.0.0.1:$SERVE_PORT/healthz" | grep -q '"status":"ok"'
curl -fsS "http://127.0.0.1:$SERVE_PORT/statusz" | grep -q '== serve =='
# The RED/SLO plane saw the request: /sloz serves a msem.sloz.v1 burn
# table naming the predict endpoint, and the access log carries one valid
# msem.access.v1 line per request (msem_report --check validates every
# line's schema and would fail on zero keys).
curl -fsS "http://127.0.0.1:$SERVE_PORT/sloz" > "$SMOKE_DIR/sloz.json"
grep -q 'msem.sloz.v1' "$SMOKE_DIR/sloz.json"
grep -q '/v1/predict' "$SMOKE_DIR/sloz.json"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
[ -s "$SMOKE_DIR/access.jsonl" ] || {
  echo "msem_lint: serve access log is empty" >&2; exit 1; }
grep -q '"schema":"msem.access.v1"' "$SMOKE_DIR/access.jsonl"
"$BUILD_DIR/tools/msem_report" --check --slo "$SMOKE_DIR/access.jsonl"
"$BUILD_DIR/tools/msem_report" --check --slo "$SMOKE_DIR/sloz.json"
echo "serve smoke: HTTP bytes == CLI bytes for 32 requests; /sloz +" \
     "access log valid"
"$BUILD_DIR/bench/bench_serve_load" --smoke

# Observability smoke: a tiny traced campaign (the predict smoke runs a
# full campaign + serve cycle) with the events and metrics sinks on AND
# the live stats server armed (ephemeral port, discovered via the port
# file). While the campaign runs, /healthz must expose its progress
# fragment and /metrics must serve an OpenMetrics page. Afterwards
# msem_report checks the sink output. --check fails on schema-invalid
# events or an empty span forest; the OpenMetrics snapshot must pass the
# promtool-style validator msem_report applies to '#'-prefixed files.
echo "== observability smoke =="
rm -f "$SMOKE_DIR/stats.port"
MSEM_TELEMETRY=events,jsonl \
  MSEM_EVENTS_FILE="$SMOKE_DIR/events.jsonl" \
  MSEM_METRICS_FILE="$SMOKE_DIR/metrics.txt" \
  MSEM_METRICS_FORMAT=openmetrics \
  MSEM_STATS_PORT=0 \
  MSEM_STATS_PORT_FILE="$SMOKE_DIR/stats.port" \
  "$BUILD_DIR/tools/msem_predict" --smoke "$SMOKE_DIR/obs-registry" &
SMOKE_PID=$!
for _ in $(seq 1 250); do
  [ -s "$SMOKE_DIR/stats.port" ] && break
  sleep 0.02
done
STATS_PORT="$(cat "$SMOKE_DIR/stats.port")"
# The campaign fragment registers a moment after the server comes up;
# retry the liveness probe until it appears.
HEALTHZ=""
for _ in $(seq 1 50); do
  HEALTHZ="$(curl -fsS "http://127.0.0.1:$STATS_PORT/healthz")" || true
  case "$HEALTHZ" in *'"campaign"'*) break ;; esac
  sleep 0.02
done
echo "healthz: $HEALTHZ"
case "$HEALTHZ" in
  *'"status":"ok"'*'"campaign"'*) ;;
  *) echo "msem_lint: /healthz missing live campaign fragment" >&2; exit 1 ;;
esac
curl -fsS "http://127.0.0.1:$STATS_PORT/metrics" > "$SMOKE_DIR/live-metrics.txt"
grep -q '^# EOF' "$SMOKE_DIR/live-metrics.txt"
wait "$SMOKE_PID"
"$BUILD_DIR/tools/msem_report" --check \
  --events "$SMOKE_DIR/events.jsonl" --metrics "$SMOKE_DIR/metrics.txt"
"$BUILD_DIR/tools/msem_report" \
  --events "$SMOKE_DIR/events.jsonl" --metrics "$SMOKE_DIR/metrics.txt" \
  > "$SMOKE_DIR/report.txt"
grep -q "slowest phase" "$SMOKE_DIR/report.txt"

# Replay-identity smoke: one workload simulated live and replayed from a
# captured trace across the machine sweep; the two must be bitwise
# identical (cycles, every stats field, every SMARTS CI field). This is
# the trace-cache fast path's core contract -- identity only, no timing
# floor, so it cannot flake on loaded machines.
echo "== trace replay identity smoke =="
MSEM_INPUT=test "$BUILD_DIR/bench/bench_trace_replay" --smoke vpr

# Distributed-campaign smoke: the same tiny campaign single-process and
# across 3 worker processes, with one worker SIGKILLed mid-run (the
# MSEM_WORKER_KILL_AFTER hook) and respawned by the Retry policy. The two
# checkpoints' canonical digests must be byte-identical. Each run gets its
# own response cache so the distributed run really measures (a cache hit
# would disarm the kill hook).
echo "== distributed campaign smoke =="
MSEM_TRAIN_N=12 MSEM_TEST_N=6 MSEM_INPUT=test MSEM_SEED=20070311 \
  MSEM_CACHE="$SMOKE_DIR/dist-cache-1" \
  "$BUILD_DIR/tools/msem_campaign" run --workload art \
  --checkpoint "$SMOKE_DIR/dist-single.ckpt.json" > /dev/null
# The multi-worker leg runs with the whole fleet-observability plane on:
# stats server armed (the coordinator's /metrics becomes the worker-
# labeled fleet exposition), events sink on (per-process logs land in the
# shard dir for trace stitching), and one worker still kill -9'd -- the
# digest comparison below proves none of it perturbs a byte.
rm -f "$SMOKE_DIR/dist.port"
mkdir -p "$SMOKE_DIR/dist.shards"
MSEM_TRAIN_N=12 MSEM_TEST_N=6 MSEM_INPUT=test MSEM_SEED=20070311 \
  MSEM_CACHE="$SMOKE_DIR/dist-cache-3" MSEM_WORKER_KILL_AFTER=1:2 \
  MSEM_TELEMETRY=events \
  MSEM_EVENTS_FILE="$SMOKE_DIR/dist.shards/events-coord.jsonl" \
  MSEM_STATS_PORT=0 MSEM_STATS_PORT_FILE="$SMOKE_DIR/dist.port" \
  "$BUILD_DIR/tools/msem_campaign" run --workload art --workers 3 \
  --shard-dir "$SMOKE_DIR/dist.shards" \
  --checkpoint "$SMOKE_DIR/dist-multi.ckpt.json" > /dev/null &
DIST_PID=$!
for _ in $(seq 1 250); do
  [ -s "$SMOKE_DIR/dist.port" ] && break
  sleep 0.02
done
DIST_PORT="$(cat "$SMOKE_DIR/dist.port")"
# Workers heartbeat their msem.telemetry.v1 snapshots from round 0; poll
# the coordinator's /metrics until the worker-labeled series fold in.
FLEET_OK=""
for _ in $(seq 1 500); do
  if curl -fsS "http://127.0.0.1:$DIST_PORT/metrics" \
       > "$SMOKE_DIR/fleet-metrics.txt" 2>/dev/null \
     && grep -q 'worker="0"' "$SMOKE_DIR/fleet-metrics.txt" \
     && grep -q 'worker="2"' "$SMOKE_DIR/fleet-metrics.txt"; then
    FLEET_OK=1
    break
  fi
  kill -0 "$DIST_PID" 2>/dev/null || break
  sleep 0.02
done
wait "$DIST_PID"
[ -n "$FLEET_OK" ] || {
  echo "msem_lint: coordinator /metrics never showed worker-labeled series" >&2
  exit 1; }
# The captured fleet exposition must pass the OpenMetrics validator.
"$BUILD_DIR/tools/msem_report" --check \
  --metrics "$SMOKE_DIR/fleet-metrics.txt"
[ -f "$SMOKE_DIR/dist.shards/killed-w1" ] || {
  echo "msem_lint: worker kill hook never fired" >&2; exit 1; }
# Stitch the coordinator's and workers' event logs into one Chrome trace.
"$BUILD_DIR/tools/msem_report" --merge-traces "$SMOKE_DIR/dist.shards" \
  --trace-out "$SMOKE_DIR/dist-trace.json" > "$SMOKE_DIR/dist-report.txt"
grep -q '"traceEvents"' "$SMOKE_DIR/dist-trace.json"
grep -q 'coordinator.campaign' "$SMOKE_DIR/dist-trace.json"
grep -q 'worker.run' "$SMOKE_DIR/dist-trace.json"
"$BUILD_DIR/tools/msem_campaign" digest \
  --checkpoint "$SMOKE_DIR/dist-single.ckpt.json" \
  > "$SMOKE_DIR/dist-single.digest"
"$BUILD_DIR/tools/msem_campaign" digest \
  --checkpoint "$SMOKE_DIR/dist-multi.ckpt.json" \
  > "$SMOKE_DIR/dist-multi.digest"
cmp "$SMOKE_DIR/dist-single.digest" "$SMOKE_DIR/dist-multi.digest" || {
  echo "msem_lint: distributed campaign diverged from single-process bytes" >&2
  exit 1; }
echo "distributed smoke: 3-worker digest (one worker kill -9'd)" \
     "== single-process digest"

# Benchmark-regression gate: rerun the sentinel bench set at the pinned
# baseline scale and compare against the committed baselines. Model-quality
# metrics are deterministic at fixed seed (tight threshold); throughput
# metrics get the loose threshold, so this catches cliffs, not wobble.
echo "== benchmark regression gate =="
tools/msem_bench_baseline.sh "$BUILD_DIR" -o "$SMOKE_DIR/bench-fresh"
"$BUILD_DIR/tools/msem_bench_diff" \
  --against results/baselines --results "$SMOKE_DIR/bench-fresh" \
  --fail-on-regress

tools/msem_tsan.sh

echo "msem_lint: OK (-Werror build clean, tests green with telemetry on, registry smoke served, HTTP serve smoke bitwise-identical with /sloz + access log valid, live stats endpoints probed, fleet /metrics worker-labeled + validator-clean, stitched trace written, bench baselines held, tsan clean)"
