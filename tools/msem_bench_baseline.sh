#!/usr/bin/env bash
# msem_bench_baseline: run the regression-sentinel bench set at its
# canonical pinned scale and collect the BENCH_*.json results.
#
# The seven gated harnesses (micro_simulator, predict_throughput,
# parallel_scaling, campaign_scaling, table3_model_accuracy, trace_replay,
# serve_load) run
# with a fixed seed, design size and thread count so model-quality metrics
# are bit-deterministic and timing metrics are comparable across runs of
# the same machine class.
# Each run starts from a fresh response cache: cached simulations would
# turn the throughput metrics into cache-hit benchmarks.
#
# By default the results land in results/baselines/ -- commit them to
# refresh the baseline. CI / msem_lint.sh instead passes -o <dir> to
# collect a fresh set and gates it with:
#
#   msem_bench_diff --against results/baselines --results <dir> --fail-on-regress
#
# Usage: tools/msem_bench_baseline.sh [build-dir] [-o out-dir]
#   build-dir  where the bench binaries live (default: build)
#   -o DIR     where to put the BENCH_*.json set (default: results/baselines)

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT_DIR=results/baselines
while [ $# -gt 0 ]; do
  case "$1" in
    -o) OUT_DIR="$2"; shift 2 ;;
    -h|--help) sed -n '2,20p' "$0"; exit 0 ;;
    *) BUILD_DIR="$1"; shift ;;
  esac
done

BENCHES=(bench_micro_simulator bench_predict_throughput
         bench_parallel_scaling bench_campaign_scaling
         bench_table3_model_accuracy bench_trace_replay bench_serve_load)
for B in "${BENCHES[@]}"; do
  if [ ! -x "$BUILD_DIR/bench/$B" ]; then
    echo "msem_bench_baseline: missing $BUILD_DIR/bench/$B (build first)" >&2
    exit 1
  fi
done

# The canonical baseline scale. Pinned here -- and only here -- so capture
# and gate can never drift apart (config drift is a hard msem_bench_diff
# failure). Timing thresholds assume same-machine-class comparisons.
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
export MSEM_TRAIN_N=30
export MSEM_TEST_N=10
export MSEM_INPUT=train
export MSEM_SEED=20070311
export MSEM_THREADS=4
export MSEM_CACHE="$SCRATCH/cache"
export MSEM_RESULTS_DIR="$SCRATCH/results"
unset MSEM_TELEMETRY MSEM_STATS_PORT MSEM_PROFILE || true

echo "== bench baseline run (train=$MSEM_TRAIN_N test=$MSEM_TEST_N" \
     "seed=$MSEM_SEED threads=$MSEM_THREADS) =="
for B in "${BENCHES[@]}"; do
  echo "-- $B"
  if [ "$B" = bench_micro_simulator ]; then
    # google-benchmark harness: short but still repetition-averaged runs.
    "$BUILD_DIR/bench/$B" --benchmark_min_time=0.05 \
        > "$SCRATCH/$B.log" 2>&1
  else
    "$BUILD_DIR/bench/$B" > "$SCRATCH/$B.log" 2>&1
  fi
done

mkdir -p "$OUT_DIR"
for B in "${BENCHES[@]}"; do
  NAME="${B#bench_}"
  cp "$MSEM_RESULTS_DIR/BENCH_$NAME.json" "$OUT_DIR/"
done

echo "msem_bench_baseline: wrote $(ls "$OUT_DIR"/BENCH_*.json | wc -l)" \
     "result files to $OUT_DIR"
